//! Serving: one trained model, many concurrent clients — routing *and*
//! full question→SQL→result answers.
//!
//! Trains a router over a small corpus, puts it behind the
//! `RouterService` (LRU cache + micro-batching + persistent worker pool),
//! then drives it with N concurrent client threads replaying a skewed
//! workload — a few questions are popular, the rest form a long tail, the
//! shape real traffic has. Prints served throughput against the unserved
//! per-call baseline, plus the cache and batching counters. Then lifts
//! the same machinery to end-to-end serving: the `AskService` caches
//! complete answers (SQL + result + trace), so repeated questions skip
//! routing, prompting, generation *and* execution. The fleet-operations
//! act grows a sharded tier by one database (retraining only the owning
//! shard) and publishes it to live traffic with zero dropped requests.
//! Closes at the HTTP edge: the same stack behind a real socket, driven
//! by the crate's load generator — closed-loop capacity, open-loop
//! overload (admission control sheds 429s), and a graceful drain with
//! requests still in flight.
//!
//! ```sh
//! cargo run --release --example serving
//! DBC_THREADS=4 DBC_CLIENTS=16 cargo run --release --example serving
//! ```

use std::sync::Arc;
use std::time::Instant;

use dbcopilot::{AskOptions, DbCopilot, QueryPipeline};
use dbcopilot_core::{DbcRouter, SerializationMode, ShardedRouter};
use dbcopilot_http::{
    run_load, Arrival, Dispatcher, HttpClient, HttpConfig, HttpServer, LoadConfig, ServiceApp,
};
use dbcopilot_retrieval::SchemaRouter;
use dbcopilot_serve::{AskService, RouterService, ServiceConfig};
use dbcopilot_sqlengine::{DataType, DatabaseSchema, TableSchema};
use dbcopilot_synth::{build_spider_like, CorpusSizes};

fn main() {
    let clients: usize =
        std::env::var("DBC_CLIENTS").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let rounds_per_client = 40;

    println!("Building a 16-database corpus and training the router …");
    let corpus = build_spider_like(&CorpusSizes { num_databases: 16, train_n: 500, test_n: 32 }, 7);
    let graph = dbcopilot_graph::SchemaGraph::build(&corpus.collection);
    let questioner = dbcopilot_synth::Questioner::train(
        &dbcopilot_synth::questioner_pairs(&corpus),
        &dbcopilot_synth::QuestionerConfig::default(),
    );
    let examples =
        dbcopilot_core::synthesize_training_data(&graph, &corpus.meta, &questioner, 1200, 0xdbc);
    let cfg = dbcopilot_core::RouterConfig { epochs: 6, ..Default::default() };
    let (router, _) = DbcRouter::fit(graph, &examples, cfg, SerializationMode::Dfs);
    let router = router.into_shared();

    // The workload: every client replays the test questions, but 3 of them
    // are 10x more popular than the rest (skew is what makes caches pay).
    let mut workload: Vec<String> = Vec::new();
    for (i, inst) in corpus.test.iter().enumerate() {
        let copies = if i < 3 { 10 } else { 1 };
        workload.extend(std::iter::repeat_n(inst.question.clone(), copies));
    }
    let total_requests = clients * rounds_per_client;

    // Baseline: every request routes the model, no sharing of any kind.
    println!("\nUnserved baseline ({total_requests} sequential routes) …");
    let start = Instant::now();
    for i in 0..total_requests {
        let q = &workload[i % workload.len()];
        let _ = router.route(q, 100);
    }
    let base_secs = start.elapsed().as_secs_f64();
    println!("  {:.1} req/s", total_requests as f64 / base_secs);

    // Served: shared Arc'd router behind cache + micro-batching + pool.
    let service = RouterService::new(Arc::clone(&router), ServiceConfig::new().max_batch(16));
    println!("\nServing the same workload to {clients} concurrent clients …");
    let start = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let (service, workload) = (&service, &workload);
            s.spawn(move || {
                for round in 0..rounds_per_client {
                    // the baseline's request sequence, partitioned across
                    // clients — both runs serve the same question multiset
                    let i = client * rounds_per_client + round;
                    let result = service.route(&workload[i % workload.len()]);
                    assert!(!result.databases.is_empty());
                }
            });
        }
    });
    let served_secs = start.elapsed().as_secs_f64();
    let stats = service.stats();
    println!(
        "  {:.1} req/s ({:.1}x the baseline)",
        total_requests as f64 / served_secs,
        base_secs / served_secs
    );
    println!(
        "  cache: {} hits / {} misses over {} entries (hit rate {:.0}%)",
        stats.cache_hits,
        stats.cache_misses,
        stats.cached,
        100.0 * stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64
    );
    println!(
        "  batching: {} micro-batches, {} routed questions, largest batch {}",
        stats.batches, stats.computed, stats.max_batch_observed
    );

    // Same-answer sanity check: serving never changes routing results.
    let probe = &corpus.test[0].question;
    assert_eq!(
        service.route(probe).database_names(),
        router.route(probe, 100).database_names(),
        "served and direct routing must agree"
    );
    println!(
        "\nServed results match direct routing — the cache and the pool are invisible to quality."
    );
    drop(service);

    // -----------------------------------------------------------------
    // End-to-end serving: the cache fronts complete answers, not routes.
    // -----------------------------------------------------------------
    println!("\nLifting to end-to-end serving (question → SQL → result) …");
    let copilot = DbCopilot::from_parts(
        Arc::into_inner(router).expect("router service dropped"),
        Default::default(),
        corpus.collection.clone(),
        corpus.store.clone(),
    );

    // Unserved baseline: every request runs the full pipeline.
    let opts = AskOptions::new().top_k(3).repair_attempts(1);
    let start = Instant::now();
    for i in 0..total_requests {
        let _ = copilot.ask_with(&workload[i % workload.len()], &opts);
    }
    let ask_base_secs = start.elapsed().as_secs_f64();
    println!("  unserved: {:.1} answers/s", total_requests as f64 / ask_base_secs);

    let ask_service = AskService::from_pipeline(copilot, opts.clone(), ServiceConfig::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let (ask_service, workload) = (&ask_service, &workload);
            s.spawn(move || {
                for round in 0..rounds_per_client {
                    let i = client * rounds_per_client + round;
                    let _ = ask_service.ask(&workload[i % workload.len()]);
                }
            });
        }
    });
    let ask_secs = start.elapsed().as_secs_f64();
    let stats = ask_service.stats();
    println!(
        "  served:   {:.1} answers/s ({:.1}x) — {} cache hits, {} pipeline runs",
        total_requests as f64 / ask_secs,
        ask_base_secs / ask_secs,
        stats.cache_hits,
        stats.computed
    );

    // Answer parity: a served answer is the direct answer, errors included.
    let served = ask_service.ask(probe);
    let direct = ask_service.pipeline().ask_with(probe, &opts);
    match (served.as_ref(), &direct) {
        (Ok(s), Ok(d)) => assert_eq!(s.answer, d.answer, "served answers must match direct"),
        (Err(s), Err(d)) => assert_eq!(s, d, "served failures must match direct"),
        _ => panic!("served and direct ask disagree"),
    }
    println!("\nServed answers match direct asks — end-to-end serving is quality-invisible.");
    // Keep the trained pipeline for the HTTP act below.
    let copilot = Arc::clone(ask_service.pipeline());
    drop(ask_service);

    // -----------------------------------------------------------------
    // Zero-downtime hot swap: grow a sharded tier and publish it while
    // clients are routing. No request is dropped; the generation advances.
    // -----------------------------------------------------------------
    println!("\nSharded tier + hot swap under load …");
    let shard_cfg = dbcopilot_core::RouterConfig { epochs: 2, ..Default::default() };
    let (tier, _) =
        ShardedRouter::fit(&corpus.collection, &examples, shard_cfg, SerializationMode::Dfs, 2);
    // No cache: every request must exercise whichever generation is live.
    let service = RouterService::new(Arc::new(tier), ServiceConfig::new().cache_capacity(0));

    // One new database lands in exactly one shard; only that shard retrains.
    let mut grown = corpus.collection.clone();
    let mut db = DatabaseSchema::new("incident_reports");
    db.add_table(TableSchema::new("incident").column("id", DataType::Int).primary(0));
    grown.add_database(db);
    let owner = service.router().shard_of_db("incident_reports");
    let (next, retrained) =
        service.router().extend(&grown, &corpus.meta, &questioner, 32, 2).expect("extend");
    println!(
        "  incident_reports lands on shard {owner}; retrained {:?} of {} shards",
        retrained.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        next.num_shards()
    );

    let next = Arc::new(next);
    std::thread::scope(|s| {
        for client in 0..clients {
            let (service, workload) = (&service, &workload);
            s.spawn(move || {
                for round in 0..rounds_per_client {
                    let i = client * rounds_per_client + round;
                    let r = service.route(&workload[i % workload.len()]);
                    assert!(!r.databases.is_empty(), "every request is answered across the swap");
                }
            });
        }
        service.publish(Arc::clone(&next)); // mid-flight: drains the old generation
    });
    let stats = service.stats();
    println!(
        "  published mid-flight: generation {} (was 1), {} routes served, \
         new tier holds {} databases",
        service.generation(),
        stats.computed,
        service.router().num_databases()
    );
    assert_eq!(service.generation(), 2);
    println!("\nHot swap complete — zero drops, stale cache generations invalidated.");

    // -----------------------------------------------------------------
    // The HTTP edge: the same stack behind a real socket. Act one drives
    // a closed-loop load (capacity), act two overloads an artificially
    // slow deployment open-loop to show admission control shedding, act
    // three drains gracefully with requests still in flight.
    // -----------------------------------------------------------------
    println!("\nServing over HTTP ({clients} keep-alive clients) …");
    let questions: Vec<String> = corpus.test.iter().map(|i| i.question.clone()).collect();
    let app = ServiceApp::new(
        AskService::new(Arc::clone(&copilot), opts.clone(), ServiceConfig::new()),
        service, // the sharded, already-swapped route tier from the act above
    );
    let server = HttpServer::bind("127.0.0.1:0", app, HttpConfig::new().workers(4).backlog(16))
        .expect("bind the HTTP edge");
    let report = run_load(
        server.addr(),
        &questions,
        &LoadConfig::new().clients(clients).requests_per_client(rounds_per_client).skew(2.0),
    );
    println!("  closed loop: {}", report.summary());
    // smoke assertions (CI runs this example): the edge must actually serve
    assert!(report.achieved_qps() > 0.0, "HTTP edge served nothing");
    assert_eq!(report.protocol_errors, 0, "protocol errors under plain load");
    assert_eq!(report.shed, 0, "closed-loop load under capacity never sheds");
    assert!(report.ok > 0, "at least the popular questions answer with 200");
    let edge = server.stats();
    println!(
        "  edge: p50 {} µs, p95 {} µs over {} requests on {} connections",
        edge.p50_us, edge.p95_us, edge.requests, edge.accepted
    );
    server.shutdown();

    // Act two: a deliberately slow deployment (25 ms per answer ≈ 80/s
    // capacity) under an open-loop arrival far past capacity — admission
    // control must shed the surplus as fast 429s instead of queueing.
    println!("\nOverloading a throttled deployment (open loop at 400 req/s) …");
    struct Throttled<D: Dispatcher> {
        inner: D,
        delay: std::time::Duration,
    }
    impl<D: Dispatcher> Dispatcher for Throttled<D> {
        fn ask(&self, question: &str) -> Arc<dbcopilot_serve::AskOutcome> {
            std::thread::sleep(self.delay);
            self.inner.ask(question)
        }
    }
    let slow_app = Throttled {
        inner: AskOnly(AskService::new(Arc::clone(&copilot), opts.clone(), ServiceConfig::new())),
        delay: std::time::Duration::from_millis(25),
    };
    let server = HttpServer::bind(
        "127.0.0.1:0",
        slow_app,
        HttpConfig::new().workers(2).backlog(2).retry_after_secs(1),
    )
    .expect("bind the throttled edge");
    let report = run_load(
        server.addr(),
        &questions,
        &LoadConfig::new()
            .clients(8)
            .requests_per_client(25)
            .arrival(Arrival::Open { rate_per_sec: 400.0 }),
    );
    println!("  open loop:   {}", report.summary());
    assert_eq!(report.protocol_errors, 0, "sheds must be clean 429s, not broken sockets");
    assert!(report.shed > 0, "open-loop overload past capacity must shed");
    assert_eq!(report.ok + report.failed + report.shed, report.issued, "every request answered");

    // Act three: graceful drain with requests still in flight — every
    // admitted request completes, then the port is released.
    let addr = server.addr();
    let before = server.stats().accepted;
    let drain_pack = std::thread::spawn(move || {
        let mut answered = 0;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move || {
                        let mut c = HttpClient::connect(addr).expect("drain client connects");
                        let body = format!("{{\"question\":\"drain probe {i}\"}}");
                        // A typed pipeline failure (404/422) is still an
                        // answered request; only a 5xx or a dead socket
                        // would mean the drain dropped it.
                        let r = c.post("/ask", &body).expect("in-flight request answered");
                        assert!(r.status < 500, "got {}", r.status);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("drain client");
                answered += 1;
            }
        });
        answered
    });
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().accepted < before + 4 {
        assert!(Instant::now() < deadline, "drain probes never admitted");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let final_stats = server.shutdown();
    let answered = drain_pack.join().expect("drain pack");
    assert_eq!(answered, 4, "zero dropped in-flight across the drain");
    assert_eq!(final_stats.in_flight, 0);
    std::net::TcpListener::bind(addr).expect("port released after shutdown");
    println!("  drained gracefully: {} in-flight answered, 0 dropped, port released", answered);
    println!("\nHTTP serving complete — shed under overload, zero drops under drain.");
}

/// An ask-only [`Dispatcher`]: the route front stays on the main deployment.
struct AskOnly<P: QueryPipeline + 'static>(AskService<P>);

impl<P: QueryPipeline + 'static> Dispatcher for AskOnly<P> {
    fn ask(&self, question: &str) -> Arc<dbcopilot_serve::AskOutcome> {
        self.0.ask(question)
    }
}
