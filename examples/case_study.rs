//! Routing case study (paper Figures 8–9): compare how each method routes
//! individual questions, including a synonym-heavy question where lexical
//! retrieval fails, and inspect success/failure cases of the router.
//!
//! ```sh
//! cargo run --release --example case_study
//! ```

use dbcopilot_eval::{build_method, prepare, CorpusKind, MethodKind, Scale};
use dbcopilot_synth::{rerender_instances, Lexicon, SurfaceStyle};

fn main() {
    let scale = Scale::quick();
    println!("Preparing the Spider-like corpus …");
    let prepared = prepare(CorpusKind::Spider, &scale);
    let lex = Lexicon::new();

    // Methods of the paper's Figure 8.
    let methods = [
        MethodKind::Bm25,
        MethodKind::Sxfmr,
        MethodKind::CrushBm25,
        MethodKind::Dtr,
        MethodKind::DbCopilot,
    ];
    println!("Building methods (training where needed) …");
    let built: Vec<_> = methods.iter().map(|&m| build_method(m, &prepared, &scale)).collect();

    // A regular question and its synonym-substituted variant.
    let insts = &prepared.corpus.test;
    let syn = rerender_instances(insts, &lex, SurfaceStyle::SynonymOnly, 99);
    for (title, question, gold) in [
        ("regular question", insts[0].question.as_str(), &insts[0].schema),
        ("synonym-substituted variant (Spider-syn)", syn[0].question.as_str(), &syn[0].schema),
    ] {
        println!("\n=== case: {title} ===");
        println!("Q: {question}");
        println!("gold: {gold}");
        for (router, _) in &built {
            let result = router.route(question, 10);
            let db = result.databases.first().map(|(d, _)| d.as_str()).unwrap_or("∅");
            let tables: Vec<String> =
                result.top_tables(3).iter().map(|(d, t)| format!("{d}.{t}")).collect();
            let hit = db.eq_ignore_ascii_case(&gold.database);
            println!(
                "  {:<12} → {} {:<22} top tables: {}",
                router.name(),
                if hit { "✓" } else { "✗" },
                db,
                tables.join(", ")
            );
        }
    }

    // Failure inspection: find a question the router gets wrong (Figure 9).
    let (dbc, _) = &built[4];
    println!("\n=== first router failure (cf. paper Figure 9) ===");
    for inst in insts.iter() {
        let result = dbc.route(&inst.question, 10);
        let ok = result
            .databases
            .first()
            .map(|(d, _)| d.eq_ignore_ascii_case(&inst.schema.database))
            .unwrap_or(false);
        if !ok {
            println!("Q: {}", inst.question);
            println!("gold:   {}", inst.schema);
            for (d, s) in result.databases.iter().take(3) {
                println!("  routed {d} (score {s:.2})");
            }
            break;
        }
    }
}
