//! Data-lake navigation: schema routing over a single massive mart
//! (the Fiben-style scenario of the paper's introduction — hundreds of
//! tables across subject areas, queried by analysts who do not know the
//! schema layout), then over a *lake* of many marts served by the
//! sharded routing tier.
//!
//! Compares the trained router against BM25 on the same questions, shows
//! the diverse candidate schemata the router proposes, and finishes by
//! partitioning a multi-database lake into shards — independently
//! trained, scatter-gather merged, loaded lazily from one bundle.
//!
//! ```sh
//! cargo run --release --example data_lake_navigation
//! ```

use dbcopilot_core::{
    load_sharded_router_bytes, sharded_router_to_vec, DbcRouter, RouterConfig, SerializationMode,
    ShardedRouter,
};
use dbcopilot_eval::{eval_routing, prepare, CorpusKind, Scale};
use dbcopilot_retrieval::{Bm25Index, Bm25Params, SchemaRouter, TargetSet};

fn main() {
    let mut scale = Scale::quick();
    scale.fiben_areas = 14;
    scale.fiben_test = 60;
    println!("Building a financial-mart corpus (one database, many subject areas) …");
    let prepared = prepare(CorpusKind::Fiben, &scale);
    println!(
        "  1 database, {} tables across subject areas",
        prepared.corpus.collection.num_tables()
    );

    println!("Training the schema router on synthesized question–schema pairs …");
    let cfg = RouterConfig { epochs: 8, ..RouterConfig::default() };
    let (router, stats) = DbcRouter::fit(
        prepared.graph.clone(),
        &prepared.synth_examples,
        cfg,
        SerializationMode::Dfs,
    );
    println!("  final training loss {:.3}", stats.epoch_losses.last().unwrap());

    let bm25 = Bm25Index::build(
        TargetSet::from_collection(&prepared.corpus.collection),
        Bm25Params::default(),
    );

    let m_router = eval_routing(&router, &prepared.corpus.test, 100);
    let m_bm25 = eval_routing(&bm25, &prepared.corpus.test, 100);
    println!("\nTable recall on {} mart questions:", prepared.corpus.test.len());
    println!(
        "  {:<10} Tab R@5 {:>6.1}  Tab R@15 {:>6.1}",
        "DBCopilot", m_router.table_r5, m_router.table_r15
    );
    println!(
        "  {:<10} Tab R@5 {:>6.1}  Tab R@15 {:>6.1}",
        "BM25", m_bm25.table_r5, m_bm25.table_r15
    );

    println!("\nCandidate navigation for one question:");
    if let Some(inst) = prepared.corpus.test.first() {
        println!("Q: {}", inst.question);
        println!("gold: {}", inst.schema);
        for (i, cand) in router.route_schemata(&inst.question).iter().take(5).enumerate() {
            println!("  #{:<2} {}  (logp {:.2})", i + 1, cand.schema, cand.logp);
        }
    }

    // -----------------------------------------------------------------
    // Scaling out: a lake of many marts behind the sharded routing tier.
    // -----------------------------------------------------------------
    println!("\nGrowing the scenario: a lake of independent marts, sharded …");
    let lake = prepare(CorpusKind::Spider, &Scale::quick());
    let (tier, _) = ShardedRouter::fit(
        &lake.corpus.collection,
        &lake.synth_examples,
        Scale::quick().router,
        SerializationMode::Dfs,
        4,
    );
    let m = eval_routing(&tier, &lake.corpus.test, 100);
    println!(
        "  {} databases over {} shards — DB R@1 {:.1}, DB R@5 {:.1} (calibrated scatter-gather)",
        tier.num_databases(),
        tier.num_shards(),
        m.db_r1,
        m.db_r5
    );

    // One bundle, lazy shards: an analyst's first question wakes exactly
    // the shard that owns the mart it lands on.
    let bytes = sharded_router_to_vec(&tier).expect("encode lake bundle");
    let kib = bytes.len() / 1024;
    let cold = load_sharded_router_bytes(bytes).expect("load lake bundle");
    let question = &lake.corpus.test[0].question;
    let shard = cold.shard_of_db(&tier.route(question, 5).databases[0].0);
    let _ = cold.route_shard(shard, question, 5);
    println!(
        "  one {kib} KiB bundle on disk; {} of {} shards decoded after a targeted route",
        cold.loaded_shards(),
        cold.num_shards()
    );
}
