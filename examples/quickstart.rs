//! Quickstart: build a small multi-database corpus, train the DBCopilot
//! pipeline, and ask schema-agnostic questions — with candidate fallback,
//! execution-feedback repair, and the full pipeline trace.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dbcopilot::{AskOptions, AttemptOutcome, DbCopilot, PipelineConfig, TraceLevel};
use dbcopilot_core::{load_router, save_router_as, Format};
use dbcopilot_synth::{build_spider_like, CorpusSizes};

fn main() {
    println!("Building a 24-database corpus …");
    let corpus = build_spider_like(&CorpusSizes { num_databases: 24, train_n: 800, test_n: 40 }, 7);
    println!(
        "  {} databases, {} tables, {} columns",
        corpus.collection.num_databases(),
        corpus.collection.num_tables(),
        corpus.collection.num_columns()
    );

    println!("Training the copilot (schema graph → questioner → router) …");
    let mut cfg = PipelineConfig::default();
    cfg.router.epochs = 8;
    cfg.synth_pairs = 2500;
    let copilot = DbCopilot::fit(&corpus, cfg);

    // Persistence: the router is the product — save it once, serve forever.
    // DBC1 binary is the default; JSON stays available for inspection.
    let mut binary = Vec::new();
    save_router_as(&copilot.router, &mut binary, Format::Binary).unwrap();
    let mut json = Vec::new();
    save_router_as(&copilot.router, &mut json, Format::Json).unwrap();
    println!(
        "\nPersistence: DBC1 binary {} KiB vs JSON {} KiB ({:.0}% of JSON)",
        binary.len() / 1024,
        json.len() / 1024,
        100.0 * binary.len() as f64 / json.len() as f64
    );
    let reloaded = load_router(binary.as_slice()).expect("saved router must load");
    let probe = &corpus.test[0].question;
    assert_eq!(
        copilot.router.best_schema(probe).map(|s| s.to_string()),
        reloaded.best_schema(probe).map(|s| s.to_string()),
        "reloaded router must route identically"
    );
    println!("Reloaded router routes identically — serving needs no retraining.");

    // Ask with the full trace: top-3 candidate fallback + one
    // execution-feedback repair attempt per candidate.
    let opts = AskOptions::new().top_k(3).repair_attempts(1).trace(TraceLevel::Stages);
    println!("\nAsking the corpus' own test questions (top-3 fallback, 1 repair):\n");
    let mut answered = 0;
    let mut recovered = 0;
    for inst in corpus.test.iter().take(8) {
        println!("Q: {}", inst.question);
        match copilot.ask_with(&inst.question, &opts) {
            Ok(report) => {
                answered += 1;
                let ans = &report.answer;
                println!("  routed → {} (candidate #{})", ans.schema, report.chosen + 1);
                println!("  gold   → {}", inst.schema);
                println!("  SQL    → {}", ans.sql);
                let preview: Vec<String> = ans
                    .result
                    .rows
                    .iter()
                    .take(3)
                    .map(|r| r.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "))
                    .collect();
                println!("  rows   → {} ({})", ans.result.rows.len(), preview.join(" | "));
                if report.recovered() {
                    recovered += 1;
                    for a in &report.attempts {
                        if let AttemptOutcome::ExecutionError(e) = &a.outcome {
                            println!(
                                "  recovered: candidate #{} repair {} failed with `{e}`",
                                a.candidate + 1,
                                a.repair
                            );
                        }
                    }
                }
            }
            Err(e) => println!("  ✗ failed at the {} stage: {e}", e.stage()),
        }
        println!();
    }
    println!(
        "{answered}/8 answered end to end ({recovered} needed the fallback/repair machinery)."
    );

    // The old single-candidate behavior remains one builder call away.
    let strict = AskOptions::first_candidate();
    let single: usize = corpus
        .test
        .iter()
        .take(8)
        .filter(|i| copilot.ask_with(&i.question, &strict).is_ok())
        .count();
    println!("Single-candidate (no fallback) answers the same questions: {single}/8.");
}
