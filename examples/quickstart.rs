//! Quickstart: build a small multi-database corpus, train the DBCopilot
//! pipeline, and ask schema-agnostic questions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dbcopilot::{DbCopilot, PipelineConfig};
use dbcopilot_core::{load_router, save_router_as, Format};
use dbcopilot_synth::{build_spider_like, CorpusSizes};

fn main() {
    println!("Building a 24-database corpus …");
    let corpus = build_spider_like(&CorpusSizes { num_databases: 24, train_n: 800, test_n: 40 }, 7);
    println!(
        "  {} databases, {} tables, {} columns",
        corpus.collection.num_databases(),
        corpus.collection.num_tables(),
        corpus.collection.num_columns()
    );

    println!("Training the copilot (schema graph → questioner → router) …");
    let mut cfg = PipelineConfig::default();
    cfg.router.epochs = 8;
    cfg.synth_pairs = 2500;
    let copilot = DbCopilot::fit(&corpus, cfg);

    // Persistence: the router is the product — save it once, serve forever.
    // DBC1 binary is the default; JSON stays available for inspection.
    let mut binary = Vec::new();
    save_router_as(&copilot.router, &mut binary, Format::Binary).unwrap();
    let mut json = Vec::new();
    save_router_as(&copilot.router, &mut json, Format::Json).unwrap();
    println!(
        "\nPersistence: DBC1 binary {} KiB vs JSON {} KiB ({:.0}% of JSON)",
        binary.len() / 1024,
        json.len() / 1024,
        100.0 * binary.len() as f64 / json.len() as f64
    );
    let reloaded = load_router(binary.as_slice()).expect("saved router must load");
    let probe = &corpus.test[0].question;
    assert_eq!(
        copilot.router.best_schema(probe).map(|s| s.to_string()),
        reloaded.best_schema(probe).map(|s| s.to_string()),
        "reloaded router must route identically"
    );
    println!("Reloaded router routes identically — serving needs no retraining.");

    println!("\nAsking the corpus' own test questions:\n");
    for inst in corpus.test.iter().take(8) {
        println!("Q: {}", inst.question);
        match copilot.ask(&inst.question) {
            Some(ans) => {
                println!("  routed → {}", ans.schema);
                println!("  gold   → {}", inst.schema);
                if let Some(sql) = &ans.sql {
                    println!("  SQL    → {sql}");
                }
                if let Some(rs) = &ans.result {
                    let preview: Vec<String> = rs
                        .rows
                        .iter()
                        .take(3)
                        .map(|r| r.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "))
                        .collect();
                    println!("  rows   → {} ({})", rs.rows.len(), preview.join(" | "));
                }
            }
            None => println!("  (no schema decoded)"),
        }
        println!();
    }
}
