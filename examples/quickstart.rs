//! Quickstart: build a small multi-database corpus, train the DBCopilot
//! pipeline, and ask schema-agnostic questions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dbcopilot::{DbCopilot, PipelineConfig};
use dbcopilot_synth::{build_spider_like, CorpusSizes};

fn main() {
    println!("Building a 24-database corpus …");
    let corpus = build_spider_like(&CorpusSizes { num_databases: 24, train_n: 800, test_n: 40 }, 7);
    println!(
        "  {} databases, {} tables, {} columns",
        corpus.collection.num_databases(),
        corpus.collection.num_tables(),
        corpus.collection.num_columns()
    );

    println!("Training the copilot (schema graph → questioner → router) …");
    let mut cfg = PipelineConfig::default();
    cfg.router.epochs = 8;
    cfg.synth_pairs = 2500;
    let copilot = DbCopilot::fit(&corpus, cfg);

    println!("\nAsking the corpus' own test questions:\n");
    for inst in corpus.test.iter().take(8) {
        println!("Q: {}", inst.question);
        match copilot.ask(&inst.question) {
            Some(ans) => {
                println!("  routed → {}", ans.schema);
                println!("  gold   → {}", inst.schema);
                if let Some(sql) = &ans.sql {
                    println!("  SQL    → {sql}");
                }
                if let Some(rs) = &ans.result {
                    let preview: Vec<String> = rs
                        .rows
                        .iter()
                        .take(3)
                        .map(|r| r.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "))
                        .collect();
                    println!("  rows   → {} ({})", rs.rows.len(), preview.join(" | "));
                }
            }
            None => println!("  (no schema decoded)"),
        }
        println!();
    }
}
