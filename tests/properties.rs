//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary seeds and inputs.

use proptest::prelude::*;

use dbcopilot_graph::{
    deserialize_schema, dfs_serialize, sample_schema, IterOrder, SchemaGraph, WalkConfig,
};
use dbcopilot_synth::{generate_collection, generate_instances, GenConfig, Lexicon, SurfaceStyle};

fn small_gen(seed: u64) -> GenConfig {
    GenConfig {
        num_databases: 6,
        entities_per_db: (3, 5),
        junction_prob: 0.6,
        rows_per_table: (5, 12),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated gold query parses and executes on its own database.
    #[test]
    fn gold_sql_always_executes(seed in 0u64..500) {
        let gc = generate_collection(&small_gen(seed));
        let lex = Lexicon::new();
        let insts = generate_instances(&gc, &lex, 25, SurfaceStyle::Mixed(0.35), seed ^ 0xabc);
        for inst in &insts {
            let db = gc.store.database(&inst.schema.database).unwrap();
            dbcopilot_sqlengine::execute(db, &inst.sql)
                .unwrap_or_else(|e| panic!("seed {seed}: {e} — {}", inst.sql));
        }
    }

    /// Every generated instance schema is valid on the schema graph, and
    /// DFS serialization round-trips it.
    #[test]
    fn schemata_serialize_roundtrip(seed in 0u64..500) {
        let gc = generate_collection(&small_gen(seed));
        let mut graph = SchemaGraph::build(&gc.collection);
        dbcopilot_graph::augment_graph_with_joinable(&mut graph, &gc.store, 0.85);
        let lex = Lexicon::new();
        let insts = generate_instances(&gc, &lex, 20, SurfaceStyle::Canonical, seed ^ 0x99);
        for inst in &insts {
            prop_assert!(graph.is_valid_schema(&inst.schema), "{}", inst.schema);
            let ids = dfs_serialize(&graph, &inst.schema, IterOrder::Fixed).unwrap();
            let back = deserialize_schema(&graph, &ids).unwrap();
            prop_assert!(back.same_as(&inst.schema));
        }
    }

    /// Random-walk schema sampling only produces valid schemata.
    #[test]
    fn walks_always_valid(seed in 0u64..500) {
        use rand::SeedableRng;
        let gc = generate_collection(&small_gen(seed));
        let mut graph = SchemaGraph::build(&gc.collection);
        dbcopilot_graph::augment_graph_with_joinable(&mut graph, &gc.store, 0.85);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..30 {
            let s = sample_schema(&graph, &WalkConfig::default(), &mut rng);
            prop_assert!(graph.is_valid_schema(&s), "{s}");
        }
    }

    /// Execution-accuracy comparison is reflexive for every gold query:
    /// a query always matches itself.
    #[test]
    fn ex_comparison_reflexive(seed in 0u64..300) {
        let gc = generate_collection(&small_gen(seed));
        let lex = Lexicon::new();
        let insts = generate_instances(&gc, &lex, 10, SurfaceStyle::Mixed(0.2), seed ^ 0x7);
        for inst in &insts {
            let db = gc.store.database(&inst.schema.database).unwrap();
            prop_assert!(
                dbcopilot_sqlengine::execution_match(db, &inst.sql, &inst.sql).is_match()
            );
        }
    }

    /// The question intent parser inverts the canonical question grammar:
    /// parsing a canonical-style question recovers the template kind.
    #[test]
    fn intent_parser_inverts_templates(seed in 0u64..300) {
        let gc = generate_collection(&small_gen(seed));
        let lex = Lexicon::new();
        let insts = generate_instances(&gc, &lex, 15, SurfaceStyle::Canonical, seed ^ 0x31);
        for inst in &insts {
            let intent = dbcopilot_nl2sql::parse_intent(&inst.question)
                .unwrap_or_else(|| panic!("unparseable: {:?}", inst.question));
            prop_assert_eq!(intent.kind, inst.spec.kind, "{}", inst.question);
        }
    }
}
