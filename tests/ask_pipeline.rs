//! The staged ask pipeline: seeded candidate-fallback and repair cases,
//! pooled `ask_batch` bit-identity across thread counts, and
//! `AskService` parity with direct asks.
//!
//! Shares one small trained pipeline across tests (`OnceLock` — train
//! once, assert many).

use std::sync::OnceLock;

use dbcopilot::nl2sql::LlmConfig;
use dbcopilot::serve::{AskService, ServiceConfig};
use dbcopilot::{
    AskError, AskOptions, AttemptOutcome, DbCopilot, PipelineConfig, ScoredCandidate, TraceLevel,
};
use dbcopilot_graph::QuerySchema;
use dbcopilot_synth::{build_spider_like, Corpus, CorpusSizes};

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        build_spider_like(&CorpusSizes { num_databases: 8, train_n: 200, test_n: 30 }, 11)
    })
}

fn fixture() -> &'static DbCopilot {
    static FIX: OnceLock<DbCopilot> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut cfg = PipelineConfig::default();
        cfg.router.epochs = 6;
        cfg.synth_pairs = 700;
        DbCopilot::fit(corpus(), cfg)
    })
}

/// A gold candidate for the corpus' first test instance, plus a decoy
/// candidate that cannot ground the question (tables from an unrelated
/// database).
fn gold_and_decoy() -> (QuerySchema, QuerySchema) {
    let c = corpus();
    let inst = &c.test[0];
    let gold = inst.schema.clone();
    let decoy_db = c
        .collection
        .databases
        .keys()
        .find(|name| !name.eq_ignore_ascii_case(&gold.database))
        .expect("corpus has several databases");
    let tables = c.collection.database(decoy_db).unwrap().tables.iter().map(|t| t.name.clone());
    (gold, QuerySchema::new(decoy_db.clone(), tables.collect()))
}

#[test]
fn candidate_fallback_recovers_when_first_candidate_cannot_ground() {
    // Candidate #1 is a decoy schema from the wrong database: grounding
    // fails (NoSql). Candidate #2 is gold: the walk recovers the answer.
    let copilot = fixture();
    let inst = &corpus().test[0];
    let (gold, decoy) = gold_and_decoy();

    let single = copilot.ask_candidates(
        &inst.question,
        vec![ScoredCandidate { schema: decoy.clone(), logp: -0.1 }],
        &AskOptions::first_candidate().trace(TraceLevel::Stages),
    );
    // decoy alone must not answer via the gold path
    match &single {
        Ok(report) => assert!(
            !report.answer.schema.database.eq_ignore_ascii_case(&gold.database),
            "decoy-only ask cannot reach the gold database"
        ),
        Err(e) => assert_ne!(e.stage(), "routing"),
    }

    let report = copilot
        .ask_candidates(
            &inst.question,
            vec![
                ScoredCandidate { schema: decoy, logp: -0.1 },
                ScoredCandidate { schema: gold.clone(), logp: -0.2 },
            ],
            &AskOptions::new().top_k(2).trace(TraceLevel::Stages),
        )
        .expect("gold candidate must answer");
    assert_eq!(report.chosen, 1, "the walk must fall through to candidate #2");
    assert!(report.recovered());
    assert!(
        report.answer.schema.database.eq_ignore_ascii_case(&gold.database),
        "answer must come from the gold candidate"
    );
    // the trace shows what happened on the decoy (either no SQL, or SQL
    // that failed/ran against the decoy db before the walk moved on)
    assert!(report.attempts.iter().any(|a| a.candidate == 0 || a.candidate == 1));
    assert!(matches!(report.attempts.last().unwrap().outcome, AttemptOutcome::Success { .. }));
}

#[test]
fn repair_reprompt_recovers_failing_sql_within_one_candidate() {
    // A slip-heavy LLM (60% truncated SQL) over the gold candidate only:
    // find seeded questions where the first attempt yields failing SQL and
    // one execution-feedback repair recovers the answer.
    let c = corpus();
    let slippy = DbCopilot::from_parts(
        dbcopilot_core::load_router(
            &{
                let mut buf = Vec::new();
                dbcopilot_core::save_router(&fixture().router, &mut buf).unwrap();
                buf
            }[..],
        )
        .unwrap(),
        LlmConfig::perfect().seed(5).malformed_sql(0.6),
        c.collection.clone(),
        c.store.clone(),
    );

    let mut repaired = 0;
    let mut first_shot = 0;
    for inst in &c.test {
        let gold_cand = || vec![ScoredCandidate { schema: inst.schema.clone(), logp: 0.0 }];
        let strict =
            slippy.ask_candidates(&inst.question, gold_cand(), &AskOptions::first_candidate());
        let lenient = slippy.ask_candidates(
            &inst.question,
            gold_cand(),
            &AskOptions::new().top_k(1).repair_attempts(2).trace(TraceLevel::Full),
        );
        match (&strict, &lenient) {
            (Err(AskError::Execution(e)), Ok(report)) => {
                // candidate #1 yielded failing SQL; the repair re-prompt
                // succeeded where no-repair failed
                assert!(!e.attempts.is_empty());
                assert!(report.recovered(), "repair success must be marked recovered");
                assert!(!report.answer.recovered_errors.is_empty());
                let last = report.attempts.last().unwrap();
                assert!(last.repair > 0, "the winning attempt must be a repair turn");
                let prompt = last.prompt.as_deref().expect("TraceLevel::Full keeps prompts");
                assert!(prompt.contains("Failed SQL:"), "repair prompt carries the failed SQL");
                repaired += 1;
            }
            (Ok(_), Ok(_)) => first_shot += 1,
            _ => {}
        }
    }
    assert!(first_shot > 0, "some questions answer first shot even at 60% slip rate");
    assert!(repaired > 0, "repair must rescue at least one failing-SQL question");
}

#[test]
fn ask_batch_is_bit_identical_across_thread_counts() {
    let copilot = fixture();
    let questions: Vec<String> =
        corpus().test.iter().take(16).map(|i| i.question.clone()).collect();
    let opts = AskOptions::new().top_k(3).repair_attempts(1).trace(TraceLevel::Full);
    let runs: Vec<_> = [1usize, 2]
        .iter()
        .map(|&n| dbcopilot::runtime::with_thread_count(n, || copilot.ask_batch(&questions, &opts)))
        .collect();
    assert_eq!(runs[0].len(), questions.len());
    for (a, b) in runs[0].iter().zip(&runs[1]) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                // everything but wall-clock timings must be bit-identical
                assert_eq!(x.answer, y.answer);
                assert_eq!(x.candidates, y.candidates);
                assert_eq!(x.chosen, y.chosen);
                assert_eq!(x.attempts, y.attempts);
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            (x, y) => panic!("outcomes diverge across thread counts: {x:?} vs {y:?}"),
        }
    }
}

#[test]
fn ask_service_answers_identical_to_direct_ask() {
    let copilot = fixture();
    let opts = AskOptions::new().top_k(3).repair_attempts(1);
    let service = AskService::new(
        std::sync::Arc::new(copilot),
        opts.clone(),
        ServiceConfig::new().max_batch(8),
    );
    let questions: Vec<String> = corpus().test.iter().map(|i| i.question.clone()).collect();
    let served = service.ask_many(&questions);
    let mut answered = 0;
    for (outcome, q) in served.iter().zip(&questions) {
        let direct = copilot.ask_with(q, &opts);
        match (outcome.as_ref(), &direct) {
            (Ok(s), Ok(d)) => {
                answered += 1;
                assert_eq!(s.answer, d.answer, "question {q:?}");
                assert_eq!(s.chosen, d.chosen, "question {q:?}");
            }
            (Err(s), Err(d)) => assert_eq!(s, d, "question {q:?}"),
            (s, d) => panic!("served {s:?} vs direct {d:?} disagree for {q:?}"),
        }
    }
    assert!(answered > 0, "service must answer some questions");

    // a second pass is all cache hits and metric-identical
    let again = service.ask_many(&questions);
    for (a, b) in served.iter().zip(&again) {
        match (a.as_ref(), b.as_ref()) {
            (Ok(x), Ok(y)) => assert_eq!(x.answer, y.answer),
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("cached outcome changed"),
        }
    }
    assert!(service.stats().cache_hits >= questions.len() as u64);
}

#[test]
fn empty_candidates_surface_a_routing_error() {
    let copilot = fixture();
    let err = copilot
        .ask_candidates("How many singers are there?", Vec::new(), &AskOptions::default())
        .expect_err("no candidates cannot answer");
    assert_eq!(err.stage(), "routing");
    assert!(err.to_string().contains("no candidate"));
}

#[test]
fn unresolvable_candidates_surface_a_prompt_error() {
    let copilot = fixture();
    let ghost = ScoredCandidate {
        schema: QuerySchema::new("no_such_database", vec!["ghost_table".into()]),
        logp: 0.0,
    };
    let err = copilot
        .ask_candidates("How many singers are there?", vec![ghost], &AskOptions::default())
        .expect_err("unknown database cannot answer");
    assert_eq!(err.stage(), "prompt");
}
