//! Cross-crate integration tests: the full pipeline at small scale.
//!
//! Router training dominates this suite's wall time, so the accuracy tests
//! share two `OnceLock` fixtures: a prepared Spider-like benchmark
//! ([`prepared`]) and a single router trained once on its synthetic pairs
//! ([`fixture`]) — train once, assert many.

use std::sync::OnceLock;

use dbcopilot::eval::{
    build_method, eval_routing, prepare, CorpusKind, MethodKind, Prepared, Scale,
};
use dbcopilot::nl2sql::LlmConfig;
use dbcopilot::{AskOptions, DbCopilot, PipelineConfig};
use dbcopilot_core::{DbcRouter, SerializationMode};
use dbcopilot_synth::{build_spider_like, CorpusSizes};

fn test_scale() -> Scale {
    let mut s = Scale::quick();
    s.spider = CorpusSizes { num_databases: 12, train_n: 300, test_n: 60 };
    s.synth_pairs = 900;
    s.router.epochs = 6;
    s
}

/// Shared prepared benchmark (corpus + graph + synthetic pairs), built once.
fn prepared() -> &'static Prepared {
    static PREP: OnceLock<Prepared> = OnceLock::new();
    PREP.get_or_init(|| prepare(CorpusKind::Spider, &test_scale()))
}

/// Shared once-trained pipeline around the one fixture router
/// (`fixture().router` for routing-metric tests, `.ask` for end-to-end).
/// Separate from [`prepared`] so tests that only need the benchmark don't
/// pay for training.
fn fixture() -> &'static DbCopilot {
    static FIX: OnceLock<DbCopilot> = OnceLock::new();
    FIX.get_or_init(|| {
        let p = prepared();
        let (router, _) = DbcRouter::fit(
            p.graph.clone(),
            &p.synth_examples,
            test_scale().router.clone(),
            SerializationMode::Dfs,
        );
        DbCopilot::from_parts(
            router,
            LlmConfig::default(),
            p.corpus.collection.clone(),
            p.corpus.store.clone(),
        )
    })
}

#[test]
fn router_beats_zero_shot_bm25_on_synonym_questions() {
    // The paper's robustness claim (Table 4): lexical retrieval collapses
    // under synonym substitution; the trained router does not.
    let p = prepared();
    let scale = test_scale();
    let syn = p.corpus.test_syn.as_ref().unwrap();

    let (bm25, _) = build_method(MethodKind::Bm25, p, &scale);
    let m_bm25 = eval_routing(bm25.as_ref(), syn, 100);
    let m_dbc = eval_routing(&fixture().router, syn, 100);
    assert!(
        m_dbc.db_r1 > m_bm25.db_r1,
        "router {:.1} should beat BM25 {:.1} on synonym questions",
        m_dbc.db_r1,
        m_bm25.db_r1
    );
}

#[test]
fn routed_schemata_are_always_valid() {
    // Constrained decoding guarantees every candidate is a valid schema on
    // the graph, for arbitrary questions (§3.5) — even for an untrained
    // model, so this uses the shared benchmark but no trained fixture.
    let p = prepared();
    let router = DbcRouter::untrained(p.graph.clone(), test_scale().router.clone());
    for q in [
        "how many things are there",
        "zorgon blaster quux",
        "",
        "list the names of vocalists that are associated with the live show named 'X'",
    ] {
        for cand in router.route_schemata(q) {
            assert!(
                p.graph.is_valid_schema(&cand.schema),
                "invalid schema {} for question {q:?}",
                cand.schema
            );
        }
    }
}

#[test]
fn smoke_quickstart_pipeline() {
    // Fast end-to-end smoke: the quickstart pipeline on a tiny corpus must
    // route at least one test question to a non-empty schema and execute the
    // generated SQL to a ResultSet. Keeps the zero-to-working path honest
    // without the cost of the accuracy-threshold tests below.
    let corpus = build_spider_like(&CorpusSizes { num_databases: 4, train_n: 80, test_n: 10 }, 7);
    let mut cfg = PipelineConfig::default();
    cfg.router.epochs = 8;
    cfg.synth_pairs = 300;
    let copilot = DbCopilot::fit(&corpus, cfg);

    let mut routed_nonempty = false;
    let mut executed = false;
    for inst in &corpus.test {
        if let Ok(ans) = copilot.ask(&inst.question) {
            if !ans.schema.database.is_empty() && !ans.schema.tables.is_empty() {
                routed_nonempty = true;
            }
            executed = true; // Ok means the SQL executed to a ResultSet
        }
        if routed_nonempty && executed {
            break;
        }
    }
    assert!(routed_nonempty, "no question routed to a non-empty schema");
    assert!(executed, "no generated SQL executed to a ResultSet");
}

#[test]
fn full_pipeline_answers_questions() {
    let copilot = fixture();
    let mut routed_right = 0;
    let mut executed = 0;
    for inst in &prepared().corpus.test {
        if let Ok(ans) = copilot.ask(&inst.question) {
            if ans.schema.database.eq_ignore_ascii_case(&inst.schema.database) {
                routed_right += 1;
            }
            executed += 1;
        }
    }
    let n = prepared().corpus.test.len();
    assert!(routed_right > 0, "no question routed to the right database");
    assert!(executed > n / 4, "only {executed}/{n} questions executed end to end");
}

#[test]
fn topk_fallback_with_repair_answers_strictly_more_questions() {
    // The redesign's acceptance criterion: walking the router's top-3
    // candidates with one execution-feedback repair answers strictly more
    // test questions end to end than the old single-candidate path — and
    // never loses one (the fallback loop starts from the same candidate).
    let copilot = fixture();
    let single_opts = AskOptions::first_candidate();
    let fallback_opts = AskOptions::new().top_k(3).repair_attempts(1);
    let mut single = 0usize;
    let mut fallback = 0usize;
    let mut regressions = Vec::new();
    for inst in &prepared().corpus.test {
        let s = copilot.ask_with(&inst.question, &single_opts).is_ok();
        let f = copilot.ask_with(&inst.question, &fallback_opts).is_ok();
        single += s as usize;
        fallback += f as usize;
        if s && !f {
            regressions.push(inst.question.clone());
        }
    }
    assert!(regressions.is_empty(), "fallback lost answers: {regressions:?}");
    assert!(
        fallback > single,
        "top-3 + repair ({fallback}) must answer strictly more than single-candidate ({single})"
    );
}

#[test]
fn recovered_answers_surface_their_execution_errors() {
    // Satellite of the redesign: execution errors are never dropped — an
    // answer that needed the fallback machinery reports what failed, and a
    // terminal failure carries the typed engine error chain.
    let copilot = fixture();
    let opts = AskOptions::new().top_k(3).repair_attempts(1);
    let mut saw_recovered_error = false;
    for inst in &prepared().corpus.test {
        match copilot.ask_with(&inst.question, &opts) {
            Ok(report) => {
                for err in &report.answer.recovered_errors {
                    saw_recovered_error = true;
                    assert!(!err.to_string().is_empty());
                }
            }
            Err(dbcopilot::AskError::Execution(e)) => {
                saw_recovered_error = true;
                assert!(!e.attempts.is_empty(), "execution failure must carry its attempts");
            }
            Err(_) => {}
        }
    }
    // With the default 3% malformed-SQL rate over 60 questions × up to 3
    // candidates, at least one execution error must have surfaced.
    assert!(saw_recovered_error, "no execution error surfaced anywhere in the corpus");
}

#[test]
fn quantized_routing_matches_f32_recall_and_candidate_order() {
    // The quantized hot path must be quality-invisible at quick scale:
    // R@1/R@5 within one point of the f32 reference, and the ranked
    // candidate list identical on (nearly) every eval question. The i8
    // router is a bit-exact codec round-trip of the shared fixture, so the
    // only difference between the two runs is the precision knob.
    use dbcopilot::retrieval::SchemaRouter;
    use dbcopilot_core::{load_router, save_router, PrecisionSwitch, RoutePrecision};

    let p = prepared();
    let f32_router = &fixture().router;
    let mut buf = Vec::new();
    save_router(f32_router, &mut buf).expect("fixture router must serialize");
    let mut i8_router = load_router(&buf[..]).expect("fixture bundle must load");
    i8_router.set_precision(RoutePrecision::I8);

    let m_f32 = eval_routing(f32_router, &p.corpus.test, 100);
    let m_i8 = eval_routing(&i8_router, &p.corpus.test, 100);
    assert!(
        (m_f32.db_r1 - m_i8.db_r1).abs() <= 1.0,
        "i8 R@1 {:.1} drifted more than a point from f32 {:.1}",
        m_i8.db_r1,
        m_f32.db_r1
    );
    assert!(
        (m_f32.db_r5 - m_i8.db_r5).abs() <= 1.0,
        "i8 R@5 {:.1} drifted more than a point from f32 {:.1}",
        m_i8.db_r5,
        m_f32.db_r5
    );

    let mut identical = 0usize;
    for inst in &p.corpus.test {
        let a = f32_router.route(&inst.question, 100);
        let b = i8_router.route(&inst.question, 100);
        identical += (a.database_names() == b.database_names()) as usize;
    }
    let frac = identical as f64 / p.corpus.test.len() as f64;
    assert!(
        frac >= 0.95,
        "i8 candidate order matches f32 on only {identical}/{} questions",
        p.corpus.test.len()
    );
}

#[test]
fn experiments_are_deterministic() {
    let scale = test_scale();
    let a = {
        let p = prepare(CorpusKind::Spider, &scale);
        let (bm25, _) = build_method(MethodKind::Bm25, &p, &scale);
        eval_routing(bm25.as_ref(), &p.corpus.test, 100)
    };
    let b = {
        let p = prepare(CorpusKind::Spider, &scale);
        let (bm25, _) = build_method(MethodKind::Bm25, &p, &scale);
        eval_routing(bm25.as_ref(), &p.corpus.test, 100)
    };
    assert_eq!(a, b, "same seed must give identical metrics");
}
