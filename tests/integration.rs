//! Cross-crate integration tests: the full pipeline at small scale.

use dbcopilot::eval::{build_method, eval_routing, prepare, CorpusKind, MethodKind, Scale};
use dbcopilot::{DbCopilot, PipelineConfig};
use dbcopilot_core::{DbcRouter, SerializationMode};
use dbcopilot_synth::{build_spider_like, CorpusSizes};

fn test_scale() -> Scale {
    let mut s = Scale::quick();
    s.spider = CorpusSizes { num_databases: 12, train_n: 300, test_n: 60 };
    s.synth_pairs = 900;
    s.router.epochs = 6;
    s
}

#[test]
fn router_beats_zero_shot_bm25_on_synonym_questions() {
    // The paper's robustness claim (Table 4): lexical retrieval collapses
    // under synonym substitution; the trained router does not.
    let scale = test_scale();
    let prepared = prepare(CorpusKind::Spider, &scale);
    let syn = prepared.corpus.test_syn.as_ref().unwrap();

    let (bm25, _) = build_method(MethodKind::Bm25, &prepared, &scale);
    let (dbc, _) = DbcRouter::fit(
        prepared.graph.clone(),
        &prepared.synth_examples,
        scale.router.clone(),
        SerializationMode::Dfs,
    );
    let m_bm25 = eval_routing(bm25.as_ref(), syn, 100);
    let m_dbc = eval_routing(&dbc, syn, 100);
    assert!(
        m_dbc.db_r1 > m_bm25.db_r1,
        "router {:.1} should beat BM25 {:.1} on synonym questions",
        m_dbc.db_r1,
        m_bm25.db_r1
    );
}

#[test]
fn routed_schemata_are_always_valid() {
    // Constrained decoding guarantees every candidate is a valid schema on
    // the graph, for arbitrary questions (§3.5).
    let scale = test_scale();
    let prepared = prepare(CorpusKind::Spider, &scale);
    let router = DbcRouter::untrained(prepared.graph.clone(), scale.router.clone());
    for q in [
        "how many things are there",
        "zorgon blaster quux",
        "",
        "list the names of vocalists that are associated with the live show named 'X'",
    ] {
        for cand in router.route_schemata(q) {
            assert!(
                prepared.graph.is_valid_schema(&cand.schema),
                "invalid schema {} for question {q:?}",
                cand.schema
            );
        }
    }
}

#[test]
fn smoke_quickstart_pipeline() {
    // Fast end-to-end smoke: the quickstart pipeline on a tiny corpus must
    // route at least one test question to a non-empty schema and execute the
    // generated SQL to a ResultSet. Keeps the zero-to-working path honest
    // without the cost of the accuracy-threshold tests below.
    let corpus = build_spider_like(&CorpusSizes { num_databases: 4, train_n: 80, test_n: 10 }, 7);
    let mut cfg = PipelineConfig::default();
    cfg.router.epochs = 8;
    cfg.synth_pairs = 300;
    let copilot = DbCopilot::fit(&corpus, cfg);

    let mut routed_nonempty = false;
    let mut executed = false;
    for inst in &corpus.test {
        if let Some(ans) = copilot.ask(&inst.question) {
            if !ans.schema.database.is_empty() && !ans.schema.tables.is_empty() {
                routed_nonempty = true;
            }
            if ans.result.is_some() {
                executed = true;
            }
        }
        if routed_nonempty && executed {
            break;
        }
    }
    assert!(routed_nonempty, "no question routed to a non-empty schema");
    assert!(executed, "no generated SQL executed to a ResultSet");
}

#[test]
fn full_pipeline_answers_questions() {
    let corpus = build_spider_like(&CorpusSizes { num_databases: 10, train_n: 250, test_n: 25 }, 5);
    let mut cfg = PipelineConfig::default();
    cfg.router.epochs = 12;
    cfg.synth_pairs = 800;
    let copilot = DbCopilot::fit(&corpus, cfg);
    let mut routed_right = 0;
    let mut executed = 0;
    for inst in &corpus.test {
        if let Some(ans) = copilot.ask(&inst.question) {
            if ans.schema.database.eq_ignore_ascii_case(&inst.schema.database) {
                routed_right += 1;
            }
            if ans.result.is_some() {
                executed += 1;
            }
        }
    }
    assert!(routed_right > 0, "no question routed to the right database");
    assert!(executed > 5, "only {executed} questions executed end to end");
}

#[test]
fn experiments_are_deterministic() {
    let scale = test_scale();
    let a = {
        let p = prepare(CorpusKind::Spider, &scale);
        let (bm25, _) = build_method(MethodKind::Bm25, &p, &scale);
        eval_routing(bm25.as_ref(), &p.corpus.test, 100)
    };
    let b = {
        let p = prepare(CorpusKind::Spider, &scale);
        let (bm25, _) = build_method(MethodKind::Bm25, &p, &scale);
        eval_routing(bm25.as_ref(), &p.corpus.test, 100)
    };
    assert_eq!(a, b, "same seed must give identical metrics");
}
