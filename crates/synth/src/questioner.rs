//! The schema questioning model `M_q` (paper §3.4, Figure 3).
//!
//! The paper trains a T5 model *in reverse* on NL2SQL training pairs: input
//! a detailed schema, output a plausible user question. This module is the
//! statistical analog, learned from the same supervision with no access to
//! the generator's lexicon:
//!
//! 1. a **phrase table** aligning schema tokens to question n-grams by
//!    pointwise mutual information (learns that `singer` is verbalized as
//!    "singers", "vocalists", …);
//! 2. **question patterns**: training questions delexicalized by replacing
//!    aligned phrases with typed slots (`{e0}`, `{a}`, `{num}`, `{val}`),
//!    kept with frequencies per schema size.
//!
//! Generation samples a pattern for the sampled schema's table count and
//! fills slots from the phrase table. Two noise knobs reproduce the paper's
//! observed failure modes (§4.2.2): `hallucination_prob` fills a slot from
//! the wrong schema element, and pattern sampling by raw frequency gives the
//! "generation bias" of a simple pipeline.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for training/generation.
#[derive(Debug, Clone)]
pub struct QuestionerConfig {
    /// Maximum n-gram length considered for alignment.
    pub max_ngram: usize,
    /// Minimum joint count for a phrase-token alignment.
    pub min_count: u32,
    /// Phrases kept per schema token.
    pub top_phrases: usize,
    /// Probability of filling a slot from the wrong schema element.
    pub hallucination_prob: f64,
}

impl Default for QuestionerConfig {
    fn default() -> Self {
        QuestionerConfig { max_ngram: 3, min_count: 3, top_phrases: 6, hallucination_prob: 0.06 }
    }
}

/// One training pair: canonical schema tokens plus the question.
#[derive(Debug, Clone)]
pub struct TrainPair {
    /// Entity tokens (one per table, canonical form).
    pub entities: Vec<String>,
    /// Attribute tokens of the involved tables (canonical form).
    pub attrs: Vec<String>,
    pub question: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Pattern {
    /// Delexicalized text with `{e0}`, `{e1}`, `{e2}`, `{a}`, `{num}`,
    /// `{val}` slots.
    text: String,
    n_tables: usize,
    weight: f32,
}

/// The trained questioner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Questioner {
    /// token → (phrase, score), best first.
    phrase_table: BTreeMap<String, Vec<(String, f32)>>,
    patterns: Vec<Pattern>,
    /// All known tokens (for hallucination sampling).
    tokens: Vec<String>,
    hallucination_prob: f64,
}

const STOPWORDS: &[&str] = &[
    "the",
    "of",
    "all",
    "a",
    "an",
    "is",
    "are",
    "was",
    "how",
    "many",
    "what",
    "which",
    "whose",
    "list",
    "show",
    "give",
    "its",
    "their",
    "each",
    "for",
    "with",
    "than",
    "to",
    "that",
    "have",
    "has",
    "does",
    "in",
    "and",
    "or",
    "there",
    "at",
    "least",
    "one",
    "more",
    "name",
    "names",
    "together",
    "associated",
    "named",
    "equal",
    "equals",
    "greater",
    "less",
    "above",
    "below",
    "values",
    "maximum",
    "minimum",
    "average",
    "total",
    "highest",
    "lowest",
];

fn is_stop(word: &str) -> bool {
    STOPWORDS.contains(&word)
}

/// Lowercase word tokens with numbers and quoted spans replaced by slot
/// markers.
fn question_words(q: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_quote = false;
    for raw in q.split_whitespace() {
        let w: String = raw.chars().filter(|c| c.is_alphanumeric() || *c == '\'').collect();
        if w.is_empty() {
            continue;
        }
        if w.starts_with('\'') {
            in_quote = true;
        }
        if in_quote {
            if w.len() > 1 && w.ends_with('\'') {
                in_quote = false;
            }
            if out.last().map(String::as_str) != Some("{val}") {
                out.push("{val}".to_string());
            }
            continue;
        }
        let w = w.trim_matches('\'').to_lowercase();
        if w.is_empty() {
            continue;
        }
        if w.chars().all(|c| c.is_ascii_digit() || c == '.') {
            out.push("{num}".to_string());
        } else {
            out.push(w);
        }
    }
    out
}

impl Questioner {
    /// Train from pairs.
    pub fn train(pairs: &[TrainPair], cfg: &QuestionerConfig) -> Self {
        // --- phase 1: alignment counts
        let mut token_count: BTreeMap<String, u32> = BTreeMap::new();
        let mut phrase_count: BTreeMap<String, u32> = BTreeMap::new();
        let mut joint: BTreeMap<(String, String), u32> = BTreeMap::new();
        let mut n_pairs = 0u32;

        for pair in pairs {
            n_pairs += 1;
            let words = question_words(&pair.question);
            let grams = ngrams(&words, cfg.max_ngram);
            let mut tokens: Vec<&String> = pair.entities.iter().collect();
            tokens.extend(pair.attrs.iter());
            for t in &tokens {
                *token_count.entry((*t).clone()).or_insert(0) += 1;
            }
            for g in &grams {
                *phrase_count.entry(g.clone()).or_insert(0) += 1;
                for t in &tokens {
                    *joint.entry((g.clone(), (*t).clone())).or_insert(0) += 1;
                }
            }
        }

        // --- phase 2: phrase table by PMI-style score
        // A phrase that aligns with many different tokens is template filler
        // or cross-table noise; discount it by its token document frequency.
        let mut token_df: BTreeMap<&String, u32> = BTreeMap::new();
        for ((g, _), &c) in &joint {
            if c >= cfg.min_count {
                *token_df.entry(g).or_insert(0) += 1;
            }
        }
        let mut phrase_table: BTreeMap<String, Vec<(String, f32)>> = BTreeMap::new();
        for ((g, t), &c) in &joint {
            if c < cfg.min_count {
                continue;
            }
            let pc = phrase_count[g] as f32;
            let tc = token_count[t] as f32;
            let df = token_df.get(g).copied().unwrap_or(1) as f32;
            // PMI with a frequency prior: favors phrases specific to the token.
            let score = (c as f32 * n_pairs as f32) / (pc * tc) * (c as f32).ln_1p() / df.powf(1.5);
            phrase_table.entry(t.clone()).or_default().push((g.clone(), score));
        }
        for phrases in phrase_table.values_mut() {
            phrases.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            // Prefer longer, more specific phrases among near-equal scores.
            phrases.truncate(cfg.top_phrases * 3);
            phrases.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.0.len().cmp(&a.0.len()))
            });
            phrases.truncate(cfg.top_phrases);
        }
        // Subword prior: a seq2seq questioner can always verbalize an
        // identifier by splitting it; seed every token with its split form
        // (and the plural) so rare tokens still generate.
        for t in token_count.keys() {
            let split = t.replace('_', " ");
            let plural = crate::lexicon::pluralize(&split);
            let entry = phrase_table.entry(t.clone()).or_default();
            let prior = entry.first().map(|(_, s)| *s * 0.8).unwrap_or(1.0);
            for form in [split, plural] {
                if !entry.iter().any(|(p, _)| *p == form) {
                    entry.push((form, prior));
                }
            }
        }
        // Vocabulary of entity words: used to reject patterns with leftover
        // (misaligned) entity mentions.
        let mut entity_words: std::collections::HashSet<String> = std::collections::HashSet::new();
        for pair in pairs {
            for ent in &pair.entities {
                if let Some(phrases) = phrase_table.get(ent) {
                    for (p, _) in phrases {
                        for w in p.split_whitespace() {
                            if !is_stop(w) {
                                entity_words.insert(w.to_string());
                            }
                        }
                    }
                }
            }
        }

        // --- phase 3: pattern extraction by delexicalization
        let mut pattern_counts: BTreeMap<(String, usize), f32> = BTreeMap::new();
        for pair in pairs {
            let words = question_words(&pair.question);
            let mut text = words.join(" ");
            for (i, ent) in pair.entities.iter().enumerate() {
                if let Some(phrases) = phrase_table.get(ent) {
                    if let Some(best) = best_occurring(&text, phrases) {
                        text = text.replacen(&best, &format!("{{e{i}}}"), 1);
                    }
                }
            }
            for attr in &pair.attrs {
                if let Some(phrases) = phrase_table.get(attr) {
                    if let Some(best) = best_occurring(&text, phrases) {
                        text = text.replacen(&best, "{a}", 1);
                        break; // one attribute slot per pattern
                    }
                }
            }
            // Quality gates: at least one entity slot extracted, and no
            // stray entity words left behind by misalignment.
            if !text.contains("{e") {
                continue;
            }
            let leftover =
                text.split_whitespace().any(|w| !w.starts_with('{') && entity_words.contains(w));
            if leftover {
                continue;
            }
            *pattern_counts.entry((text, pair.entities.len())).or_insert(0.0) += 1.0;
        }
        let mut patterns: Vec<Pattern> = pattern_counts
            .into_iter()
            .map(|((text, n_tables), weight)| Pattern { text, n_tables, weight })
            .collect();
        patterns.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.text.cmp(&b.text))
        });
        patterns.truncate(400);

        let tokens: Vec<String> = token_count.keys().cloned().collect();
        Questioner { phrase_table, patterns, tokens, hallucination_prob: cfg.hallucination_prob }
    }

    /// Phrases learned for a token (diagnostics / tests).
    pub fn phrases_of(&self, token: &str) -> Vec<&str> {
        self.phrase_table
            .get(token)
            .map(|v| v.iter().map(|(p, _)| p.as_str()).collect())
            .unwrap_or_default()
    }

    /// Number of learned patterns.
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Generate a pseudo-question for a sampled schema described by its
    /// entity tokens (one per table) and attribute tokens.
    pub fn generate(&self, entities: &[String], attrs: &[String], rng: &mut SmallRng) -> String {
        let n = entities.len().max(1);
        let candidates: Vec<&Pattern> = self.patterns.iter().filter(|p| p.n_tables == n).collect();
        let pattern_text = if candidates.is_empty() {
            fallback_pattern(n)
        } else {
            weighted_choice(&candidates, rng).text.clone()
        };

        let mut out = pattern_text;
        for i in 0..n {
            let slot = format!("{{e{i}}}");
            if !out.contains(&slot) {
                continue;
            }
            let token = if rng.gen_bool(self.hallucination_prob) && !self.tokens.is_empty() {
                // hallucination: verbalize the wrong element
                self.tokens[rng.gen_range(0..self.tokens.len())].clone()
            } else {
                entities.get(i).cloned().unwrap_or_default()
            };
            let phrase = self.sample_phrase(&token, rng);
            out = out.replacen(&slot, &phrase, 1);
        }
        if out.contains("{a}") {
            let token = if attrs.is_empty() {
                entities.first().cloned().unwrap_or_default()
            } else if rng.gen_bool(self.hallucination_prob) && !self.tokens.is_empty() {
                self.tokens[rng.gen_range(0..self.tokens.len())].clone()
            } else {
                attrs[rng.gen_range(0..attrs.len())].clone()
            };
            let phrase = self.sample_phrase(&token, rng);
            out = out.replace("{a}", &phrase);
        }
        while out.contains("{num}") {
            out = out.replacen("{num}", &format!("{}", rng.gen_range(1..100)), 1);
        }
        while out.contains("{val}") {
            out = out.replacen("{val}", &format!("'{}'", crate::corpusgen::gen_name(rng)), 1);
        }
        out
    }

    fn sample_phrase(&self, token: &str, rng: &mut SmallRng) -> String {
        match self.phrase_table.get(token) {
            Some(phrases) if !phrases.is_empty() => {
                // Sample ∝ score.
                let total: f32 = phrases.iter().map(|(_, s)| s).sum();
                let mut pick = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
                for (p, s) in phrases {
                    if pick < *s {
                        return p.clone();
                    }
                    pick -= s;
                }
                phrases[0].0.clone()
            }
            // Unseen token: fall back to splitting the identifier — exactly
            // what a seq2seq questioner does with subwords.
            _ => token.replace('_', " "),
        }
    }
}

fn ngrams(words: &[String], max_n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        for w in words.windows(n) {
            // skip slot markers and grams with stopword edges: they are
            // template filler ("names of X"), not content phrases
            if w.iter().any(|x| x.starts_with('{')) {
                continue;
            }
            if is_stop(w.first().unwrap()) || is_stop(w.last().unwrap()) {
                continue;
            }
            out.push(w.join(" "));
        }
    }
    out
}

/// The best-scored phrase of `phrases` occurring in `text` (whole-word).
fn best_occurring(text: &str, phrases: &[(String, f32)]) -> Option<String> {
    let padded = format!(" {text} ");
    // Prefer the longest occurring phrase, then score order.
    let mut hit: Option<&String> = None;
    for (p, _) in phrases {
        if padded.contains(&format!(" {p} ")) {
            match hit {
                Some(h) if h.len() >= p.len() => {}
                _ => hit = Some(p),
            }
        }
    }
    hit.cloned()
}

fn weighted_choice<'a>(candidates: &[&'a Pattern], rng: &mut SmallRng) -> &'a Pattern {
    let total: f32 = candidates.iter().map(|p| p.weight).sum();
    let mut pick = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for p in candidates {
        if pick < p.weight {
            return p;
        }
        pick -= p.weight;
    }
    candidates[candidates.len() - 1]
}

fn fallback_pattern(n: usize) -> String {
    match n {
        1 => "list the {a} of all {e0}".to_string(),
        2 => "show each {e0} together with its {e1}".to_string(),
        _ => "list the {e1} that are associated with the {e2} named {val}".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy_pairs() -> Vec<TrainPair> {
        let mut pairs = Vec::new();
        for _ in 0..5 {
            pairs.push(TrainPair {
                entities: vec!["singer".into()],
                attrs: vec!["age".into()],
                question: "What are the names of vocalists whose age is greater than 30?".into(),
            });
            pairs.push(TrainPair {
                entities: vec!["singer".into()],
                attrs: vec![],
                question: "How many singers are there?".into(),
            });
            pairs.push(TrainPair {
                entities: vec!["concert".into()],
                attrs: vec!["capacity".into()],
                question: "What is the average capacity of all live shows?".into(),
            });
            pairs.push(TrainPair {
                entities: vec!["singer".into(), "concert".into()],
                attrs: vec![],
                question: "Show the name of each vocalist together with the name of its live show."
                    .into(),
            });
        }
        pairs
    }

    #[test]
    fn learns_synonym_alignments() {
        let q = Questioner::train(&toy_pairs(), &QuestionerConfig::default());
        let phrases = q.phrases_of("singer");
        assert!(
            phrases.iter().any(|p| p.contains("vocalist") || p.contains("singers")),
            "learned phrases: {phrases:?}"
        );
    }

    #[test]
    fn extracts_patterns() {
        let q = Questioner::train(&toy_pairs(), &QuestionerConfig::default());
        assert!(q.num_patterns() > 0);
    }

    #[test]
    fn generates_non_empty_questions() {
        let q = Questioner::train(&toy_pairs(), &QuestionerConfig::default());
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let out = q.generate(&["singer".into()], &["age".into()], &mut rng);
            assert!(!out.is_empty());
            assert!(!out.contains("{e0}"), "unfilled slot in {out:?}");
            assert!(!out.contains("{a}"), "unfilled slot in {out:?}");
            assert!(!out.contains("{num}"), "unfilled slot in {out:?}");
            assert!(!out.contains("{val}"), "unfilled slot in {out:?}");
        }
    }

    #[test]
    fn unseen_tokens_fall_back_to_identifier_split() {
        let q = Questioner::train(&toy_pairs(), &QuestionerConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let out = q.generate(&["exotic_gadget".into()], &[], &mut rng);
        assert!(out.contains("exotic gadget") || !out.is_empty());
    }

    #[test]
    fn question_words_slots() {
        let w = question_words("Which singers have country equal to 'France'? List 30 names.");
        assert!(w.contains(&"{val}".to_string()));
        assert!(w.contains(&"{num}".to_string()));
        assert!(w.contains(&"singers".to_string()));
    }

    #[test]
    fn hallucination_injects_wrong_phrases() {
        let cfg = QuestionerConfig { hallucination_prob: 1.0, ..Default::default() };
        let q = Questioner::train(&toy_pairs(), &cfg);
        let mut rng = SmallRng::seed_from_u64(7);
        // with prob 1 every entity slot is hallucinated; over many samples we
        // should see concert phrases for a singer schema
        let outs: Vec<String> =
            (0..30).map(|_| q.generate(&["singer".into()], &[], &mut rng)).collect();
        let off_topic = outs
            .iter()
            .filter(|o| o.contains("live show") || o.contains("concert") || o.contains("capacity"))
            .count();
        assert!(off_topic > 0, "expected hallucinated phrases: {outs:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let q = Questioner::train(&toy_pairs(), &QuestionerConfig::default());
        let a: Vec<String> = {
            let mut rng = SmallRng::seed_from_u64(11);
            (0..5).map(|_| q.generate(&["singer".into()], &["age".into()], &mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = SmallRng::seed_from_u64(11);
            (0..5).map(|_| q.generate(&["singer".into()], &["age".into()], &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
