//! Synthetic database-collection generation.
//!
//! Stands in for the paper's adapted Spider / Bird / Fiben collections
//! (Table 2). The generator reproduces the *shapes* that matter for schema
//! routing: many heterogeneous databases, FK topologies with junction
//! tables, lexically overlapping table names across databases, and populated
//! rows (needed for joinability detection and execution accuracy).

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dbcopilot_sqlengine::{
    Collection, DataType, Database, DatabaseSchema, Store, TableSchema, Value,
};

use crate::lexicon::{
    AttrSpec, ValueSpec, CATEGORY_POOLS, DOMAINS, ENTITIES, NAME_FIRST, NAME_SECOND,
};

/// Per-table generation metadata consumed by the instance generator.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub table: String,
    /// Canonical entity key into the lexicon (junction tables: the pair).
    pub entity: String,
    /// Canonical attribute keys (order matches the non-key columns).
    pub attrs: Vec<String>,
    /// `(parent_table, fk_column)` pairs.
    pub parents: Vec<(String, String)>,
    pub is_junction: bool,
    /// For junctions: the two endpoint tables.
    pub endpoints: Option<(String, String)>,
    /// Primary key column name, if any.
    pub pk: Option<String>,
    /// Does the table have a `name` column?
    pub has_name: bool,
}

impl TableMeta {
    /// The schema-aligned verbalization of this table: the table name with
    /// any mart prefix stripped ("banking_account" → "account",
    /// "vocalist" → "vocalist").
    pub fn aligned_name(&self, lex: &crate::lexicon::Lexicon) -> String {
        let mut forms = vec![self.entity.clone()];
        if let Some(e) = lex.entity(&self.entity) {
            forms.extend(e.synonyms.iter().map(|s| s.to_lowercase().replace(' ', "_")));
        }
        for f in &forms {
            if self.table == *f {
                return f.clone();
            }
        }
        for f in &forms {
            if self.table.ends_with(&format!("_{f}")) {
                return f.clone();
            }
        }
        self.table.clone()
    }
}

/// Metadata for one database.
#[derive(Debug, Clone, Default)]
pub struct DbMeta {
    pub tables: BTreeMap<String, TableMeta>,
    pub domain: String,
}

/// Metadata for a whole collection.
#[derive(Debug, Clone, Default)]
pub struct CorpusMeta {
    pub per_db: BTreeMap<String, DbMeta>,
}

/// Collection-level generation parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    pub num_databases: usize,
    /// Range of entity tables per database (inclusive).
    pub entities_per_db: (usize, usize),
    /// Probability of adding a junction table per database (applied twice).
    pub junction_prob: f64,
    /// Row count range per table (inclusive).
    pub rows_per_table: (usize, usize),
    pub seed: u64,
}

impl GenConfig {
    /// Spider-like: 166 databases, ~5.3 tables each.
    pub fn spider_like(seed: u64) -> Self {
        GenConfig {
            num_databases: 166,
            entities_per_db: (3, 6),
            junction_prob: 0.55,
            rows_per_table: (16, 48),
            seed,
        }
    }

    /// Bird-like: 80 databases, ~7.5 tables each, more content.
    pub fn bird_like(seed: u64) -> Self {
        GenConfig {
            num_databases: 80,
            entities_per_db: (5, 8),
            junction_prob: 0.75,
            rows_per_table: (24, 72),
            seed,
        }
    }
}

/// Output of collection generation.
pub struct GeneratedCollection {
    pub collection: Collection,
    pub store: Store,
    pub meta: CorpusMeta,
}

/// Generate a multi-database collection.
pub fn generate_collection(cfg: &GenConfig) -> GeneratedCollection {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut collection = Collection::new();
    let mut store = Store::new();
    let mut meta = CorpusMeta::default();
    let mut stem_uses: BTreeMap<&'static str, usize> = BTreeMap::new();

    for i in 0..cfg.num_databases {
        let domain = &DOMAINS[i % DOMAINS.len()];
        let stem = domain.db_stems[(i / DOMAINS.len()) % domain.db_stems.len()];
        let n = {
            let c = stem_uses.entry(stem).or_insert(0);
            *c += 1;
            *c
        };
        let db_name = if n == 1 { stem.to_string() } else { format!("{stem}_{n}") };

        let k = rng.gen_range(cfg.entities_per_db.0..=cfg.entities_per_db.1);
        // Compositional pseudo-domain: 1–2 core entities from the named
        // domain plus entities drawn from the global pool. Spider's 200
        // databases span 138 domains — most databases are distinguishable
        // by their entity *combination*, with some genuine overlap (the
        // paper's flight/flight2 confusion case) retained.
        let mut core: Vec<&str> = domain.entities.to_vec();
        core.shuffle(&mut rng);
        core.truncate(2.min(k));
        let mut entities: Vec<&str> = core;
        while entities.len() < k {
            let cand = ENTITIES[rng.gen_range(0..ENTITIES.len())].name;
            if !entities.contains(&cand) {
                entities.push(cand);
            }
        }

        let (schema, db, db_meta) = generate_database(
            &db_name,
            domain.name,
            &entities,
            None,
            cfg.junction_prob,
            cfg.rows_per_table,
            &mut rng,
        );
        collection.add_database(schema);
        store.add(db);
        meta.per_db.insert(db_name, db_meta);
    }

    GeneratedCollection { collection, store, meta }
}

/// Generate a Fiben-like single-database mart: one database with many
/// subject areas, each a prefixed star of tables (~`areas × tables_per_area`
/// tables total).
pub fn generate_mart(
    db_name: &str,
    areas: usize,
    tables_per_area: (usize, usize),
    rows_per_table: (usize, usize),
    seed: u64,
) -> GeneratedCollection {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut schema = DatabaseSchema::new(db_name);
    let mut db_meta = DbMeta { tables: BTreeMap::new(), domain: "finance_mart".into() };
    let mut rows: Vec<(TableSchema, Vec<Vec<Value>>)> = Vec::new();

    for a in 0..areas {
        let domain = &DOMAINS[a % DOMAINS.len()];
        // Unique prefix per area even when domains repeat across areas.
        let round = a / DOMAINS.len();
        let prefix = if round == 0 {
            domain.db_stems[0].to_string()
        } else {
            format!("{}{}", domain.db_stems[0], round + 1)
        };
        let k = rng.gen_range(tables_per_area.0..=tables_per_area.1);
        let mut entities: Vec<&str> = domain.entities.to_vec();
        entities.shuffle(&mut rng);
        entities.truncate(k.min(entities.len()));
        let prefixed: Vec<String> = entities.iter().map(|e| format!("{prefix}_{e}")).collect();
        let area_tables =
            build_tables(&prefixed, &entities, 0.8, rows_per_table, &mut rng, &mut db_meta);
        rows.extend(area_tables);
    }

    let mut db_tables = BTreeMap::new();
    for (ts, trows) in rows {
        schema.tables.push(ts.clone());
        let mut t = dbcopilot_sqlengine::Table::new(ts);
        for r in trows {
            t.insert(r).expect("generated row must fit schema");
        }
        db_tables.insert(t.schema.name.clone(), t);
    }
    let db = Database { name: db_name.to_string(), tables: db_tables };

    let mut collection = Collection::new();
    collection.add_database(schema);
    let mut store = Store::new();
    store.add(db);
    let mut meta = CorpusMeta::default();
    meta.per_db.insert(db_name.to_string(), db_meta);
    GeneratedCollection { collection, store, meta }
}

/// Generate one database: schema, content, metadata.
#[allow(clippy::too_many_arguments)]
fn generate_database(
    db_name: &str,
    domain: &str,
    entities: &[&str],
    table_prefix: Option<&str>,
    junction_prob: f64,
    rows_per_table: (usize, usize),
    rng: &mut SmallRng,
) -> (DatabaseSchema, Database, DbMeta) {
    let mut schema = DatabaseSchema::new(db_name);
    let mut db_meta = DbMeta { tables: BTreeMap::new(), domain: domain.to_string() };

    // Real organizations name the same concept differently: with some
    // probability a table is named after a synonym of its entity
    // ("vocalist" instead of "singer"). This diversifies table vocabulary
    // across databases (reducing accidental cross-database collisions) and
    // deepens the question↔schema semantic gap (paper challenge C3).
    let table_names: Vec<String> = entities
        .iter()
        .map(|e| {
            let base = if rng.gen_bool(0.35) { synonym_table_name(e, rng) } else { e.to_string() };
            match table_prefix {
                Some(p) => format!("{p}_{base}"),
                None => base,
            }
        })
        .collect();
    let mut tables = build_tables(&table_names, entities, 0.65, rows_per_table, rng, &mut db_meta);

    // Junction tables between FK-unrelated entity pairs.
    for _ in 0..2 {
        if entities.len() >= 2 && rng.gen_bool(junction_prob) {
            let mut idx: Vec<usize> = (0..entities.len()).collect();
            idx.shuffle(rng);
            let (ai, bi) = (idx[0], idx[1]);
            let a_table = table_names[ai].clone();
            let b_table = table_names[bi].clone();
            let j_name = format!("{}_in_{}", entities[ai], entities[bi]);
            if db_meta.tables.contains_key(&j_name) {
                continue;
            }
            let a_pk = format!("{}_id", entities[ai]);
            let b_pk = format!("{}_id", entities[bi]);
            let ts = TableSchema::new(j_name.clone())
                .column(a_pk.clone(), DataType::Int)
                .column(b_pk.clone(), DataType::Int)
                .column("year", DataType::Int)
                .foreign(a_pk.clone(), a_table.clone(), a_pk.clone())
                .foreign(b_pk.clone(), b_table.clone(), b_pk.clone());
            // rows: random pairs
            let a_rows =
                tables.iter().find(|(t, _)| t.name == a_table).map(|(_, r)| r.len()).unwrap_or(1);
            let b_rows =
                tables.iter().find(|(t, _)| t.name == b_table).map(|(_, r)| r.len()).unwrap_or(1);
            let n = rng.gen_range(rows_per_table.0..=rows_per_table.1);
            let mut trows = Vec::with_capacity(n);
            for _ in 0..n {
                trows.push(vec![
                    Value::Int(rng.gen_range(1..=a_rows as i64)),
                    Value::Int(rng.gen_range(1..=b_rows as i64)),
                    Value::Int(rng.gen_range(1990..=2024)),
                ]);
            }
            db_meta.tables.insert(
                j_name.clone(),
                TableMeta {
                    table: j_name.clone(),
                    entity: format!("{}_in_{}", entities[ai], entities[bi]),
                    attrs: vec!["year".into()],
                    parents: vec![(a_table.clone(), a_pk), (b_table.clone(), b_pk)],
                    is_junction: true,
                    endpoints: Some((a_table, b_table)),
                    pk: None,
                    has_name: false,
                },
            );
            tables.push((ts, trows));
        }
    }

    let mut db_tables = BTreeMap::new();
    for (ts, trows) in tables {
        schema.tables.push(ts.clone());
        let mut t = dbcopilot_sqlengine::Table::new(ts);
        for r in trows {
            t.insert(r).expect("generated row must fit schema");
        }
        db_tables.insert(t.schema.name.clone(), t);
    }
    let db = Database { name: db_name.to_string(), tables: db_tables };
    (schema, db, db_meta)
}

/// Build entity tables with a random FK topology and populated rows.
fn build_tables(
    table_names: &[String],
    entities: &[&str],
    fk_prob: f64,
    rows_per_table: (usize, usize),
    rng: &mut SmallRng,
    db_meta: &mut DbMeta,
) -> Vec<(TableSchema, Vec<Vec<Value>>)> {
    let mut out: Vec<(TableSchema, Vec<Vec<Value>>)> = Vec::new();
    let mut row_counts: Vec<usize> = Vec::new();

    for (ti, (tname, ekey)) in table_names.iter().zip(entities).enumerate() {
        let espec = ENTITIES
            .iter()
            .find(|e| e.name == *ekey)
            .unwrap_or_else(|| panic!("unknown entity {ekey}"));
        let pk_name = format!("{ekey}_id");
        let mut ts = TableSchema::new(tname.clone())
            .column(pk_name.clone(), DataType::Int)
            .column("name", DataType::Text)
            .primary(0);
        // Attribute subset: organizations model the same concept with
        // different attributes, so the (entity, attributes) combination —
        // not the entity alone — identifies a database. Keep at least one
        // numeric and one categorical attribute when the entity offers
        // them (the workload templates need both), drop others with
        // probability, and sometimes adopt 1–2 extra generic attributes.
        let mut attr_keys: Vec<&str> = Vec::new();
        let mut shuffled: Vec<&str> = espec.attrs.to_vec();
        shuffled.shuffle(rng);
        for akey in &shuffled {
            let spec = crate::lexicon::ATTRIBUTES.iter().find(|a| a.name == *akey).unwrap();
            let keep_floor = match spec.values {
                ValueSpec::Category(_) => !attr_keys.iter().any(|k| {
                    matches!(
                        crate::lexicon::ATTRIBUTES.iter().find(|a| a.name == *k).unwrap().values,
                        ValueSpec::Category(_)
                    )
                }),
                _ => !attr_keys.iter().any(|k| {
                    !matches!(
                        crate::lexicon::ATTRIBUTES.iter().find(|a| a.name == *k).unwrap().values,
                        ValueSpec::Category(_)
                    )
                }),
            };
            if keep_floor || rng.gen_bool(0.6) {
                attr_keys.push(akey);
            }
        }
        const EXTRA_POOL: &[&str] =
            &["year", "rating", "status", "region", "founded", "capacity", "points", "budget"];
        for _ in 0..2 {
            if rng.gen_bool(0.35) {
                let extra = EXTRA_POOL[rng.gen_range(0..EXTRA_POOL.len())];
                if !attr_keys.contains(&extra) {
                    attr_keys.push(extra);
                }
            }
        }
        let mut attr_specs: Vec<&AttrSpec> = Vec::new();
        for akey in &attr_keys {
            let aspec = crate::lexicon::ATTRIBUTES
                .iter()
                .find(|a| a.name == *akey)
                .unwrap_or_else(|| panic!("unknown attr {akey}"));
            ts = ts.column(aspec.name, aspec.ty);
            attr_specs.push(aspec);
        }
        // FK to a random earlier table.
        let mut parents = Vec::new();
        if ti > 0 && rng.gen_bool(fk_prob) {
            let pi = rng.gen_range(0..ti);
            let parent_table = table_names[pi].clone();
            let parent_pk = format!("{}_id", entities[pi]);
            let fk_col = parent_pk.clone();
            if ts.column_index(&fk_col).is_none() {
                ts = ts.column(fk_col.clone(), DataType::Int).foreign(
                    fk_col.clone(),
                    parent_table.clone(),
                    parent_pk,
                );
                parents.push((parent_table, fk_col));
            }
        }

        // Rows.
        let n = rng.gen_range(rows_per_table.0..=rows_per_table.1);
        let mut trows = Vec::with_capacity(n);
        for ri in 0..n {
            let mut row = vec![Value::Int(ri as i64 + 1)];
            row.push(Value::Text(gen_name(rng)));
            for a in &attr_specs {
                row.push(gen_value(a, rng));
            }
            for (pt, _) in &parents {
                let parent_rows =
                    table_names.iter().position(|t| t == pt).map(|i| row_counts[i]).unwrap_or(1);
                row.push(Value::Int(rng.gen_range(1..=parent_rows.max(1) as i64)));
            }
            trows.push(row);
        }
        row_counts.push(n);

        db_meta.tables.insert(
            tname.clone(),
            TableMeta {
                table: tname.clone(),
                entity: ekey.to_string(),
                attrs: attr_keys.iter().map(|a| a.to_string()).collect(),
                parents,
                is_junction: false,
                endpoints: None,
                pk: Some(pk_name),
                has_name: true,
            },
        );
        out.push((ts, trows));
    }
    out
}

/// Generate a value per spec.
fn gen_value(a: &AttrSpec, rng: &mut SmallRng) -> Value {
    match a.values {
        ValueSpec::Id => Value::Int(0),
        ValueSpec::IntRange(lo, hi) => Value::Int(rng.gen_range(lo..=hi)),
        ValueSpec::FloatRange(lo, hi) => {
            // Quantize to 2 decimals: stable text round-trips.
            let v = rng.gen_range(lo..hi);
            Value::Float((v * 100.0).round() / 100.0)
        }
        ValueSpec::ProperName => Value::Text(gen_name(rng)),
        ValueSpec::Category(i) => {
            let pool = CATEGORY_POOLS[i];
            Value::Text(pool[rng.gen_range(0..pool.len())].to_string())
        }
    }
}

/// SQL keywords that must not become bare table names.
const RESERVED_NAMES: &[&str] = &[
    "case", "select", "from", "where", "group", "order", "join", "union", "end", "left", "right",
    "on", "as", "by", "in", "is", "and", "or", "not", "between", "like",
];

/// Snake-cased synonym name for an entity table, seeded.
fn synonym_table_name(entity: &str, rng: &mut SmallRng) -> String {
    let spec = ENTITIES.iter().find(|e| e.name == entity);
    match spec {
        Some(e) if !e.synonyms.is_empty() => {
            let syn = e.synonyms[rng.gen_range(0..e.synonyms.len())];
            let name = syn.to_lowercase().replace(' ', "_");
            if RESERVED_NAMES.contains(&name.as_str()) {
                entity.to_string()
            } else {
                name
            }
        }
        _ => entity.to_string(),
    }
}

/// Two-part proper name.
pub fn gen_name(rng: &mut SmallRng) -> String {
    format!(
        "{} {}",
        NAME_FIRST[rng.gen_range(0..NAME_FIRST.len())],
        NAME_SECOND[rng.gen_range(0..NAME_SECOND.len())]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spider_like_shape() {
        let g = generate_collection(&GenConfig {
            num_databases: 30,
            entities_per_db: (3, 6),
            junction_prob: 0.5,
            rows_per_table: (8, 16),
            seed: 1,
        });
        assert_eq!(g.collection.num_databases(), 30);
        let avg = g.collection.num_tables() as f64 / 30.0;
        assert!((3.0..8.0).contains(&avg), "avg tables {avg}");
        // every schema table is populated and present in the store
        for (dbs, ts) in g.collection.tables() {
            let db = g.store.database(&dbs.name).expect("db in store");
            assert!(db.table(&ts.name).is_some(), "{}.{} missing", dbs.name, ts.name);
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = GenConfig {
            num_databases: 5,
            entities_per_db: (3, 4),
            junction_prob: 0.5,
            rows_per_table: (5, 9),
            seed: 7,
        };
        let a = generate_collection(&cfg);
        let b = generate_collection(&cfg);
        assert_eq!(a.collection.num_tables(), b.collection.num_tables());
        let names_a: Vec<String> = a.collection.databases.keys().cloned().collect();
        let names_b: Vec<String> = b.collection.databases.keys().cloned().collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn foreign_keys_reference_existing_tables() {
        let g = generate_collection(&GenConfig {
            num_databases: 20,
            entities_per_db: (3, 6),
            junction_prob: 0.8,
            rows_per_table: (5, 10),
            seed: 3,
        });
        for (db, t) in g.collection.tables() {
            for fk in &t.foreign_keys {
                let parent = db.table(&fk.ref_table);
                assert!(parent.is_some(), "{}.{} fk to missing {}", db.name, t.name, fk.ref_table);
                assert!(
                    parent.unwrap().column_index(&fk.ref_column).is_some(),
                    "fk target column missing"
                );
            }
        }
    }

    #[test]
    fn fk_values_within_parent_range() {
        let g = generate_collection(&GenConfig {
            num_databases: 10,
            entities_per_db: (3, 5),
            junction_prob: 0.6,
            rows_per_table: (5, 10),
            seed: 11,
        });
        for (dbschema, t) in g.collection.tables() {
            let db = g.store.database(&dbschema.name).unwrap();
            let table = db.table(&t.name).unwrap();
            for fk in &t.foreign_keys {
                let parent = db.table(&fk.ref_table).unwrap();
                let ci = t.column_index(&fk.column).unwrap();
                for row in &table.rows {
                    if let Value::Int(v) = row[ci] {
                        assert!(
                            v >= 1 && v <= parent.rows.len() as i64,
                            "dangling fk value {v} in {}.{}",
                            t.name,
                            fk.column
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn junction_meta_consistent() {
        let g = generate_collection(&GenConfig {
            num_databases: 25,
            entities_per_db: (3, 6),
            junction_prob: 1.0,
            rows_per_table: (5, 10),
            seed: 5,
        });
        let mut saw_junction = false;
        for (dbname, dbm) in &g.meta.per_db {
            for (tname, tm) in &dbm.tables {
                if tm.is_junction {
                    saw_junction = true;
                    let (a, b) = tm.endpoints.clone().unwrap();
                    let db = g.collection.database(dbname).unwrap();
                    assert!(db.table(&a).is_some() && db.table(&b).is_some());
                    assert_eq!(tm.parents.len(), 2, "{tname}");
                }
            }
        }
        assert!(saw_junction);
    }

    #[test]
    fn mart_generation_counts() {
        let g = generate_mart("fiben_mart", 10, (4, 6), (5, 10), 13);
        assert_eq!(g.collection.num_databases(), 1);
        let n = g.collection.num_tables();
        assert!((30..=60).contains(&n), "mart tables {n}");
        // prefixed table names unique
        let db = g.collection.database("fiben_mart").unwrap();
        let mut names = db.table_names();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn generated_sql_roundtrip_executes() {
        // smoke: SELECT COUNT(*) works on every generated table
        let g = generate_collection(&GenConfig {
            num_databases: 4,
            entities_per_db: (3, 4),
            junction_prob: 0.5,
            rows_per_table: (5, 8),
            seed: 23,
        });
        for (dbschema, t) in g.collection.tables() {
            let db = g.store.database(&dbschema.name).unwrap();
            let rs = dbcopilot_sqlengine::execute(db, &format!("SELECT COUNT(*) FROM {}", t.name))
                .unwrap();
            assert_eq!(rs.rows.len(), 1);
        }
    }
}
