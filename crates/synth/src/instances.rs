//! Workload instance generation: `(question N, schema S, SQL Q)` triples.
//!
//! Instances are sampled per database from the templates in
//! [`crate::templates`], with slot values drawn from actual table content so
//! filters are satisfiable. Robustness variants re-render the *same* specs
//! under different surface styles, exactly like Spider-syn / Spider-real
//! share Spider's databases and gold SQL.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dbcopilot_graph::QuerySchema;
use dbcopilot_sqlengine::Value;

use crate::corpusgen::{DbMeta, GeneratedCollection, TableMeta};
use crate::lexicon::Lexicon;
use crate::templates::{
    render_question, render_sql, AggKind, CmpOp, QuestionSpec, SurfaceStyle, TemplateKind,
};

/// One evaluated instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    pub id: usize,
    pub question: String,
    pub schema: QuerySchema,
    pub sql: String,
    /// The hidden intent (never shown to models; used by tests and variant
    /// re-rendering).
    pub spec: QuestionSpec,
}

/// Template mixture weights (roughly matching Spider's SQL-shape mix).
const KIND_WEIGHTS: &[(TemplateKind, f64)] = &[
    (TemplateKind::ListAttr, 1.2),
    (TemplateKind::FilterCmp, 1.4),
    (TemplateKind::FilterEq, 1.2),
    (TemplateKind::CountAll, 0.8),
    (TemplateKind::CountFilter, 1.0),
    (TemplateKind::AggAttr, 1.0),
    (TemplateKind::GroupCount, 0.9),
    (TemplateKind::GroupHaving, 0.7),
    (TemplateKind::TopK, 1.0),
    (TemplateKind::MaxSubquery, 0.7),
    (TemplateKind::JoinList, 1.2),
    (TemplateKind::JoinFilter, 1.2),
    (TemplateKind::CountJoin, 0.9),
    (TemplateKind::InSubquery, 0.8),
    (TemplateKind::JunctionList, 1.0),
];

/// Generate `n` instances across the whole collection.
pub fn generate_instances(
    gc: &GeneratedCollection,
    lex: &Lexicon,
    n: usize,
    style: SurfaceStyle,
    seed: u64,
) -> Vec<Instance> {
    let dbs: Vec<String> = gc.meta.per_db.keys().cloned().collect();
    generate_instances_for(gc, lex, n, style, seed, &dbs)
}

/// Generate `n` instances restricted to the given databases.
///
/// Mirrors Spider's protocol where train and test questions target
/// *disjoint* database sets — the property behind the paper's finding that
/// generative retrieval trained on original data cannot generalize to
/// unseen schemata (Table 7, "OD").
pub fn generate_instances_for(
    gc: &GeneratedCollection,
    lex: &Lexicon,
    n: usize,
    style: SurfaceStyle,
    seed: u64,
    dbs: &[String],
) -> Vec<Instance> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let db_names: Vec<&String> = dbs.iter().filter(|d| gc.meta.per_db.contains_key(*d)).collect();
    assert!(!db_names.is_empty(), "empty database subset");
    let mut out = Vec::with_capacity(n);
    let mut id = 0;
    while out.len() < n {
        let db = db_names[rng.gen_range(0..db_names.len())];
        let dbm = &gc.meta.per_db[db.as_str()];
        if let Some(spec) = sample_spec(gc, lex, db, dbm, &mut rng) {
            let question = render_question(&spec, lex, style, &mut rng);
            let sql = render_sql(&spec);
            out.push(Instance { id, question, schema: spec.schema(), sql, spec });
            id += 1;
        }
    }
    out
}

/// Re-render existing instances under a different surface style (robustness
/// variants). Gold schema and SQL are unchanged.
pub fn rerender_instances(
    instances: &[Instance],
    lex: &Lexicon,
    style: SurfaceStyle,
    seed: u64,
) -> Vec<Instance> {
    let mut rng = SmallRng::seed_from_u64(seed);
    instances
        .iter()
        .map(|inst| Instance {
            id: inst.id,
            question: render_question(&inst.spec, lex, style, &mut rng),
            schema: inst.schema.clone(),
            sql: inst.sql.clone(),
            spec: inst.spec.clone(),
        })
        .collect()
}

/// Try to bind one question spec for a database.
fn sample_spec(
    gc: &GeneratedCollection,
    lex: &Lexicon,
    db: &str,
    dbm: &DbMeta,
    rng: &mut SmallRng,
) -> Option<QuestionSpec> {
    let total: f64 = KIND_WEIGHTS.iter().map(|(_, w)| w).sum();
    for _attempt in 0..8 {
        let mut pick = rng.gen_range(0.0..total);
        let mut kind = TemplateKind::CountAll;
        for (k, w) in KIND_WEIGHTS {
            if pick < *w {
                kind = *k;
                break;
            }
            pick -= w;
        }
        if let Some(spec) = bind_spec(gc, lex, db, dbm, kind, rng) {
            return Some(spec);
        }
    }
    // Fallback: CountAll over any entity table.
    bind_spec(gc, lex, db, dbm, TemplateKind::CountAll, rng)
}

fn entity_tables(dbm: &DbMeta) -> Vec<&TableMeta> {
    dbm.tables.values().filter(|t| !t.is_junction && t.has_name).collect()
}

fn numeric_attr(lex: &Lexicon, tm: &TableMeta, rng: &mut SmallRng) -> Option<String> {
    let c: Vec<&String> = tm.attrs.iter().filter(|a| lex.is_numeric(a)).collect();
    c.choose(rng).map(|a| a.to_string())
}

fn categorical_attr(lex: &Lexicon, tm: &TableMeta, rng: &mut SmallRng) -> Option<String> {
    let c: Vec<&String> = tm.attrs.iter().filter(|a| lex.is_categorical(a)).collect();
    c.choose(rng).map(|a| a.to_string())
}

/// A random non-null value of `column` from the populated table.
fn sample_column_value(
    gc: &GeneratedCollection,
    db: &str,
    table: &str,
    column: &str,
    rng: &mut SmallRng,
) -> Option<Value> {
    let t = gc.store.database(db)?.table(table)?;
    let ci = t.schema.column_index(column)?;
    let vals: Vec<&Value> = t.column_values(ci).collect();
    vals.choose(rng).map(|v| (*v).clone())
}

fn base_spec(db: &str, kind: TemplateKind) -> QuestionSpec {
    QuestionSpec {
        kind,
        database: db.to_string(),
        tables: Vec::new(),
        entities: Vec::new(),
        aligned: Vec::new(),
        attr: None,
        cmp: None,
        agg: None,
        value: None,
        k: None,
        join_on: None,
        junction_on: None,
        highest: false,
    }
}

fn bind_spec(
    gc: &GeneratedCollection,
    lex: &Lexicon,
    db: &str,
    dbm: &DbMeta,
    kind: TemplateKind,
    rng: &mut SmallRng,
) -> Option<QuestionSpec> {
    let mut spec = base_spec(db, kind);
    let tables = entity_tables(dbm);
    if tables.is_empty() {
        return None;
    }
    match kind {
        TemplateKind::ListAttr => {
            let tm = tables.choose(rng)?;
            let attr = tm.attrs.choose(rng)?.clone();
            spec.tables = vec![tm.table.clone()];
            spec.entities = vec![tm.entity.clone()];
            spec.aligned = vec![tm.aligned_name(lex)];
            spec.attr = Some(attr);
        }
        TemplateKind::CountAll => {
            let tm = tables.choose(rng)?;
            spec.tables = vec![tm.table.clone()];
            spec.entities = vec![tm.entity.clone()];
            spec.aligned = vec![tm.aligned_name(lex)];
        }
        TemplateKind::FilterCmp | TemplateKind::CountFilter => {
            let tm = tables.choose(rng)?;
            let attr = numeric_attr(lex, tm, rng)?;
            let value = sample_column_value(gc, db, &tm.table, &attr, rng)?;
            spec.tables = vec![tm.table.clone()];
            spec.entities = vec![tm.entity.clone()];
            spec.aligned = vec![tm.aligned_name(lex)];
            spec.attr = Some(attr);
            spec.cmp = Some(if rng.gen_bool(0.5) { CmpOp::Gt } else { CmpOp::Lt });
            spec.value = Some(value);
        }
        TemplateKind::FilterEq => {
            let tm = tables.choose(rng)?;
            let attr = categorical_attr(lex, tm, rng)?;
            let value = sample_column_value(gc, db, &tm.table, &attr, rng)?;
            spec.tables = vec![tm.table.clone()];
            spec.entities = vec![tm.entity.clone()];
            spec.aligned = vec![tm.aligned_name(lex)];
            spec.attr = Some(attr);
            spec.value = Some(value);
        }
        TemplateKind::AggAttr => {
            let tm = tables.choose(rng)?;
            let attr = numeric_attr(lex, tm, rng)?;
            spec.tables = vec![tm.table.clone()];
            spec.entities = vec![tm.entity.clone()];
            spec.aligned = vec![tm.aligned_name(lex)];
            spec.attr = Some(attr);
            spec.agg = Some(
                *[AggKind::Avg, AggKind::Sum, AggKind::Min, AggKind::Max].choose(rng).unwrap(),
            );
        }
        TemplateKind::GroupCount | TemplateKind::GroupHaving => {
            let tm = tables.choose(rng)?;
            let attr = categorical_attr(lex, tm, rng)?;
            spec.tables = vec![tm.table.clone()];
            spec.entities = vec![tm.entity.clone()];
            spec.aligned = vec![tm.aligned_name(lex)];
            spec.attr = Some(attr);
            if kind == TemplateKind::GroupHaving {
                spec.k = Some(rng.gen_range(1..=4));
            }
        }
        TemplateKind::TopK | TemplateKind::MaxSubquery => {
            let tm = tables.choose(rng)?;
            let attr = numeric_attr(lex, tm, rng)?;
            spec.tables = vec![tm.table.clone()];
            spec.entities = vec![tm.entity.clone()];
            spec.aligned = vec![tm.aligned_name(lex)];
            spec.attr = Some(attr);
            spec.highest = rng.gen_bool(0.7);
        }
        TemplateKind::JoinList | TemplateKind::JoinFilter | TemplateKind::CountJoin => {
            // child with a parent
            let children: Vec<&&TableMeta> =
                tables.iter().filter(|t| !t.parents.is_empty()).collect();
            let child = children.choose(rng)?;
            let (parent_table, fk_col) = child.parents.choose(rng)?.clone();
            let ptm = dbm.tables.get(&parent_table)?;
            if !ptm.has_name {
                return None;
            }
            let ppk = ptm.pk.clone()?;
            spec.tables = vec![child.table.clone(), parent_table.clone()];
            spec.entities = vec![child.entity.clone(), ptm.entity.clone()];
            spec.aligned = vec![child.aligned_name(lex), ptm.aligned_name(lex)];
            spec.join_on = Some((fk_col, ppk));
            match kind {
                TemplateKind::JoinFilter => {
                    let attr =
                        categorical_attr(lex, ptm, rng).or_else(|| numeric_attr(lex, ptm, rng))?;
                    let value = sample_column_value(gc, db, &parent_table, &attr, rng)?;
                    spec.attr = Some(attr);
                    spec.value = Some(value);
                }
                TemplateKind::CountJoin => {
                    let value = sample_column_value(gc, db, &parent_table, "name", rng)?;
                    spec.value = Some(value);
                }
                _ => {}
            }
        }
        TemplateKind::InSubquery => {
            let children: Vec<&&TableMeta> =
                tables.iter().filter(|t| !t.parents.is_empty()).collect();
            let child = children.choose(rng)?;
            let (parent_table, fk_col) = child.parents.choose(rng)?.clone();
            let ptm = dbm.tables.get(&parent_table)?;
            if !ptm.has_name {
                return None;
            }
            let ppk = ptm.pk.clone()?;
            // roles: [parent, child]
            spec.tables = vec![parent_table.clone(), child.table.clone()];
            spec.entities = vec![ptm.entity.clone(), child.entity.clone()];
            spec.aligned = vec![ptm.aligned_name(lex), child.aligned_name(lex)];
            spec.join_on = Some((fk_col, ppk));
        }
        TemplateKind::JunctionList => {
            let junctions: Vec<&TableMeta> =
                dbm.tables.values().filter(|t| t.is_junction).collect();
            let j = junctions.choose(rng)?;
            let (a_table, b_table) = j.endpoints.clone()?;
            let atm = dbm.tables.get(&a_table)?;
            let btm = dbm.tables.get(&b_table)?;
            let (apk, bpk) = (atm.pk.clone()?, btm.pk.clone()?);
            let (afk, bfk) = (j.parents.first()?.1.clone(), j.parents.get(1)?.1.clone());
            let value = sample_column_value(gc, db, &b_table, "name", rng)?;
            spec.tables = vec![j.table.clone(), a_table.clone(), b_table.clone()];
            spec.entities = vec![j.entity.clone(), atm.entity.clone(), btm.entity.clone()];
            spec.aligned = vec![j.table.clone(), atm.aligned_name(lex), btm.aligned_name(lex)];
            spec.junction_on = Some(((afk, apk), (bfk, bpk)));
            spec.value = Some(value);
        }
    }
    Some(spec)
}

/// Render the detailed schema text of a query schema (Figure 3 input format
/// of the schema questioner).
pub fn schema_detail_text(
    collection: &dbcopilot_sqlengine::Collection,
    schema: &QuerySchema,
) -> String {
    let mut lines = vec![format!("database: {}", schema.database)];
    if let Some(db) = collection.database(&schema.database) {
        for t in &schema.tables {
            if let Some(ts) = db.table(t) {
                lines.push(format!("- {}", ts.flat_text()));
            }
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpusgen::{generate_collection, GenConfig};

    fn small_corpus() -> GeneratedCollection {
        generate_collection(&GenConfig {
            num_databases: 12,
            entities_per_db: (3, 6),
            junction_prob: 0.8,
            rows_per_table: (8, 16),
            seed: 99,
        })
    }

    #[test]
    fn instances_have_valid_gold_sql() {
        let gc = small_corpus();
        let lex = Lexicon::new();
        let insts = generate_instances(&gc, &lex, 150, SurfaceStyle::Mixed(0.35), 7);
        assert_eq!(insts.len(), 150);
        for inst in &insts {
            let db = gc.store.database(&inst.schema.database).expect("db exists");
            let rs = dbcopilot_sqlengine::execute(db, &inst.sql)
                .unwrap_or_else(|e| panic!("gold SQL failed: {e} — {}", inst.sql));
            let _ = rs;
        }
    }

    #[test]
    fn schemas_are_valid_on_graph() {
        let gc = small_corpus();
        let lex = Lexicon::new();
        let mut graph = dbcopilot_graph::SchemaGraph::build(&gc.collection);
        dbcopilot_graph::augment_graph_with_joinable(&mut graph, &gc.store, 0.85);
        let insts = generate_instances(&gc, &lex, 120, SurfaceStyle::Mixed(0.35), 11);
        for inst in &insts {
            assert!(
                graph.is_valid_schema(&inst.schema),
                "instance schema invalid: {} (kind {:?})",
                inst.schema,
                inst.spec.kind
            );
        }
    }

    #[test]
    fn template_mix_is_diverse() {
        let gc = small_corpus();
        let lex = Lexicon::new();
        let insts = generate_instances(&gc, &lex, 300, SurfaceStyle::Mixed(0.35), 13);
        let kinds: std::collections::HashSet<_> = insts.iter().map(|i| i.spec.kind).collect();
        assert!(kinds.len() >= 10, "only {} template kinds", kinds.len());
    }

    #[test]
    fn multi_table_instances_present() {
        let gc = small_corpus();
        let lex = Lexicon::new();
        let insts = generate_instances(&gc, &lex, 200, SurfaceStyle::Mixed(0.35), 17);
        let multi = insts.iter().filter(|i| i.schema.tables.len() > 1).count();
        assert!(multi > 20, "only {multi} multi-table instances");
    }

    #[test]
    fn rerender_preserves_sql_and_schema() {
        let gc = small_corpus();
        let lex = Lexicon::new();
        let insts = generate_instances(&gc, &lex, 50, SurfaceStyle::Mixed(0.35), 19);
        let syn = rerender_instances(&insts, &lex, SurfaceStyle::SynonymOnly, 23);
        assert_eq!(insts.len(), syn.len());
        for (a, b) in insts.iter().zip(&syn) {
            assert_eq!(a.sql, b.sql);
            assert!(a.schema.same_as(&b.schema));
        }
        // questions should differ for most instances
        let changed = insts.iter().zip(&syn).filter(|(a, b)| a.question != b.question).count();
        assert!(changed > 25, "synonym re-render changed only {changed}/50");
    }

    #[test]
    fn deterministic_instance_generation() {
        let gc = small_corpus();
        let lex = Lexicon::new();
        let a = generate_instances(&gc, &lex, 30, SurfaceStyle::Mixed(0.35), 29);
        let b = generate_instances(&gc, &lex, 30, SurfaceStyle::Mixed(0.35), 29);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.sql, y.sql);
        }
    }

    #[test]
    fn schema_detail_text_lists_columns() {
        let gc = small_corpus();
        let lex = Lexicon::new();
        let insts = generate_instances(&gc, &lex, 5, SurfaceStyle::Canonical, 31);
        let d = schema_detail_text(&gc.collection, &insts[0].schema);
        assert!(d.starts_with("database: "));
        assert!(d.contains('('), "detail should list columns: {d}");
    }
}
