//! Dataset statistics (paper Table 2).

use crate::Corpus;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub name: String,
    pub train: usize,
    pub test: usize,
    pub num_dbs: usize,
    pub num_tables: usize,
    pub num_columns: usize,
}

impl DatasetStats {
    pub fn of(corpus: &Corpus) -> Self {
        DatasetStats {
            name: corpus.name.clone(),
            train: corpus.train.len(),
            test: corpus.test.len(),
            num_dbs: corpus.collection.num_databases(),
            num_tables: corpus.collection.num_tables(),
            num_columns: corpus.collection.num_columns(),
        }
    }
}

/// Render Table 2 as aligned text.
pub fn render_table2(stats: &[DatasetStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>7} {:>7} {:>6} {:>8} {:>7}\n",
        "Dataset", "Train", "Test", "#DBs", "#Tables", "#Cols"
    ));
    for s in stats {
        out.push_str(&format!(
            "{:<12} {:>7} {:>7} {:>6} {:>8} {:>7}\n",
            s.name, s.train, s.test, s.num_dbs, s.num_tables, s.num_columns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_counts() {
        let s = DatasetStats {
            name: "spider".into(),
            train: 100,
            test: 50,
            num_dbs: 10,
            num_tables: 55,
            num_columns: 300,
        };
        let t = render_table2(&[s]);
        assert!(t.contains("spider"));
        assert!(t.contains("300"));
    }
}
