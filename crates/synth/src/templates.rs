//! Question/SQL templates.
//!
//! Every workload instance is produced from a [`QuestionSpec`]: a template
//! kind plus slot bindings. The spec renders deterministically to (a) a gold
//! SQL query and (b) a natural-language question in one of several *surface
//! styles*. The styles implement the robustness datasets:
//!
//! * `Canonical` — schema words verbatim (easy for lexical retrieval);
//! * `Mixed(p)` — each mention independently uses a synonym with probability
//!   `p` (the regular test distribution);
//! * `SynonymOnly` — every mention paraphrased (Spider-syn analog);
//! * `Implicit` — column mentions dropped or vague (Spider-real analog).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use dbcopilot_sqlengine::Value;

use crate::lexicon::{pluralize, Lexicon};

/// Comparison direction in range filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Gt,
    Lt,
}

/// Aggregate requested by a question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggKind {
    Avg,
    Sum,
    Min,
    Max,
}

impl AggKind {
    pub fn sql(&self) -> &'static str {
        match self {
            AggKind::Avg => "AVG",
            AggKind::Sum => "SUM",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
        }
    }

    pub fn phrase(&self) -> &'static str {
        match self {
            AggKind::Avg => "average",
            AggKind::Sum => "total",
            AggKind::Min => "minimum",
            AggKind::Max => "maximum",
        }
    }

    pub fn from_phrase(p: &str) -> Option<Self> {
        match p {
            "average" => Some(AggKind::Avg),
            "total" => Some(AggKind::Sum),
            "minimum" => Some(AggKind::Min),
            "maximum" => Some(AggKind::Max),
            _ => None,
        }
    }
}

/// Template families. Tables listed in role order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateKind {
    /// `[t]` — SELECT attr FROM t
    ListAttr,
    /// `[t]` — SELECT name FROM t WHERE attr >/< v
    FilterCmp,
    /// `[t]` — SELECT name FROM t WHERE attr = 'v'
    FilterEq,
    /// `[t]` — SELECT COUNT(*) FROM t
    CountAll,
    /// `[t]` — SELECT COUNT(*) FROM t WHERE attr >/< v
    CountFilter,
    /// `[t]` — SELECT AGG(attr) FROM t
    AggAttr,
    /// `[t]` — SELECT attr, COUNT(*) FROM t GROUP BY attr
    GroupCount,
    /// `[t]` — SELECT attr FROM t GROUP BY attr HAVING COUNT(*) > k
    GroupHaving,
    /// `[t]` — SELECT name FROM t ORDER BY attr DESC/ASC LIMIT 1
    TopK,
    /// `[t]` — SELECT name FROM t WHERE attr = (SELECT MAX(attr) FROM t)
    MaxSubquery,
    /// `[child, parent]` — join listing both names
    JoinList,
    /// `[child, parent]` — join filtered on parent attr = 'v'
    JoinFilter,
    /// `[child, parent]` — COUNT children of the parent named 'v'
    CountJoin,
    /// `[parent, child]` — parents with at least one child (IN subquery)
    InSubquery,
    /// `[junction, a, b]` — names of a's associated with b named 'v'
    JunctionList,
}

impl TemplateKind {
    pub const ALL: &'static [TemplateKind] = &[
        TemplateKind::ListAttr,
        TemplateKind::FilterCmp,
        TemplateKind::FilterEq,
        TemplateKind::CountAll,
        TemplateKind::CountFilter,
        TemplateKind::AggAttr,
        TemplateKind::GroupCount,
        TemplateKind::GroupHaving,
        TemplateKind::TopK,
        TemplateKind::MaxSubquery,
        TemplateKind::JoinList,
        TemplateKind::JoinFilter,
        TemplateKind::CountJoin,
        TemplateKind::InSubquery,
        TemplateKind::JunctionList,
    ];

    /// Number of tables in the query schema.
    pub fn num_tables(&self) -> usize {
        match self {
            TemplateKind::JoinList
            | TemplateKind::JoinFilter
            | TemplateKind::CountJoin
            | TemplateKind::InSubquery => 2,
            TemplateKind::JunctionList => 3,
            _ => 1,
        }
    }
}

/// Surface realization style for question rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SurfaceStyle {
    Canonical,
    Mixed(f64),
    SynonymOnly,
    /// Spider-real analog: drop/vague column mentions; entity mentions use
    /// synonyms half the time.
    Implicit,
}

/// A fully bound question specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuestionSpec {
    pub kind: TemplateKind,
    pub database: String,
    /// Tables in role order (see [`TemplateKind`] docs).
    pub tables: Vec<String>,
    /// Canonical lexicon entity keys aligned with `tables`.
    pub entities: Vec<String>,
    /// Schema-aligned surface form per table: how a user reading this
    /// schema would verbalize the table ("vocalist" for a table named
    /// `vocalist`, even though the concept is `singer`). Empty means "use
    /// the entity's canonical display".
    #[serde(default)]
    pub aligned: Vec<String>,
    /// Main attribute (canonical name), when the template uses one.
    pub attr: Option<String>,
    pub cmp: Option<CmpOp>,
    pub agg: Option<AggKind>,
    /// Literal used in WHERE clauses.
    pub value: Option<Value>,
    /// HAVING threshold.
    pub k: Option<i64>,
    /// `(fk_column, parent_pk)` for the child→parent join.
    pub join_on: Option<(String, String)>,
    /// Junction joins: `(a_fk, a_pk)` and `(b_fk, b_pk)`.
    pub junction_on: Option<((String, String), (String, String))>,
    /// TopK: highest (`true`) or lowest.
    pub highest: bool,
}

impl QuestionSpec {
    /// The query schema `⟨D, T⟩` this question routes to.
    pub fn schema(&self) -> dbcopilot_graph::QuerySchema {
        dbcopilot_graph::QuerySchema::new(self.database.clone(), self.tables.clone())
    }
}

/// Format a literal for SQL.
fn sql_literal(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

/// Format a literal for question text (text values quoted).
fn question_literal(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{s}'"),
        Value::Float(f) => format!("{f}"),
        Value::Int(i) => format!("{i}"),
        other => other.to_string(),
    }
}

/// Render the gold SQL for a spec.
pub fn render_sql(spec: &QuestionSpec) -> String {
    let t = |i: usize| -> &str { &spec.tables[i] };
    match spec.kind {
        TemplateKind::ListAttr => {
            format!("SELECT {} FROM {}", spec.attr.as_ref().unwrap(), t(0))
        }
        TemplateKind::FilterCmp => format!(
            "SELECT name FROM {} WHERE {} {} {}",
            t(0),
            spec.attr.as_ref().unwrap(),
            if spec.cmp == Some(CmpOp::Gt) { ">" } else { "<" },
            sql_literal(spec.value.as_ref().unwrap()),
        ),
        TemplateKind::FilterEq => format!(
            "SELECT name FROM {} WHERE {} = {}",
            t(0),
            spec.attr.as_ref().unwrap(),
            sql_literal(spec.value.as_ref().unwrap()),
        ),
        TemplateKind::CountAll => format!("SELECT COUNT(*) FROM {}", t(0)),
        TemplateKind::CountFilter => format!(
            "SELECT COUNT(*) FROM {} WHERE {} {} {}",
            t(0),
            spec.attr.as_ref().unwrap(),
            if spec.cmp == Some(CmpOp::Gt) { ">" } else { "<" },
            sql_literal(spec.value.as_ref().unwrap()),
        ),
        TemplateKind::AggAttr => format!(
            "SELECT {}({}) FROM {}",
            spec.agg.unwrap().sql(),
            spec.attr.as_ref().unwrap(),
            t(0),
        ),
        TemplateKind::GroupCount => format!(
            "SELECT {a}, COUNT(*) FROM {t} GROUP BY {a}",
            a = spec.attr.as_ref().unwrap(),
            t = t(0),
        ),
        TemplateKind::GroupHaving => format!(
            "SELECT {a} FROM {t} GROUP BY {a} HAVING COUNT(*) > {k}",
            a = spec.attr.as_ref().unwrap(),
            t = t(0),
            k = spec.k.unwrap(),
        ),
        TemplateKind::TopK => format!(
            "SELECT name FROM {} ORDER BY {} {} LIMIT 1",
            t(0),
            spec.attr.as_ref().unwrap(),
            if spec.highest { "DESC" } else { "ASC" },
        ),
        TemplateKind::MaxSubquery => format!(
            "SELECT name FROM {t} WHERE {a} = (SELECT MAX({a}) FROM {t})",
            t = t(0),
            a = spec.attr.as_ref().unwrap(),
        ),
        TemplateKind::JoinList => {
            let (fk, ppk) = spec.join_on.as_ref().unwrap();
            format!(
                "SELECT {c}.name, {p}.name FROM {c} JOIN {p} ON {c}.{fk} = {p}.{ppk}",
                c = t(0),
                p = t(1),
            )
        }
        TemplateKind::JoinFilter => {
            let (fk, ppk) = spec.join_on.as_ref().unwrap();
            format!(
                "SELECT {c}.name FROM {c} JOIN {p} ON {c}.{fk} = {p}.{ppk} WHERE {p}.{a} = {v}",
                c = t(0),
                p = t(1),
                a = spec.attr.as_ref().unwrap(),
                v = sql_literal(spec.value.as_ref().unwrap()),
            )
        }
        TemplateKind::CountJoin => {
            let (fk, ppk) = spec.join_on.as_ref().unwrap();
            format!(
                "SELECT COUNT(*) FROM {c} JOIN {p} ON {c}.{fk} = {p}.{ppk} WHERE {p}.name = {v}",
                c = t(0),
                p = t(1),
                v = sql_literal(spec.value.as_ref().unwrap()),
            )
        }
        TemplateKind::InSubquery => {
            let (fk, ppk) = spec.join_on.as_ref().unwrap();
            format!(
                "SELECT name FROM {p} WHERE {ppk} IN (SELECT {fk} FROM {c})",
                p = t(0),
                c = t(1),
            )
        }
        TemplateKind::JunctionList => {
            let ((afk, apk), (bfk, bpk)) = spec.junction_on.as_ref().unwrap();
            format!(
                "SELECT {a}.name FROM {j} JOIN {a} ON {j}.{afk} = {a}.{apk} \
                 JOIN {b} ON {j}.{bfk} = {b}.{bpk} WHERE {b}.name = {v}",
                j = t(0),
                a = t(1),
                b = t(2),
                v = sql_literal(spec.value.as_ref().unwrap()),
            )
        }
    }
}

/// Pick a surface form for an entity mention.
///
/// The *aligned* form is how the schema itself names the concept — the
/// form a question author looking at the schema would use (the reason
/// lexical retrieval works at all on Spider). `SynonymOnly` (Spider-syn)
/// explicitly avoids it.
fn entity_surface(
    lex: &Lexicon,
    spec: &QuestionSpec,
    i: usize,
    style: SurfaceStyle,
    rng: &mut SmallRng,
) -> String {
    let canonical = spec.entities.get(i).map(String::as_str).unwrap_or("");
    let aligned = spec
        .aligned
        .get(i)
        .filter(|a| !a.is_empty())
        .map(|a| crate::lexicon::display_form(a))
        .unwrap_or_else(|| crate::lexicon::display_form(canonical));
    let surfaces = lex.entity_surfaces(canonical);
    pick_surface(&aligned, &surfaces, style, rng)
}

fn attr_surface(lex: &Lexicon, canonical: &str, style: SurfaceStyle, rng: &mut SmallRng) -> String {
    let surfaces = lex.attr_surfaces(canonical);
    // column names are canonical, so the canonical display is the aligned form
    let aligned = surfaces[0].clone();
    pick_surface(&aligned, &surfaces, style, rng)
}

fn pick_surface(
    aligned: &str,
    surfaces: &[String],
    style: SurfaceStyle,
    rng: &mut SmallRng,
) -> String {
    let alternatives: Vec<&String> = surfaces.iter().filter(|s| s.as_str() != aligned).collect();
    let use_alt = match style {
        SurfaceStyle::Canonical => false,
        SurfaceStyle::Mixed(p) => rng.gen_bool(p),
        SurfaceStyle::SynonymOnly => true,
        SurfaceStyle::Implicit => rng.gen_bool(0.5),
    };
    if use_alt && !alternatives.is_empty() {
        alternatives.choose(rng).map(|s| s.to_string()).unwrap_or_else(|| aligned.to_string())
    } else {
        aligned.to_string()
    }
}

/// Render the natural-language question for a spec under a surface style.
pub fn render_question(
    spec: &QuestionSpec,
    lex: &Lexicon,
    style: SurfaceStyle,
    rng: &mut SmallRng,
) -> String {
    let e = |i: usize, rng: &mut SmallRng| entity_surface(lex, spec, i, style, rng);
    let e_pl = |i: usize, rng: &mut SmallRng| pluralize(&e(i, rng));
    let a = |rng: &mut SmallRng| attr_surface(lex, spec.attr.as_deref().unwrap_or(""), style, rng);
    let v = || question_literal(spec.value.as_ref().unwrap_or(&Value::Null));
    let implicit = style == SurfaceStyle::Implicit;

    match spec.kind {
        TemplateKind::ListAttr => {
            format!("List the {} of all {}.", a(rng), e_pl(0, rng))
        }
        TemplateKind::FilterCmp => {
            let dir = if spec.cmp == Some(CmpOp::Gt) { "greater than" } else { "less than" };
            if implicit {
                let dir = if spec.cmp == Some(CmpOp::Gt) { "above" } else { "below" };
                format!("What are the names of {} {} {}?", e_pl(0, rng), dir, v())
            } else {
                format!(
                    "What are the names of {} whose {} is {} {}?",
                    e_pl(0, rng),
                    a(rng),
                    dir,
                    v()
                )
            }
        }
        TemplateKind::FilterEq => {
            if implicit {
                format!("Which {} are associated with {}? List their names.", e_pl(0, rng), v())
            } else {
                format!(
                    "Which {} have {} equal to {}? List their names.",
                    e_pl(0, rng),
                    a(rng),
                    v()
                )
            }
        }
        TemplateKind::CountAll => format!("How many {} are there?", e_pl(0, rng)),
        TemplateKind::CountFilter => {
            let dir = if spec.cmp == Some(CmpOp::Gt) { "greater than" } else { "less than" };
            if implicit {
                let dir = if spec.cmp == Some(CmpOp::Gt) { "above" } else { "below" };
                format!("How many {} are {} {}?", e_pl(0, rng), dir, v())
            } else {
                format!("How many {} have {} {} {}?", e_pl(0, rng), a(rng), dir, v())
            }
        }
        TemplateKind::AggAttr => {
            format!(
                "What is the {} {} of all {}?",
                spec.agg.unwrap().phrase(),
                a(rng),
                e_pl(0, rng)
            )
        }
        TemplateKind::GroupCount => {
            format!("For each {}, how many {} are there?", a(rng), e_pl(0, rng))
        }
        TemplateKind::GroupHaving => {
            format!(
                "Which {} values have more than {} {}?",
                a(rng),
                spec.k.unwrap_or(1),
                e_pl(0, rng)
            )
        }
        TemplateKind::TopK => {
            let sup = if spec.highest { "highest" } else { "lowest" };
            format!("Which {} has the {} {}? Give its name.", e(0, rng), sup, a(rng))
        }
        TemplateKind::MaxSubquery => {
            let at = a(rng);
            format!("List the names of {} whose {} equals the maximum {}.", e_pl(0, rng), at, at)
        }
        TemplateKind::JoinList => {
            format!(
                "Show the name of each {} together with the name of its {}.",
                e(0, rng),
                e(1, rng)
            )
        }
        TemplateKind::JoinFilter => {
            if implicit {
                format!(
                    "What are the names of {} whose {} is associated with {}?",
                    e_pl(0, rng),
                    e(1, rng),
                    v()
                )
            } else {
                format!(
                    "What are the names of {} whose {} has {} equal to {}?",
                    e_pl(0, rng),
                    e(1, rng),
                    a(rng),
                    v()
                )
            }
        }
        TemplateKind::CountJoin => {
            format!("How many {} does the {} named {} have?", e_pl(0, rng), e(1, rng), v())
        }
        TemplateKind::InSubquery => {
            format!("List the names of {} that have at least one {}.", e_pl(0, rng), e(1, rng))
        }
        TemplateKind::JunctionList => {
            format!(
                "List the names of {} that are associated with the {} named {}.",
                e_pl(1, rng),
                e(2, rng),
                v()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec_filter_cmp() -> QuestionSpec {
        QuestionSpec {
            kind: TemplateKind::FilterCmp,
            database: "concert_singer".into(),
            tables: vec!["singer".into()],
            entities: vec!["singer".into()],
            aligned: vec!["singer".into()],
            attr: Some("age".into()),
            cmp: Some(CmpOp::Gt),
            agg: None,
            value: Some(Value::Int(30)),
            k: None,
            join_on: None,
            junction_on: None,
            highest: false,
        }
    }

    #[test]
    fn sql_rendering_filter() {
        assert_eq!(render_sql(&spec_filter_cmp()), "SELECT name FROM singer WHERE age > 30");
    }

    #[test]
    fn sql_rendering_junction() {
        let spec = QuestionSpec {
            kind: TemplateKind::JunctionList,
            database: "concert_singer".into(),
            tables: vec!["singer_in_concert".into(), "singer".into(), "concert".into()],
            entities: vec!["singer_in_concert".into(), "singer".into(), "concert".into()],
            aligned: vec!["singer_in_concert".into(), "singer".into(), "concert".into()],
            attr: None,
            cmp: None,
            agg: None,
            value: Some(Value::Text("Arena".into())),
            k: None,
            join_on: None,
            junction_on: Some((
                ("singer_id".into(), "singer_id".into()),
                ("concert_id".into(), "concert_id".into()),
            )),
            highest: false,
        };
        let sql = render_sql(&spec);
        assert!(sql.contains("JOIN singer ON singer_in_concert.singer_id = singer.singer_id"));
        assert!(sql.contains("WHERE concert.name = 'Arena'"));
    }

    #[test]
    fn canonical_question_uses_schema_words() {
        let lex = Lexicon::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let q = render_question(&spec_filter_cmp(), &lex, SurfaceStyle::Canonical, &mut rng);
        assert_eq!(q, "What are the names of singers whose age is greater than 30?");
    }

    #[test]
    fn synonym_only_avoids_schema_words() {
        let lex = Lexicon::new();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            let q = render_question(&spec_filter_cmp(), &lex, SurfaceStyle::SynonymOnly, &mut rng);
            assert!(!q.contains("singer"), "q={q}");
            assert!(!q.contains(" age "), "q={q}");
        }
    }

    #[test]
    fn implicit_drops_attribute() {
        let lex = Lexicon::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let q = render_question(&spec_filter_cmp(), &lex, SurfaceStyle::Implicit, &mut rng);
        assert!(q.contains("above 30"), "q={q}");
        assert!(!q.contains("age"), "q={q}");
    }

    #[test]
    fn sql_literal_escapes_quotes() {
        assert_eq!(sql_literal(&Value::Text("it's".into())), "'it''s'");
    }

    #[test]
    fn all_templates_render_sql_and_questions() {
        let lex = Lexicon::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for kind in TemplateKind::ALL {
            let n = kind.num_tables();
            let spec = QuestionSpec {
                kind: *kind,
                database: "d".into(),
                tables: (0..n).map(|i| format!("t{i}")).collect(),
                entities: vec!["singer".into(), "concert".into(), "venue".into()][..n].to_vec(),
                aligned: vec!["singer".into(), "concert".into(), "venue".into()][..n].to_vec(),
                attr: Some("age".into()),
                cmp: Some(CmpOp::Lt),
                agg: Some(AggKind::Avg),
                value: Some(Value::Int(5)),
                k: Some(2),
                join_on: Some(("x_id".into(), "x_id".into())),
                junction_on: Some((("a_id".into(), "a_id".into()), ("b_id".into(), "b_id".into()))),
                highest: true,
            };
            let sql = render_sql(&spec);
            assert!(sql.starts_with("SELECT"), "{kind:?}: {sql}");
            // parseable by the engine's parser
            dbcopilot_sqlengine::parse_select(&sql).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let q = render_question(&spec, &lex, SurfaceStyle::Canonical, &mut rng);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn mixed_style_varies() {
        let lex = Lexicon::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let qs: std::collections::HashSet<String> = (0..40)
            .map(|_| render_question(&spec_filter_cmp(), &lex, SurfaceStyle::Mixed(0.5), &mut rng))
            .collect();
        assert!(qs.len() > 1, "mixed style should vary surface forms");
    }
}
