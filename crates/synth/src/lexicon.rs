//! Domain lexicon: attributes, entity concepts and domains with synonym
//! sets.
//!
//! The lexicon is the source of both schema identifiers (canonical forms)
//! and natural-language surface forms (synonyms). The deliberate divergence
//! between the two is what creates the paper's *semantic mismatch* (C3):
//! questions say "vocalist" where the schema says `singer`. The Spider-syn
//! robustness transform forces synonym-only questions; the zero-shot BM25
//! baseline can only match canonical forms.

use std::collections::HashMap;

use dbcopilot_sqlengine::DataType;

/// How values of an attribute are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueSpec {
    /// Sequential integer key.
    Id,
    /// Random integer in `[lo, hi]`.
    IntRange(i64, i64),
    /// Random float in `[lo, hi]`.
    FloatRange(f64, f64),
    /// A person/place style proper name.
    ProperName,
    /// One of a small categorical pool (index into [`CATEGORY_POOLS`]).
    Category(usize),
}

/// A reusable attribute definition.
#[derive(Debug, Clone)]
pub struct AttrSpec {
    /// Canonical column name (snake_case).
    pub name: &'static str,
    pub ty: DataType,
    pub values: ValueSpec,
    /// Natural-language synonyms (never identical to `name`).
    pub synonyms: &'static [&'static str],
}

/// An entity concept — becomes a table.
#[derive(Debug, Clone)]
pub struct EntitySpec {
    /// Canonical table name (snake_case, singular).
    pub name: &'static str,
    pub synonyms: &'static [&'static str],
    /// Attribute keys into [`ATTRIBUTES`] (id/name are added automatically).
    pub attrs: &'static [&'static str],
}

/// A thematic domain grouping entities.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    pub name: &'static str,
    /// Stems used to derive database names (`stem`, `stem_1`, …).
    pub db_stems: &'static [&'static str],
    /// Entity keys into [`ENTITIES`].
    pub entities: &'static [&'static str],
}

/// Categorical value pools.
pub const CATEGORY_POOLS: &[&[&str]] = &[
    &["USA", "France", "Japan", "Brazil", "Kenya", "India", "Canada", "Spain"], // 0 country
    &["red", "blue", "green", "black", "white", "silver"],                      // 1 color
    &["small", "medium", "large"],                                              // 2 size class
    &["active", "inactive", "pending", "closed"],                               // 3 status
    &["gold", "silver", "bronze", "none"],                                      // 4 medal/tier
    &["north", "south", "east", "west", "central"],                             // 5 region
    &["spring", "summer", "autumn", "winter"],                                  // 6 season
    &["rock", "pop", "jazz", "folk", "classical", "electronic"],                // 7 genre
    &["monday", "wednesday", "friday", "sunday"],                               // 8 weekday
    &["basic", "standard", "premium", "enterprise"],                            // 9 plan
];

/// Proper-name fragments (first/last) for `ProperName` values.
pub const NAME_FIRST: &[&str] = &[
    "Alva", "Bruno", "Caro", "Dimi", "Elio", "Fay", "Gus", "Hana", "Iris", "Jon", "Kira", "Luz",
    "Mori", "Nell", "Oki", "Pia", "Quin", "Rafa", "Sol", "Tess", "Umi", "Vera", "Wim", "Xena",
    "Yuri", "Zane",
];
pub const NAME_SECOND: &[&str] = &[
    "Adler", "Brook", "Cruz", "Dale", "Eng", "Frost", "Gray", "Hale", "Iver", "Jude", "Kane",
    "Lund", "Moss", "Nash", "Orr", "Page", "Quill", "Reed", "Stone", "Tate", "Ume", "Vale", "West",
    "York", "Zell",
];

/// Shared attribute pool.
pub const ATTRIBUTES: &[AttrSpec] = &[
    AttrSpec {
        name: "age",
        ty: DataType::Int,
        values: ValueSpec::IntRange(16, 90),
        synonyms: &["years", "how old"],
    },
    AttrSpec {
        name: "year",
        ty: DataType::Int,
        values: ValueSpec::IntRange(1950, 2024),
        synonyms: &["calendar year", "vintage"],
    },
    AttrSpec {
        name: "price",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(1.0, 900.0),
        synonyms: &["cost", "amount charged"],
    },
    AttrSpec {
        name: "salary",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(20000.0, 200000.0),
        synonyms: &["pay", "compensation"],
    },
    AttrSpec {
        name: "population",
        ty: DataType::Int,
        values: ValueSpec::IntRange(1000, 9000000),
        synonyms: &["number of residents", "inhabitants"],
    },
    AttrSpec {
        name: "capacity",
        ty: DataType::Int,
        values: ValueSpec::IntRange(50, 90000),
        synonyms: &["seating", "maximum occupancy"],
    },
    AttrSpec {
        name: "rating",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(1.0, 10.0),
        synonyms: &["score", "grade"],
    },
    AttrSpec {
        name: "length",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(0.5, 4000.0),
        synonyms: &["extent", "how long"],
    },
    AttrSpec {
        name: "weight",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(0.1, 900.0),
        synonyms: &["mass", "heaviness"],
    },
    AttrSpec {
        name: "height",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(0.4, 3.0),
        synonyms: &["stature", "how tall"],
    },
    AttrSpec {
        name: "budget",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(10000.0, 5000000.0),
        synonyms: &["funding", "allocated money"],
    },
    AttrSpec {
        name: "revenue",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(1000.0, 9000000.0),
        synonyms: &["income", "earnings"],
    },
    AttrSpec {
        name: "distance",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(1.0, 12000.0),
        synonyms: &["mileage", "how far"],
    },
    AttrSpec {
        name: "duration",
        ty: DataType::Int,
        values: ValueSpec::IntRange(1, 600),
        synonyms: &["running time", "how long it lasts"],
    },
    AttrSpec {
        name: "country",
        ty: DataType::Text,
        values: ValueSpec::Category(0),
        synonyms: &["nation", "homeland"],
    },
    AttrSpec {
        name: "color",
        ty: DataType::Text,
        values: ValueSpec::Category(1),
        synonyms: &["hue", "shade"],
    },
    AttrSpec {
        name: "size_class",
        ty: DataType::Text,
        values: ValueSpec::Category(2),
        synonyms: &["size category", "magnitude class"],
    },
    AttrSpec {
        name: "status",
        ty: DataType::Text,
        values: ValueSpec::Category(3),
        synonyms: &["state", "condition"],
    },
    AttrSpec {
        name: "tier",
        ty: DataType::Text,
        values: ValueSpec::Category(4),
        synonyms: &["rank band", "medal level"],
    },
    AttrSpec {
        name: "region",
        ty: DataType::Text,
        values: ValueSpec::Category(5),
        synonyms: &["area", "zone"],
    },
    AttrSpec {
        name: "season",
        ty: DataType::Text,
        values: ValueSpec::Category(6),
        synonyms: &["time of year", "quarter"],
    },
    AttrSpec {
        name: "genre",
        ty: DataType::Text,
        values: ValueSpec::Category(7),
        synonyms: &["style", "category of music"],
    },
    AttrSpec {
        name: "weekday",
        ty: DataType::Text,
        values: ValueSpec::Category(8),
        synonyms: &["day of week", "day"],
    },
    AttrSpec {
        name: "plan",
        ty: DataType::Text,
        values: ValueSpec::Category(9),
        synonyms: &["subscription level", "package"],
    },
    AttrSpec {
        name: "stock",
        ty: DataType::Int,
        values: ValueSpec::IntRange(0, 500),
        synonyms: &["inventory", "units on hand"],
    },
    AttrSpec {
        name: "floors",
        ty: DataType::Int,
        values: ValueSpec::IntRange(1, 120),
        synonyms: &["storeys", "levels"],
    },
    AttrSpec {
        name: "wins",
        ty: DataType::Int,
        values: ValueSpec::IntRange(0, 80),
        synonyms: &["victories", "matches won"],
    },
    AttrSpec {
        name: "losses",
        ty: DataType::Int,
        values: ValueSpec::IntRange(0, 80),
        synonyms: &["defeats", "matches lost"],
    },
    AttrSpec {
        name: "points",
        ty: DataType::Int,
        values: ValueSpec::IntRange(0, 3000),
        synonyms: &["score total", "tally"],
    },
    AttrSpec {
        name: "credits",
        ty: DataType::Int,
        values: ValueSpec::IntRange(1, 12),
        synonyms: &["credit hours", "units"],
    },
    AttrSpec {
        name: "enrollment",
        ty: DataType::Int,
        values: ValueSpec::IntRange(50, 60000),
        synonyms: &["student count", "number enrolled"],
    },
    AttrSpec {
        name: "founded",
        ty: DataType::Int,
        values: ValueSpec::IntRange(1800, 2020),
        synonyms: &["establishment year", "year created"],
    },
    AttrSpec {
        name: "pages",
        ty: DataType::Int,
        values: ValueSpec::IntRange(40, 1500),
        synonyms: &["page count", "how many pages"],
    },
    AttrSpec {
        name: "dosage",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(0.5, 500.0),
        synonyms: &["dose", "prescribed amount"],
    },
    AttrSpec {
        name: "beds",
        ty: DataType::Int,
        values: ValueSpec::IntRange(10, 1200),
        synonyms: &["bed count", "patient capacity"],
    },
    AttrSpec {
        name: "horsepower",
        ty: DataType::Int,
        values: ValueSpec::IntRange(60, 1200),
        synonyms: &["engine power", "hp"],
    },
    AttrSpec {
        name: "mpg",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(8.0, 60.0),
        synonyms: &["fuel economy", "miles per gallon"],
    },
    AttrSpec {
        name: "depth",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(1.0, 11000.0),
        synonyms: &["how deep", "profundity"],
    },
    AttrSpec {
        name: "altitude",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(0.0, 8848.0),
        synonyms: &["elevation", "height above sea level"],
    },
    AttrSpec {
        name: "interest_rate",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(0.1, 12.0),
        synonyms: &["rate of interest", "yield"],
    },
    AttrSpec {
        name: "balance",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(-5000.0, 90000.0),
        synonyms: &["account total", "funds held"],
    },
    AttrSpec {
        name: "premium",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(50.0, 4000.0),
        synonyms: &["insurance fee", "policy cost"],
    },
    AttrSpec {
        name: "quantity",
        ty: DataType::Int,
        values: ValueSpec::IntRange(1, 400),
        synonyms: &["count", "number of items"],
    },
    AttrSpec {
        name: "gdp",
        ty: DataType::Float,
        values: ValueSpec::FloatRange(0.5, 25000.0),
        synonyms: &["gross domestic product", "economic output"],
    },
];

/// Entity concept pool.
pub const ENTITIES: &[EntitySpec] = &[
    // music / entertainment
    EntitySpec {
        name: "singer",
        synonyms: &["vocalist", "recording artist"],
        attrs: &["age", "country", "genre"],
    },
    EntitySpec {
        name: "concert",
        synonyms: &["live show", "gig"],
        attrs: &["year", "capacity", "season"],
    },
    EntitySpec { name: "album", synonyms: &["record", "LP"], attrs: &["year", "rating", "genre"] },
    EntitySpec {
        name: "band",
        synonyms: &["music group", "ensemble"],
        attrs: &["founded", "country", "genre"],
    },
    EntitySpec {
        name: "venue",
        synonyms: &["concert hall", "arena"],
        attrs: &["capacity", "region", "founded"],
    },
    EntitySpec {
        name: "movie",
        synonyms: &["film", "picture"],
        attrs: &["year", "rating", "duration"],
    },
    EntitySpec { name: "director", synonyms: &["filmmaker", "auteur"], attrs: &["age", "country"] },
    EntitySpec {
        name: "actor",
        synonyms: &["performer", "cast member"],
        attrs: &["age", "country"],
    },
    EntitySpec {
        name: "tv_show",
        synonyms: &["series", "program"],
        attrs: &["year", "rating", "duration"],
    },
    EntitySpec {
        name: "channel",
        synonyms: &["network", "station"],
        attrs: &["founded", "region"],
    },
    // education
    EntitySpec { name: "student", synonyms: &["pupil", "learner"], attrs: &["age", "country"] },
    EntitySpec { name: "course", synonyms: &["class", "module"], attrs: &["credits", "duration"] },
    EntitySpec {
        name: "teacher",
        synonyms: &["instructor", "educator"],
        attrs: &["age", "salary"],
    },
    EntitySpec {
        name: "school",
        synonyms: &["academy", "institution"],
        attrs: &["enrollment", "founded", "region"],
    },
    EntitySpec {
        name: "department",
        synonyms: &["faculty", "division"],
        attrs: &["budget", "founded"],
    },
    EntitySpec {
        name: "dormitory",
        synonyms: &["residence hall", "student housing"],
        attrs: &["capacity", "floors"],
    },
    EntitySpec { name: "scholarship", synonyms: &["grant", "bursary"], attrs: &["budget", "year"] },
    // geography
    EntitySpec {
        name: "city",
        synonyms: &["town", "municipality"],
        attrs: &["population", "region", "altitude"],
    },
    EntitySpec {
        name: "state",
        synonyms: &["province", "territory"],
        attrs: &["population", "region"],
    },
    EntitySpec { name: "river", synonyms: &["waterway", "stream"], attrs: &["length", "depth"] },
    EntitySpec { name: "mountain", synonyms: &["peak", "summit"], attrs: &["altitude", "region"] },
    EntitySpec { name: "lake", synonyms: &["reservoir", "basin"], attrs: &["depth", "region"] },
    EntitySpec {
        name: "airport",
        synonyms: &["airfield", "aerodrome"],
        attrs: &["capacity", "region", "founded"],
    },
    EntitySpec { name: "harbor", synonyms: &["port", "dock"], attrs: &["capacity", "region"] },
    // transport
    EntitySpec {
        name: "flight",
        synonyms: &["air service", "plane trip"],
        attrs: &["distance", "duration", "weekday"],
    },
    EntitySpec {
        name: "airline",
        synonyms: &["carrier", "air company"],
        attrs: &["founded", "country"],
    },
    EntitySpec {
        name: "train",
        synonyms: &["rail service", "railway line"],
        attrs: &["distance", "duration"],
    },
    EntitySpec {
        name: "bus_route",
        synonyms: &["bus line", "coach service"],
        attrs: &["distance", "weekday"],
    },
    EntitySpec {
        name: "ship",
        synonyms: &["vessel", "boat"],
        attrs: &["weight", "length", "founded"],
    },
    EntitySpec {
        name: "car",
        synonyms: &["automobile", "vehicle"],
        attrs: &["year", "horsepower", "mpg", "color"],
    },
    EntitySpec {
        name: "maker",
        synonyms: &["manufacturer", "producer"],
        attrs: &["founded", "country"],
    },
    EntitySpec { name: "driver", synonyms: &["chauffeur", "motorist"], attrs: &["age", "wins"] },
    // commerce
    EntitySpec {
        name: "product",
        synonyms: &["item", "good"],
        attrs: &["price", "stock", "size_class"],
    },
    EntitySpec {
        name: "customer",
        synonyms: &["client", "buyer"],
        attrs: &["age", "country", "plan"],
    },
    EntitySpec {
        name: "order_record",
        synonyms: &["purchase", "transaction"],
        attrs: &["quantity", "price", "status"],
    },
    EntitySpec {
        name: "store",
        synonyms: &["shop", "outlet"],
        attrs: &["region", "founded", "revenue"],
    },
    EntitySpec {
        name: "supplier",
        synonyms: &["vendor", "provider"],
        attrs: &["country", "founded"],
    },
    EntitySpec {
        name: "warehouse",
        synonyms: &["depot", "storage facility"],
        attrs: &["capacity", "region"],
    },
    EntitySpec {
        name: "employee",
        synonyms: &["staff member", "worker"],
        attrs: &["age", "salary", "status"],
    },
    // sports
    EntitySpec {
        name: "team",
        synonyms: &["club", "squad"],
        attrs: &["wins", "losses", "founded"],
    },
    EntitySpec {
        name: "player",
        synonyms: &["athlete", "sportsperson"],
        attrs: &["age", "height", "points"],
    },
    EntitySpec {
        name: "stadium",
        synonyms: &["sports ground", "ballpark"],
        attrs: &["capacity", "founded", "region"],
    },
    EntitySpec {
        name: "match_game",
        synonyms: &["fixture", "contest"],
        attrs: &["year", "season", "points"],
    },
    EntitySpec { name: "coach", synonyms: &["trainer", "manager"], attrs: &["age", "wins"] },
    EntitySpec {
        name: "tournament",
        synonyms: &["competition", "championship"],
        attrs: &["year", "budget"],
    },
    // health
    EntitySpec {
        name: "hospital",
        synonyms: &["medical center", "clinic"],
        attrs: &["beds", "founded", "region"],
    },
    EntitySpec { name: "doctor", synonyms: &["physician", "medic"], attrs: &["age", "salary"] },
    EntitySpec {
        name: "patient",
        synonyms: &["case", "admitted person"],
        attrs: &["age", "status"],
    },
    EntitySpec { name: "medication", synonyms: &["drug", "medicine"], attrs: &["dosage", "price"] },
    EntitySpec {
        name: "treatment",
        synonyms: &["therapy", "procedure"],
        attrs: &["duration", "price"],
    },
    // finance
    EntitySpec {
        name: "bank",
        synonyms: &["financial institution", "lender"],
        attrs: &["founded", "region", "revenue"],
    },
    EntitySpec {
        name: "account",
        synonyms: &["ledger entry", "deposit record"],
        attrs: &["balance", "status", "plan"],
    },
    EntitySpec {
        name: "loan",
        synonyms: &["credit line", "borrowing"],
        attrs: &["balance", "interest_rate", "year"],
    },
    EntitySpec {
        name: "bond",
        synonyms: &["fixed income security", "debenture"],
        attrs: &["interest_rate", "year", "price"],
    },
    EntitySpec {
        name: "fund",
        synonyms: &["investment vehicle", "portfolio"],
        attrs: &["balance", "rating", "founded"],
    },
    EntitySpec {
        name: "stock_issue",
        synonyms: &["equity", "share listing"],
        attrs: &["price", "year"],
    },
    EntitySpec {
        name: "policy",
        synonyms: &["insurance contract", "coverage plan"],
        attrs: &["premium", "year", "status"],
    },
    EntitySpec {
        name: "branch",
        synonyms: &["local office", "subsidiary"],
        attrs: &["region", "founded", "revenue"],
    },
    EntitySpec {
        name: "indicator",
        synonyms: &["economic measure", "metric"],
        attrs: &["gdp", "year", "region"],
    },
    // publishing / misc
    EntitySpec {
        name: "book",
        synonyms: &["volume", "publication"],
        attrs: &["year", "pages", "rating"],
    },
    EntitySpec { name: "author", synonyms: &["writer", "novelist"], attrs: &["age", "country"] },
    EntitySpec {
        name: "journal",
        synonyms: &["periodical", "magazine"],
        attrs: &["founded", "rating"],
    },
    EntitySpec {
        name: "paper_article",
        synonyms: &["article", "manuscript"],
        attrs: &["year", "pages"],
    },
    EntitySpec {
        name: "conference",
        synonyms: &["symposium", "meeting"],
        attrs: &["year", "region", "capacity"],
    },
    EntitySpec {
        name: "museum",
        synonyms: &["gallery", "exhibition hall"],
        attrs: &["founded", "region", "capacity"],
    },
    EntitySpec { name: "artwork", synonyms: &["piece", "exhibit"], attrs: &["year", "price"] },
    EntitySpec {
        name: "restaurant",
        synonyms: &["eatery", "diner"],
        attrs: &["rating", "region", "founded"],
    },
    EntitySpec { name: "dish", synonyms: &["menu item", "plate"], attrs: &["price", "rating"] },
    EntitySpec {
        name: "hotel",
        synonyms: &["inn", "lodging"],
        attrs: &["rating", "capacity", "region"],
    },
    EntitySpec {
        name: "farm",
        synonyms: &["ranch", "homestead"],
        attrs: &["region", "founded", "revenue"],
    },
    EntitySpec {
        name: "crop",
        synonyms: &["harvest", "produce"],
        attrs: &["quantity", "season", "price"],
    },
    // expansion pool: keeps entity surfaces discriminative at 166 databases
    EntitySpec {
        name: "festival",
        synonyms: &["street fair", "celebration"],
        attrs: &["year", "capacity", "season"],
    },
    EntitySpec {
        name: "orchestra",
        synonyms: &["philharmonic", "symphony group"],
        attrs: &["founded", "country", "rating"],
    },
    EntitySpec {
        name: "podcast",
        synonyms: &["audio show", "radio program"],
        attrs: &["year", "rating", "duration"],
    },
    EntitySpec {
        name: "documentary",
        synonyms: &["factual film", "nonfiction feature"],
        attrs: &["year", "rating", "duration"],
    },
    EntitySpec {
        name: "cartoon",
        synonyms: &["animation", "animated short"],
        attrs: &["year", "rating", "duration"],
    },
    EntitySpec {
        name: "lecture",
        synonyms: &["talk", "seminar session"],
        attrs: &["duration", "capacity", "weekday"],
    },
    EntitySpec {
        name: "exam",
        synonyms: &["test paper", "assessment"],
        attrs: &["duration", "points", "season"],
    },
    EntitySpec {
        name: "club_society",
        synonyms: &["student society", "campus club"],
        attrs: &["founded", "enrollment"],
    },
    EntitySpec {
        name: "laboratory",
        synonyms: &["research lab", "testing facility"],
        attrs: &["budget", "founded", "region"],
    },
    EntitySpec {
        name: "library_branch",
        synonyms: &["reading room", "lending site"],
        attrs: &["founded", "capacity", "region"],
    },
    EntitySpec {
        name: "village",
        synonyms: &["hamlet", "settlement"],
        attrs: &["population", "region", "altitude"],
    },
    EntitySpec {
        name: "island",
        synonyms: &["isle", "atoll"],
        attrs: &["population", "region", "altitude"],
    },
    EntitySpec {
        name: "desert",
        synonyms: &["arid region", "dunes area"],
        attrs: &["region", "altitude"],
    },
    EntitySpec { name: "forest", synonyms: &["woodland", "grove"], attrs: &["region", "altitude"] },
    EntitySpec {
        name: "canal",
        synonyms: &["waterway channel", "artificial channel"],
        attrs: &["length", "depth", "founded"],
    },
    EntitySpec {
        name: "bridge",
        synonyms: &["overpass", "viaduct"],
        attrs: &["length", "founded", "region"],
    },
    EntitySpec {
        name: "tunnel",
        synonyms: &["underpass", "bore"],
        attrs: &["length", "founded", "region"],
    },
    EntitySpec {
        name: "highway",
        synonyms: &["motorway", "expressway"],
        attrs: &["length", "region"],
    },
    EntitySpec {
        name: "ferry",
        synonyms: &["water shuttle", "crossing boat"],
        attrs: &["capacity", "duration", "weekday"],
    },
    EntitySpec {
        name: "tram",
        synonyms: &["streetcar", "trolley"],
        attrs: &["distance", "duration", "weekday"],
    },
    EntitySpec {
        name: "taxi",
        synonyms: &["cab", "hired car"],
        attrs: &["price", "distance", "rating"],
    },
    EntitySpec {
        name: "bicycle",
        synonyms: &["bike", "cycle"],
        attrs: &["price", "weight", "color"],
    },
    EntitySpec {
        name: "motorcycle",
        synonyms: &["motorbike", "two wheeler"],
        attrs: &["year", "horsepower", "price"],
    },
    EntitySpec {
        name: "truck",
        synonyms: &["lorry", "hauler"],
        attrs: &["year", "horsepower", "weight"],
    },
    EntitySpec {
        name: "rocket",
        synonyms: &["launcher", "space vehicle"],
        attrs: &["year", "weight", "budget"],
    },
    EntitySpec {
        name: "satellite",
        synonyms: &["orbiter", "space probe"],
        attrs: &["year", "weight", "altitude"],
    },
    EntitySpec {
        name: "gadget",
        synonyms: &["device", "appliance"],
        attrs: &["price", "weight", "rating"],
    },
    EntitySpec {
        name: "software_app",
        synonyms: &["application", "computer program"],
        attrs: &["year", "rating", "price"],
    },
    EntitySpec {
        name: "website",
        synonyms: &["web portal", "online site"],
        attrs: &["founded", "rating", "plan"],
    },
    EntitySpec {
        name: "server_machine",
        synonyms: &["compute node", "host box"],
        attrs: &["capacity", "price", "status"],
    },
    EntitySpec {
        name: "videogame",
        synonyms: &["computer game", "console title"],
        attrs: &["year", "rating", "price"],
    },
    EntitySpec {
        name: "boardgame",
        synonyms: &["tabletop game", "parlor game"],
        attrs: &["year", "rating", "duration"],
    },
    EntitySpec {
        name: "puzzle",
        synonyms: &["brain teaser", "riddle set"],
        attrs: &["rating", "duration", "pages"],
    },
    EntitySpec {
        name: "gym",
        synonyms: &["fitness center", "training hall"],
        attrs: &["capacity", "founded", "region"],
    },
    EntitySpec {
        name: "swimming_pool",
        synonyms: &["aquatic center", "natatorium"],
        attrs: &["depth", "capacity", "region"],
    },
    EntitySpec {
        name: "marathon",
        synonyms: &["road race", "endurance run"],
        attrs: &["year", "distance", "season"],
    },
    EntitySpec {
        name: "referee",
        synonyms: &["umpire", "match official"],
        attrs: &["age", "wins"],
    },
    EntitySpec {
        name: "cyclist",
        synonyms: &["rider", "pedaler"],
        attrs: &["age", "wins", "points"],
    },
    EntitySpec {
        name: "boxer",
        synonyms: &["pugilist", "fighter"],
        attrs: &["age", "weight", "wins"],
    },
    EntitySpec {
        name: "nurse",
        synonyms: &["care worker", "ward attendant"],
        attrs: &["age", "salary", "status"],
    },
    EntitySpec {
        name: "vaccine",
        synonyms: &["immunization shot", "inoculation"],
        attrs: &["dosage", "year", "price"],
    },
    EntitySpec {
        name: "surgery",
        synonyms: &["operation", "surgical procedure"],
        attrs: &["duration", "price", "status"],
    },
    EntitySpec {
        name: "ambulance",
        synonyms: &["rescue van", "medical transport"],
        attrs: &["year", "capacity", "status"],
    },
    EntitySpec {
        name: "pharmacist",
        synonyms: &["chemist", "dispenser"],
        attrs: &["age", "salary"],
    },
    EntitySpec {
        name: "bakery",
        synonyms: &["pastry shop", "bread house"],
        attrs: &["founded", "rating", "region"],
    },
    EntitySpec {
        name: "brewery",
        synonyms: &["beer maker", "ale house"],
        attrs: &["founded", "revenue", "region"],
    },
    EntitySpec {
        name: "vineyard",
        synonyms: &["wine estate", "grape farm"],
        attrs: &["founded", "region", "revenue"],
    },
    EntitySpec {
        name: "butcher",
        synonyms: &["meat shop", "charcuterie"],
        attrs: &["founded", "rating", "region"],
    },
    EntitySpec {
        name: "cafe",
        synonyms: &["coffee house", "espresso bar"],
        attrs: &["rating", "region", "founded"],
    },
    EntitySpec {
        name: "barber",
        synonyms: &["hair salon", "grooming shop"],
        attrs: &["rating", "price", "region"],
    },
    EntitySpec {
        name: "tailor",
        synonyms: &["dressmaker", "clothier"],
        attrs: &["founded", "rating", "price"],
    },
    EntitySpec {
        name: "jeweler",
        synonyms: &["gem dealer", "goldsmith"],
        attrs: &["founded", "revenue", "rating"],
    },
    EntitySpec {
        name: "florist",
        synonyms: &["flower shop", "bouquet seller"],
        attrs: &["rating", "price", "region"],
    },
    EntitySpec {
        name: "locksmith",
        synonyms: &["key cutter", "lock fitter"],
        attrs: &["price", "rating", "region"],
    },
    EntitySpec {
        name: "plumber",
        synonyms: &["pipe fitter", "drain specialist"],
        attrs: &["price", "rating", "age"],
    },
    EntitySpec {
        name: "electrician",
        synonyms: &["wiring specialist", "spark technician"],
        attrs: &["price", "rating", "age"],
    },
    EntitySpec {
        name: "carpenter",
        synonyms: &["woodworker", "joiner"],
        attrs: &["price", "rating", "age"],
    },
    EntitySpec {
        name: "architect",
        synonyms: &["building designer", "draftsman"],
        attrs: &["age", "salary", "rating"],
    },
    EntitySpec {
        name: "skyscraper",
        synonyms: &["tower block", "high rise"],
        attrs: &["floors", "founded", "region"],
    },
    EntitySpec {
        name: "apartment",
        synonyms: &["flat", "housing unit"],
        attrs: &["price", "floors", "region"],
    },
    EntitySpec {
        name: "castle",
        synonyms: &["fortress", "citadel"],
        attrs: &["founded", "region", "capacity"],
    },
    EntitySpec {
        name: "lighthouse",
        synonyms: &["beacon tower", "harbor light"],
        attrs: &["founded", "altitude", "region"],
    },
    EntitySpec {
        name: "windmill",
        synonyms: &["wind turbine", "gristmill"],
        attrs: &["founded", "altitude", "region"],
    },
    EntitySpec {
        name: "power_plant",
        synonyms: &["generating station", "energy facility"],
        attrs: &["capacity", "founded", "region"],
    },
    EntitySpec {
        name: "mine_site",
        synonyms: &["quarry", "excavation pit"],
        attrs: &["depth", "founded", "region"],
    },
    EntitySpec {
        name: "oil_rig",
        synonyms: &["drilling platform", "offshore derrick"],
        attrs: &["depth", "founded", "capacity"],
    },
    EntitySpec {
        name: "reservoir_dam",
        synonyms: &["dam", "water barrier"],
        attrs: &["depth", "capacity", "founded"],
    },
    EntitySpec {
        name: "greenhouse",
        synonyms: &["glasshouse", "plant nursery"],
        attrs: &["capacity", "region", "founded"],
    },
    EntitySpec {
        name: "orchard",
        synonyms: &["fruit grove", "apple garden"],
        attrs: &["region", "founded", "quantity"],
    },
    EntitySpec {
        name: "beehive",
        synonyms: &["apiary", "bee colony"],
        attrs: &["quantity", "region", "season"],
    },
    EntitySpec {
        name: "aquarium",
        synonyms: &["fish house", "marine exhibit"],
        attrs: &["capacity", "founded", "region"],
    },
    EntitySpec {
        name: "zoo",
        synonyms: &["wildlife park", "menagerie"],
        attrs: &["capacity", "founded", "region"],
    },
    EntitySpec {
        name: "circus",
        synonyms: &["big top", "traveling show"],
        attrs: &["founded", "capacity", "season"],
    },
    EntitySpec {
        name: "theater",
        synonyms: &["playhouse", "stage hall"],
        attrs: &["capacity", "founded", "region"],
    },
    EntitySpec {
        name: "opera",
        synonyms: &["lyric drama", "operatic work"],
        attrs: &["year", "duration", "rating"],
    },
    EntitySpec {
        name: "ballet",
        synonyms: &["dance production", "choreographed piece"],
        attrs: &["year", "duration", "rating"],
    },
    EntitySpec {
        name: "sculpture",
        synonyms: &["statue", "carved piece"],
        attrs: &["year", "weight", "price"],
    },
    EntitySpec {
        name: "painting",
        synonyms: &["canvas work", "oil picture"],
        attrs: &["year", "price", "rating"],
    },
    EntitySpec {
        name: "newspaper",
        synonyms: &["daily paper", "gazette"],
        attrs: &["founded", "pages", "region"],
    },
    EntitySpec {
        name: "comic",
        synonyms: &["graphic novel", "illustrated serial"],
        attrs: &["year", "pages", "rating"],
    },
    EntitySpec {
        name: "dictionary",
        synonyms: &["lexicon book", "word reference"],
        attrs: &["year", "pages"],
    },
    EntitySpec {
        name: "translator",
        synonyms: &["interpreter", "language specialist"],
        attrs: &["age", "salary"],
    },
    EntitySpec {
        name: "lawyer",
        synonyms: &["attorney", "legal counsel"],
        attrs: &["age", "salary", "wins"],
    },
    EntitySpec {
        name: "judge_official",
        synonyms: &["magistrate", "court official"],
        attrs: &["age", "salary"],
    },
    EntitySpec {
        name: "court_case",
        synonyms: &["lawsuit", "legal proceeding"],
        attrs: &["year", "duration", "status"],
    },
    EntitySpec {
        name: "prison",
        synonyms: &["jail", "correctional facility"],
        attrs: &["capacity", "founded", "region"],
    },
    EntitySpec {
        name: "fire_station",
        synonyms: &["firehouse", "engine company"],
        attrs: &["capacity", "founded", "region"],
    },
    EntitySpec {
        name: "police_unit",
        synonyms: &["precinct", "patrol squad"],
        attrs: &["capacity", "founded", "region"],
    },
    EntitySpec {
        name: "embassy",
        synonyms: &["consulate", "diplomatic mission"],
        attrs: &["founded", "country", "region"],
    },
    EntitySpec {
        name: "ministry",
        synonyms: &["government department", "state office"],
        attrs: &["budget", "founded"],
    },
    EntitySpec {
        name: "election",
        synonyms: &["ballot", "vote round"],
        attrs: &["year", "season", "region"],
    },
    EntitySpec {
        name: "senator",
        synonyms: &["legislator", "council member"],
        attrs: &["age", "wins", "region"],
    },
    EntitySpec {
        name: "charity",
        synonyms: &["nonprofit", "relief fund"],
        attrs: &["founded", "budget", "region"],
    },
    EntitySpec {
        name: "volunteer",
        synonyms: &["helper", "aid worker"],
        attrs: &["age", "status"],
    },
    EntitySpec {
        name: "donation",
        synonyms: &["gift pledge", "contribution"],
        attrs: &["price", "year", "status"],
    },
    EntitySpec {
        name: "auction",
        synonyms: &["bidding event", "sale by bids"],
        attrs: &["year", "revenue", "season"],
    },
    EntitySpec {
        name: "currency",
        synonyms: &["money unit", "tender"],
        attrs: &["price", "country"],
    },
    EntitySpec {
        name: "tax_record",
        synonyms: &["levy entry", "duty filing"],
        attrs: &["year", "balance", "status"],
    },
    EntitySpec {
        name: "audit",
        synonyms: &["financial review", "inspection report"],
        attrs: &["year", "duration", "status"],
    },
    EntitySpec {
        name: "patent",
        synonyms: &["invention right", "filing grant"],
        attrs: &["year", "status", "country"],
    },
    EntitySpec {
        name: "telescope",
        synonyms: &["observatory instrument", "star scope"],
        attrs: &["length", "price", "founded"],
    },
    EntitySpec {
        name: "microscope",
        synonyms: &["magnifier instrument", "lab scope"],
        attrs: &["price", "weight", "rating"],
    },
    EntitySpec {
        name: "robot",
        synonyms: &["automaton", "mechanical agent"],
        attrs: &["year", "weight", "price"],
    },
    EntitySpec {
        name: "drone",
        synonyms: &["quadcopter", "unmanned craft"],
        attrs: &["weight", "price", "altitude"],
    },
    EntitySpec {
        name: "glacier",
        synonyms: &["ice sheet", "ice field"],
        attrs: &["length", "depth", "region"],
    },
    EntitySpec {
        name: "volcano",
        synonyms: &["crater mount", "lava peak"],
        attrs: &["altitude", "region", "status"],
    },
    EntitySpec {
        name: "earthquake",
        synonyms: &["seismic event", "tremor"],
        attrs: &["year", "depth", "region"],
    },
    EntitySpec {
        name: "hurricane",
        synonyms: &["cyclone", "tropical storm"],
        attrs: &["year", "season", "region"],
    },
];

/// Domain pool.
pub const DOMAINS: &[DomainSpec] = &[
    DomainSpec {
        name: "music",
        db_stems: &["concert_singer", "music_label", "festival"],
        entities: &["singer", "concert", "album", "band", "venue"],
    },
    DomainSpec {
        name: "film",
        db_stems: &["cinema", "movie_studio", "film_rank"],
        entities: &["movie", "director", "actor", "venue"],
    },
    DomainSpec {
        name: "television",
        db_stems: &["tvshow", "broadcast"],
        entities: &["tv_show", "channel", "actor"],
    },
    DomainSpec {
        name: "college",
        db_stems: &["college", "university_basic", "campus"],
        entities: &["student", "course", "teacher", "department", "dormitory", "scholarship"],
    },
    DomainSpec {
        name: "school_district",
        db_stems: &["school_admin", "district"],
        entities: &["school", "teacher", "student", "bus_route"],
    },
    DomainSpec {
        name: "world_geo",
        db_stems: &["world", "geo", "atlas"],
        entities: &["city", "state", "river", "mountain", "lake"],
    },
    DomainSpec {
        name: "aviation",
        db_stems: &["flight_info", "airline_ops"],
        entities: &["flight", "airline", "airport", "city"],
    },
    DomainSpec {
        name: "railway",
        db_stems: &["rail_net", "train_station"],
        entities: &["train", "city", "driver"],
    },
    DomainSpec {
        name: "maritime",
        db_stems: &["shipping", "port_authority"],
        entities: &["ship", "harbor", "city"],
    },
    DomainSpec {
        name: "automotive",
        db_stems: &["car_catalog", "auto_sales"],
        entities: &["car", "maker", "driver"],
    },
    DomainSpec {
        name: "retail",
        db_stems: &["shop_orders", "ecommerce", "market"],
        entities: &["product", "customer", "order_record", "store", "supplier", "warehouse"],
    },
    DomainSpec {
        name: "hr",
        db_stems: &["company_hr", "payroll"],
        entities: &["employee", "department", "branch"],
    },
    DomainSpec {
        name: "soccer",
        db_stems: &["soccer_league", "club_stats"],
        entities: &["team", "player", "stadium", "match_game", "coach"],
    },
    DomainSpec {
        name: "olympics",
        db_stems: &["games", "olympic_record"],
        entities: &["player", "tournament", "stadium", "coach"],
    },
    DomainSpec {
        name: "healthcare",
        db_stems: &["hospital_admin", "clinic_net"],
        entities: &["hospital", "doctor", "patient", "treatment"],
    },
    DomainSpec {
        name: "pharma",
        db_stems: &["pharmacy", "drug_trial"],
        entities: &["medication", "patient", "doctor", "supplier"],
    },
    DomainSpec {
        name: "banking",
        db_stems: &["bank_core", "branch_ledger"],
        entities: &["bank", "account", "loan", "customer", "branch"],
    },
    DomainSpec {
        name: "investing",
        db_stems: &["asset_mgmt", "fund_house"],
        entities: &["fund", "bond", "stock_issue", "customer"],
    },
    DomainSpec {
        name: "insurance",
        db_stems: &["insurance_ops", "claims"],
        entities: &["policy", "customer", "branch", "employee"],
    },
    DomainSpec {
        name: "macroeconomy",
        db_stems: &["china_macro", "global_macro"],
        entities: &["indicator", "city", "state"],
    },
    DomainSpec {
        name: "publishing",
        db_stems: &["library", "press", "bookstore"],
        entities: &["book", "author", "journal", "store"],
    },
    DomainSpec {
        name: "academia",
        db_stems: &["scholar", "proceedings"],
        entities: &["paper_article", "author", "conference", "journal"],
    },
    DomainSpec {
        name: "culture",
        db_stems: &["museum_city", "art_scene"],
        entities: &["museum", "artwork", "city"],
    },
    DomainSpec {
        name: "hospitality",
        db_stems: &["dining", "travel_guide"],
        entities: &["restaurant", "dish", "hotel", "city"],
    },
    DomainSpec {
        name: "agriculture",
        db_stems: &["farm_coop", "harvest_log"],
        entities: &["farm", "crop", "supplier"],
    },
];

/// Indexed lexicon with lookup tables.
#[derive(Debug)]
pub struct Lexicon {
    attr_by_name: HashMap<&'static str, &'static AttrSpec>,
    entity_by_name: HashMap<&'static str, &'static EntitySpec>,
    /// surface form (lowercase) → canonical schema token, for entities and
    /// attributes. Canonical forms map to themselves.
    surface_to_canonical: HashMap<String, String>,
}

impl Default for Lexicon {
    fn default() -> Self {
        Self::new()
    }
}

impl Lexicon {
    pub fn new() -> Self {
        let mut attr_by_name = HashMap::new();
        let mut surface_to_canonical = HashMap::new();
        for a in ATTRIBUTES {
            attr_by_name.insert(a.name, a);
            surface_to_canonical.insert(display_form(a.name), a.name.to_string());
            for s in a.synonyms {
                surface_to_canonical.insert(s.to_lowercase(), a.name.to_string());
            }
        }
        let mut entity_by_name = HashMap::new();
        for e in ENTITIES {
            entity_by_name.insert(e.name, e);
            surface_to_canonical.insert(display_form(e.name), e.name.to_string());
            for s in e.synonyms {
                surface_to_canonical.insert(s.to_lowercase(), e.name.to_string());
            }
        }
        Lexicon { attr_by_name, entity_by_name, surface_to_canonical }
    }

    pub fn attr(&self, name: &str) -> Option<&'static AttrSpec> {
        self.attr_by_name.get(name).copied()
    }

    pub fn entity(&self, name: &str) -> Option<&'static EntitySpec> {
        self.entity_by_name.get(name).copied()
    }

    /// Resolve a natural-language surface form to a canonical schema token
    /// ("vocalist" → "singer"). This is the world knowledge an LLM has;
    /// zero-shot lexical baselines do not use it.
    pub fn canonical_of(&self, surface: &str) -> Option<&str> {
        self.surface_to_canonical.get(&surface.to_lowercase()).map(|s| s.as_str())
    }

    /// All surface forms (canonical display + synonyms) of an entity.
    pub fn entity_surfaces(&self, name: &str) -> Vec<String> {
        match self.entity(name) {
            Some(e) => {
                let mut v = vec![display_form(e.name)];
                v.extend(e.synonyms.iter().map(|s| s.to_string()));
                v
            }
            None => vec![display_form(name)],
        }
    }

    /// All surface forms of an attribute.
    pub fn attr_surfaces(&self, name: &str) -> Vec<String> {
        match self.attr(name) {
            Some(a) => {
                let mut v = vec![display_form(a.name)];
                v.extend(a.synonyms.iter().map(|s| s.to_string()));
                v
            }
            None => vec![display_form(name)],
        }
    }
}

impl Lexicon {
    /// Is the attribute numeric (usable in comparisons/aggregates)?
    pub fn is_numeric(&self, attr: &str) -> bool {
        matches!(
            self.attr(attr).map(|a| a.values),
            Some(ValueSpec::IntRange(..)) | Some(ValueSpec::FloatRange(..))
        )
    }

    /// Is the attribute categorical (usable in equality filters/grouping)?
    pub fn is_categorical(&self, attr: &str) -> bool {
        matches!(self.attr(attr).map(|a| a.values), Some(ValueSpec::Category(_)))
    }
}

/// Human display form of a schema token: underscores → spaces.
pub fn display_form(token: &str) -> String {
    token.replace('_', " ")
}

/// Naive singular of a plural form — the inverse of [`pluralize`].
pub fn singularize(word: &str) -> String {
    if let Some(stem) = word.strip_suffix("ies") {
        return format!("{stem}y");
    }
    if let Some(stem) = word.strip_suffix("es") {
        if stem.ends_with("ch")
            || stem.ends_with("sh")
            || stem.ends_with('s')
            || stem.ends_with('x')
        {
            return stem.to_string();
        }
    }
    if let Some(stem) = word.strip_suffix('s') {
        if !stem.is_empty() {
            return stem.to_string();
        }
    }
    word.to_string()
}

/// Naive plural of a display form ("city" → "cities", "bus" → "buses").
pub fn pluralize(word: &str) -> String {
    if let Some(stem) = word.strip_suffix('y') {
        if !stem.ends_with(['a', 'e', 'i', 'o', 'u']) {
            return format!("{stem}ies");
        }
    }
    if word.ends_with('s') || word.ends_with("ch") || word.ends_with("sh") || word.ends_with('x') {
        return format!("{word}es");
    }
    format!("{word}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_entity_attrs_exist() {
        let lex = Lexicon::new();
        for e in ENTITIES {
            for a in e.attrs {
                assert!(lex.attr(a).is_some(), "entity {} references unknown attr {}", e.name, a);
            }
        }
    }

    #[test]
    fn all_domain_entities_exist() {
        let lex = Lexicon::new();
        for d in DOMAINS {
            assert!(!d.db_stems.is_empty());
            for e in d.entities {
                assert!(
                    lex.entity(e).is_some(),
                    "domain {} references unknown entity {}",
                    d.name,
                    e
                );
            }
        }
    }

    #[test]
    fn category_indices_in_range() {
        for a in ATTRIBUTES {
            if let ValueSpec::Category(i) = a.values {
                assert!(i < CATEGORY_POOLS.len(), "attr {} category out of range", a.name);
            }
        }
    }

    #[test]
    fn synonyms_resolve_to_canonical() {
        let lex = Lexicon::new();
        assert_eq!(lex.canonical_of("vocalist"), Some("singer"));
        assert_eq!(lex.canonical_of("Recording Artist"), Some("singer"));
        assert_eq!(lex.canonical_of("singer"), Some("singer"));
        assert_eq!(lex.canonical_of("how old"), Some("age"));
        assert_eq!(lex.canonical_of("zorgon"), None);
    }

    #[test]
    fn synonyms_never_equal_canonical() {
        for e in ENTITIES {
            for s in e.synonyms {
                assert_ne!(s.to_lowercase(), display_form(e.name), "entity {}", e.name);
            }
        }
        for a in ATTRIBUTES {
            for s in a.synonyms {
                assert_ne!(s.to_lowercase(), display_form(a.name), "attr {}", a.name);
            }
        }
    }

    #[test]
    fn singularize_inverts_pluralize() {
        for w in ["singer", "city", "bus", "match", "concert", "day"] {
            assert_eq!(singularize(&pluralize(w)), w);
        }
    }

    #[test]
    fn pluralize_rules() {
        assert_eq!(pluralize("city"), "cities");
        assert_eq!(pluralize("bus"), "buses");
        assert_eq!(pluralize("singer"), "singers");
        assert_eq!(pluralize("match"), "matches");
        assert_eq!(pluralize("day"), "days");
    }

    #[test]
    fn entity_surfaces_include_synonyms() {
        let lex = Lexicon::new();
        let s = lex.entity_surfaces("tv_show");
        assert!(s.contains(&"tv show".to_string()));
        assert!(s.contains(&"series".to_string()));
    }

    #[test]
    fn no_duplicate_entity_names() {
        let mut names: Vec<&str> = ENTITIES.iter().map(|e| e.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
