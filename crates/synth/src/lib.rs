//! `dbcopilot-synth` — synthetic benchmark corpora and the schema
//! questioner.
//!
//! Substitutes the paper's adapted public datasets (Spider, Bird, Fiben and
//! the Spider-syn / Spider-real robustness variants, Table 2) with fully
//! offline, seeded generators that reproduce the properties schema routing
//! is sensitive to:
//!
//! * many heterogeneous databases with overlapping table vocabulary;
//! * FK topologies with junction tables (multi-table SQL);
//! * a controlled semantic gap between questions and schema identifiers;
//! * populated content for joinability detection and execution accuracy.
//!
//! See DESIGN.md §2 for the substitution rationale.
//!
//! ```
//! use dbcopilot_synth::{build_spider_like, CorpusSizes};
//!
//! let corpus =
//!     build_spider_like(&CorpusSizes { num_databases: 2, train_n: 12, test_n: 3 }, 7);
//! assert_eq!(corpus.collection.num_databases(), 2);
//! assert_eq!(corpus.test.len(), 3);
//! // every instance pairs a question with its gold query schema
//! assert!(!corpus.test[0].question.is_empty());
//! ```

pub mod corpusgen;
pub mod instances;
pub mod lexicon;
pub mod questioner;
pub mod stats;
pub mod templates;

use dbcopilot_graph::QuerySchema;
use dbcopilot_sqlengine::{Collection, Store};

pub use corpusgen::{
    generate_collection, generate_mart, CorpusMeta, DbMeta, GenConfig, GeneratedCollection,
    TableMeta,
};
pub use instances::{
    generate_instances, generate_instances_for, rerender_instances, schema_detail_text, Instance,
};
pub use lexicon::Lexicon;
pub use questioner::{Questioner, QuestionerConfig, TrainPair};
pub use stats::{render_table2, DatasetStats};
pub use templates::{
    render_question, render_sql, AggKind, CmpOp, QuestionSpec, SurfaceStyle, TemplateKind,
};

/// A complete benchmark corpus: schemas + content + instance splits.
pub struct Corpus {
    pub name: String,
    pub collection: Collection,
    pub store: Store,
    pub meta: CorpusMeta,
    /// Databases the training questions target (disjoint from
    /// `test_databases`, as in Spider).
    pub train_databases: Vec<String>,
    /// Databases the test questions target.
    pub test_databases: Vec<String>,
    pub train: Vec<Instance>,
    pub test: Vec<Instance>,
    /// Synonym-substitution robustness variant (Spider-syn analog).
    pub test_syn: Option<Vec<Instance>>,
    /// Implicit-mention robustness variant (Spider-real analog).
    pub test_real: Option<Vec<Instance>>,
}

/// Size parameters for corpus construction.
#[derive(Debug, Clone)]
pub struct CorpusSizes {
    pub num_databases: usize,
    pub train_n: usize,
    pub test_n: usize,
}

impl CorpusSizes {
    /// Scale all counts by `f`, keeping at least one of each.
    pub fn scaled(&self, f: f64) -> Self {
        let s = |v: usize| ((v as f64 * f).round() as usize).max(1);
        CorpusSizes {
            num_databases: s(self.num_databases),
            train_n: s(self.train_n),
            test_n: s(self.test_n),
        }
    }
}

/// The regular-test question style: mentions use synonyms ~35% of the time.
pub const TEST_STYLE: SurfaceStyle = SurfaceStyle::Mixed(0.35);

/// Build the Spider-like corpus (166 DBs at full scale) with robustness
/// variants.
pub fn build_spider_like(sizes: &CorpusSizes, seed: u64) -> Corpus {
    let mut gen_cfg = GenConfig::spider_like(seed);
    gen_cfg.num_databases = sizes.num_databases;
    let gc = generate_collection(&gen_cfg);
    build_corpus("spider", gc, sizes, seed, true)
}

/// Build the Bird-like corpus (80 DBs at full scale).
pub fn build_bird_like(sizes: &CorpusSizes, seed: u64) -> Corpus {
    let mut gen_cfg = GenConfig::bird_like(seed.wrapping_add(1000));
    gen_cfg.num_databases = sizes.num_databases;
    let gc = generate_collection(&gen_cfg);
    build_corpus("bird", gc, sizes, seed.wrapping_add(1000), false)
}

/// Build the Fiben-like corpus: one mart database with many tables and a
/// test-only split (279 questions at full scale).
pub fn build_fiben_like(test_n: usize, areas: usize, seed: u64) -> Corpus {
    let gc = generate_mart("fiben_mart", areas, (4, 7), (16, 40), seed.wrapping_add(2000));
    let sizes = CorpusSizes { num_databases: 1, train_n: 0, test_n };
    build_corpus("fiben", gc, &sizes, seed.wrapping_add(2000), false)
}

fn build_corpus(
    name: &str,
    gc: GeneratedCollection,
    sizes: &CorpusSizes,
    seed: u64,
    robustness: bool,
) -> Corpus {
    let lex = Lexicon::new();
    // Spider-style protocol: train and test questions target disjoint
    // database subsets (~75% / 25%); the routing space is the full
    // collection either way.
    let all_dbs: Vec<String> = gc.meta.per_db.keys().cloned().collect();
    let (train_databases, test_databases) = if all_dbs.len() >= 4 {
        let cut = (all_dbs.len() * 3) / 4;
        (all_dbs[..cut].to_vec(), all_dbs[cut..].to_vec())
    } else {
        (all_dbs.clone(), all_dbs.clone())
    };
    let train = if sizes.train_n > 0 {
        instances::generate_instances_for(
            &gc,
            &lex,
            sizes.train_n,
            TEST_STYLE,
            seed.wrapping_add(11),
            &train_databases,
        )
    } else {
        Vec::new()
    };
    let test = instances::generate_instances_for(
        &gc,
        &lex,
        sizes.test_n,
        TEST_STYLE,
        seed.wrapping_add(13),
        &test_databases,
    );
    let (test_syn, test_real) = if robustness {
        (
            Some(rerender_instances(&test, &lex, SurfaceStyle::SynonymOnly, seed.wrapping_add(17))),
            Some(rerender_instances(&test, &lex, SurfaceStyle::Implicit, seed.wrapping_add(19))),
        )
    } else {
        (None, None)
    };
    Corpus {
        name: name.to_string(),
        collection: gc.collection,
        store: gc.store,
        meta: gc.meta,
        train_databases,
        test_databases,
        train,
        test,
        test_syn,
        test_real,
    }
}

/// Schema tokens of a query schema: the *aligned* table verbalizations
/// (how the schema names its concepts, mart prefixes stripped) plus the
/// canonical attribute names. These key the questioner's phrase table so
/// that the synthesized questions verbalize this schema's own vocabulary —
/// questions about a table named `vocalist` say "vocalists", exactly as a
/// data consumer reading that schema would.
pub fn schema_tokens(meta: &CorpusMeta, schema: &QuerySchema) -> (Vec<String>, Vec<String>) {
    let lex = Lexicon::new();
    let mut entities = Vec::with_capacity(schema.tables.len());
    let mut attrs = Vec::new();
    if let Some(dbm) = meta.per_db.get(&schema.database) {
        for t in &schema.tables {
            if let Some(tm) = dbm.tables.get(t) {
                entities.push(tm.aligned_name(&lex));
                attrs.extend(tm.attrs.iter().cloned());
            } else {
                entities.push(t.clone());
            }
        }
    } else {
        entities.extend(schema.tables.iter().cloned());
    }
    attrs.sort();
    attrs.dedup();
    (entities, attrs)
}

/// Extract questioner training pairs from corpus training instances.
pub fn questioner_pairs(corpus: &Corpus) -> Vec<TrainPair> {
    corpus
        .train
        .iter()
        .map(|inst| {
            let (entities, attrs) = schema_tokens(&corpus.meta, &inst.schema);
            TrainPair { entities, attrs, question: inst.question.clone() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sizes() -> CorpusSizes {
        CorpusSizes { num_databases: 10, train_n: 120, test_n: 40 }
    }

    #[test]
    fn spider_like_has_robustness_variants() {
        let c = build_spider_like(&tiny_sizes(), 42);
        assert_eq!(c.test.len(), 40);
        assert!(c.test_syn.is_some());
        assert!(c.test_real.is_some());
        assert_eq!(c.test_syn.as_ref().unwrap().len(), 40);
    }

    #[test]
    fn bird_like_no_variants() {
        let c = build_bird_like(&tiny_sizes(), 42);
        assert!(c.test_syn.is_none());
        assert_eq!(c.collection.num_databases(), 10);
    }

    #[test]
    fn fiben_like_single_db() {
        let c = build_fiben_like(30, 8, 42);
        assert_eq!(c.collection.num_databases(), 1);
        assert!(c.train.is_empty());
        assert_eq!(c.test.len(), 30);
        assert!(c.collection.num_tables() > 20);
    }

    #[test]
    fn corpora_differ_across_kinds() {
        let s = build_spider_like(&tiny_sizes(), 42);
        let b = build_bird_like(&tiny_sizes(), 42);
        let sn: Vec<String> =
            s.collection.tables().map(|(d, t)| format!("{}.{}", d.name, t.name)).collect();
        let bn: Vec<String> =
            b.collection.tables().map(|(d, t)| format!("{}.{}", d.name, t.name)).collect();
        assert_ne!(sn, bn);
    }

    #[test]
    fn schema_tokens_resolve_entities() {
        let c = build_spider_like(&tiny_sizes(), 42);
        let inst = &c.test[0];
        let (entities, attrs) = schema_tokens(&c.meta, &inst.schema);
        assert_eq!(entities.len(), inst.schema.tables.len());
        let _ = attrs;
    }

    #[test]
    fn questioner_end_to_end_on_corpus() {
        use rand::SeedableRng;
        let c = build_spider_like(&CorpusSizes { num_databases: 10, train_n: 400, test_n: 20 }, 7);
        let pairs = questioner_pairs(&c);
        let q = Questioner::train(&pairs, &QuestionerConfig::default());
        assert!(q.num_patterns() > 5);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let (entities, attrs) = schema_tokens(&c.meta, &c.test[0].schema);
        let text = q.generate(&entities, &attrs, &mut rng);
        assert!(!text.is_empty());
    }

    #[test]
    fn sizes_scaling() {
        let s = CorpusSizes { num_databases: 166, train_n: 2000, test_n: 800 }.scaled(0.1);
        assert_eq!(s.num_databases, 17);
        assert_eq!(s.train_n, 200);
    }
}
