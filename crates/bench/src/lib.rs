//! `dbcopilot-bench` — experiment binaries (`exp_*`) regenerating every
//! table and figure of the paper, plus Criterion micro-benchmarks.
//!
//! Run with `DBC_SCALE=quick` for a fast smoke pass or leave unset for the
//! full (paper-shaped) scale. Every binary prints the corresponding paper
//! table/figure in plain text; EXPERIMENTS.md records paper-vs-measured.
//!
//! ```
//! use dbcopilot_bench::render_routing_rows;
//! use dbcopilot_eval::RoutingMetrics;
//!
//! let table = render_routing_rows("Spider", &[("BM25".into(), RoutingMetrics::default())]);
//! assert!(table.contains("Spider") && table.contains("BM25"));
//! ```

use dbcopilot_eval::RoutingMetrics;

/// Render a Table 3/4-style routing block.
pub fn render_routing_rows(title: &str, rows: &[(String, RoutingMetrics)]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "Method", "DB R@1", "DB R@5", "Tab R@5", "Tab R@15", "mAP"
    ));
    for (name, m) in rows {
        out.push_str(&format!(
            "{:<14} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
            name, m.db_r1, m.db_r5, m.table_r5, m.table_r15, m.map
        ));
    }
    out
}

/// Render a Table 6-style EX block.
pub fn render_ex_rows(title: &str, rows: &[(String, f64, f64)]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!("{:<28} {:>8} {:>9}\n", "Config", "EX", "Cost ($)"));
    for (name, ex, cost) in rows {
        out.push_str(&format!("{:<28} {:>8.2} {:>9.4}\n", name, ex, cost));
    }
    out
}
