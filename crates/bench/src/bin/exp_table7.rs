//! Table 7: ablation studies — basic serialization (BS), original training
//! data (OD), mixed data (MD), no constrained decoding (CD), no diverse
//! beam search (DB). Reported as deltas from the full DBCopilot, on Spider
//! and Bird as in the paper.

use dbcopilot_core::{examples_from_instances, DbcRouter, SerializationMode};
use dbcopilot_eval::{eval_routing, prepare, CorpusKind, RoutingMetrics, Scale};

fn delta(base: &RoutingMetrics, v: &RoutingMetrics) -> String {
    format!(
        "ΔDB R@1 {:+6.2}  ΔDB R@5 {:+6.2}  ΔTab R@5 {:+6.2}  ΔTab R@15 {:+6.2}",
        v.db_r1 - base.db_r1,
        v.db_r5 - base.db_r5,
        v.table_r5 - base.table_r5,
        v.table_r15 - base.table_r15
    )
}

fn main() {
    let scale = Scale::from_env();
    for &kind in &[CorpusKind::Spider, CorpusKind::Bird] {
        let prepared = prepare(kind, &scale);
        let test = &prepared.corpus.test;
        println!("== Table 7 — ablations on {} ==", kind.name());

        // full model
        let (full, _) = DbcRouter::fit(
            prepared.graph.clone(),
            &prepared.synth_examples,
            scale.router.clone(),
            SerializationMode::Dfs,
        );
        let base = eval_routing(&full, test, 100);
        println!(
            "DBCopilot      DB R@1 {:6.2}  DB R@5 {:6.2}  Tab R@5 {:6.2}  Tab R@15 {:6.2}",
            base.db_r1, base.db_r5, base.table_r5, base.table_r15
        );

        // w/ basic serialization
        let (bs, _) = DbcRouter::fit(
            prepared.graph.clone(),
            &prepared.synth_examples,
            scale.router.clone(),
            SerializationMode::Basic,
        );
        println!("w/ BS          {}", delta(&base, &eval_routing(&bs, test, 100)));

        // w/ original NL2SQL training data (train DBs are disjoint from
        // test DBs, so generative retrieval cannot reach unseen schemata)
        let original = examples_from_instances(&prepared.corpus.train);
        if !original.is_empty() {
            let (od, _) = DbcRouter::fit(
                prepared.graph.clone(),
                &original,
                scale.router.clone(),
                SerializationMode::Dfs,
            );
            println!("w/ OD          {}", delta(&base, &eval_routing(&od, test, 100)));

            // mixed synthetic + original
            let mut mixed = prepared.synth_examples.clone();
            mixed.extend(original);
            let (md, _) = DbcRouter::fit(
                prepared.graph.clone(),
                &mixed,
                scale.router.clone(),
                SerializationMode::Dfs,
            );
            println!("w/ MD          {}", delta(&base, &eval_routing(&md, test, 100)));
        }

        // decode-time ablations reuse the trained weights and only change
        // the decoding options
        let mut full = full;
        full.decode_opts.constrained = false;
        println!("w/o CD         {}", delta(&base, &eval_routing(&full, test, 100)));
        full.decode_opts.constrained = true;
        full.decode_opts.diverse = false;
        println!("w/o DB         {}", delta(&base, &eval_routing(&full, test, 100)));
        println!();
    }
}
