//! Figure 10: database recall@1 and table recall@5 vs the amount of
//! synthetic training data.

use dbcopilot_core::{DbcRouter, SerializationMode};
use dbcopilot_eval::{eval_routing, prepare, CorpusKind, Scale};

fn main() {
    let scale = Scale::from_env();
    let fracs = [0.2f64, 0.4, 0.6, 0.8, 1.0];
    let mut series_db = Vec::new();
    let mut series_tab = Vec::new();
    for &kind in CorpusKind::ALL {
        let prepared = prepare(kind, &scale);
        let mut db_pts = Vec::new();
        let mut tab_pts = Vec::new();
        for &f in &fracs {
            let n = ((prepared.synth_examples.len() as f64 * f) as usize).max(10);
            let subset = &prepared.synth_examples[..n];
            eprintln!("  {} with {} pairs", kind.name(), n);
            let (router, _) = DbcRouter::fit(
                prepared.graph.clone(),
                subset,
                scale.router.clone(),
                SerializationMode::Dfs,
            );
            let m = eval_routing(&router, &prepared.corpus.test, 100);
            db_pts.push((n as f64, m.db_r1));
            tab_pts.push((n as f64, m.table_r5));
        }
        series_db.push((kind.name().to_string(), db_pts));
        series_tab.push((kind.name().to_string(), tab_pts));
    }
    println!(
        "{}",
        dbcopilot_eval::render_series(
            "Figure 10 — database recall@1 vs #synthetic pairs",
            &series_db
        )
    );
    println!(
        "{}",
        dbcopilot_eval::render_series(
            "Figure 10 — table recall@5 vs #synthetic pairs",
            &series_tab
        )
    );
}
