//! Figure 7: (a) table mAP vs database size; (b) table recall@k vs k.

use dbcopilot_eval::{
    build_method, map_by_db_size, prepare, recall_curve, render_series, CorpusKind, MethodKind,
    Scale,
};

fn main() {
    let scale = Scale::from_env();
    let prepared = prepare(CorpusKind::Spider, &scale);
    let methods = [
        MethodKind::Bm25,
        MethodKind::Sxfmr,
        MethodKind::CrushBm25,
        MethodKind::Dtr,
        MethodKind::DbCopilot,
    ];
    let ks = [1usize, 5, 10, 20, 30, 50];

    let mut fig7a = Vec::new();
    let mut fig7b = Vec::new();
    for &m in &methods {
        eprintln!("  building {}", m.label());
        let (router, _) = build_method(m, &prepared, &scale);
        let rows = map_by_db_size(
            router.as_ref(),
            &prepared.corpus.test,
            &prepared.corpus.collection,
            100,
        );
        fig7a.push((
            m.label().to_string(),
            rows.iter().map(|&(b, v, _)| (b as f64, v)).collect::<Vec<_>>(),
        ));
        let curve = recall_curve(router.as_ref(), &prepared.corpus.test, &ks);
        fig7b.push((
            m.label().to_string(),
            curve.iter().map(|&(k, v)| (k as f64, v)).collect::<Vec<_>>(),
        ));
    }
    println!(
        "{}",
        render_series("Figure 7(a) — table mAP by database size (x = #tables bucket)", &fig7a)
    );
    println!("{}", render_series("Figure 7(b) — table recall@k (x = k)", &fig7b));
}
