//! Table 3: schema routing performance on the regular test sets.
//!
//! Reproduces the shape of the paper's Table 3: DBCopilot vs zero-shot
//! (BM25, SXFMR), LLM-enhanced (CRUSH×2) and fine-tuned (BM25-ft, DTR)
//! baselines on Spider-like, Bird-like and Fiben-like corpora.

use dbcopilot_bench::render_routing_rows;
use dbcopilot_eval::{build_method, eval_routing, prepare, CorpusKind, MethodKind, Scale};

fn main() {
    let scale = Scale::from_env();
    for &kind in CorpusKind::ALL {
        let t0 = std::time::Instant::now();
        let prepared = prepare(kind, &scale);
        eprintln!(
            "[{}] prepared: {} dbs / {} tables / {} test questions ({:.1}s)",
            kind.name(),
            prepared.corpus.collection.num_databases(),
            prepared.corpus.collection.num_tables(),
            prepared.corpus.test.len(),
            t0.elapsed().as_secs_f64()
        );
        let mut rows = Vec::new();
        for &method in MethodKind::ALL {
            let t1 = std::time::Instant::now();
            let (router, report) = build_method(method, &prepared, &scale);
            let metrics = eval_routing(router.as_ref(), &prepared.corpus.test, 100);
            eprintln!(
                "  {:<12} build {:>6.1}s eval {:>6.1}s",
                method.label(),
                report.build_secs,
                t1.elapsed().as_secs_f64() - report.build_secs
            );
            rows.push((method.label().to_string(), metrics));
        }
        println!("{}", render_routing_rows(&format!("Table 3 — {}", kind.name()), &rows));
    }
}
