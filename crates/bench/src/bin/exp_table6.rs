//! Table 6: end-to-end schema-agnostic NL2SQL — execution accuracy (EX) and
//! LLM cost for the oracle tests, three prompt strategies over three
//! routing methods, and human-in-the-loop selection. Runs Spider, Bird and
//! the Spider-syn robustness variant like the paper.

use dbcopilot_bench::render_ex_rows;
use dbcopilot_core::{DbcRouter, SerializationMode};
use dbcopilot_eval::{
    build_method, eval_ex, prepare, CorpusKind, MethodKind, Scale, SchemaSource, Strategy,
};
use dbcopilot_nl2sql::CopilotLM;

fn main() {
    let scale = Scale::from_env();
    for &kind in &[CorpusKind::Spider, CorpusKind::Bird] {
        let prepared = prepare(kind, &scale);
        let llm = CopilotLM::new(scale.llm.clone());
        // build routing methods once
        let (crush, _) = build_method(MethodKind::CrushBm25, &prepared, &scale);
        let (dtr, _) = build_method(MethodKind::Dtr, &prepared, &scale);
        let (dbc, _) = DbcRouter::fit(
            prepared.graph.clone(),
            &prepared.synth_examples,
            scale.router.clone(),
            SerializationMode::Dfs,
        );

        let mut eval_sets: Vec<(&str, &[dbcopilot_synth::Instance])> =
            vec![("regular", &prepared.corpus.test)];
        if let Some(syn) = prepared.corpus.test_syn.as_ref() {
            eval_sets.push(("syn", syn));
        }
        for (set_name, instances) in eval_sets {
            let mut rows = Vec::new();
            // --- oracle tests
            for (name, source, strat) in [
                ("Gold T. & C.", SchemaSource::OracleGoldTc, Strategy::Best),
                ("Gold T.", SchemaSource::OracleGoldT, Strategy::Best),
                ("Gold DB", SchemaSource::OracleGoldDb, Strategy::Best),
                ("5 DB w. Gold", SchemaSource::OracleFiveDb, Strategy::Multiple(5)),
            ] {
                let r = eval_ex(&prepared.corpus, instances, &source, strat, &llm);
                rows.push((name.to_string(), r.ex, r.cost));
            }
            // --- methods × strategies
            let sources: Vec<(&str, SchemaSource)> = vec![
                ("CRUSH_BM25", SchemaSource::Method(crush.as_ref())),
                ("DTR", SchemaSource::Method(dtr.as_ref())),
                ("DBCopilot", SchemaSource::Copilot(&dbc)),
            ];
            for (strat_name, strat) in [
                ("Top 1", Strategy::Best),
                ("Top 5", Strategy::Multiple(5)),
                ("COT 5", Strategy::Cot(5)),
                ("Human 5", Strategy::HumanInTheLoop(5)),
            ] {
                for (mname, source) in &sources {
                    let r = eval_ex(&prepared.corpus, instances, source, strat, &llm);
                    rows.push((format!("{mname} / {strat_name}"), r.ex, r.cost));
                }
            }
            println!(
                "{}",
                render_ex_rows(&format!("Table 6 — {} ({set_name})", kind.name()), &rows)
            );
        }
    }
}
