//! Thread-scaling report for the data-parallel phases: trains the router
//! and rebuilds the retrieval indexes at several pinned thread counts,
//! printing wall time and verifying bit-identical training results.
//!
//! ```sh
//! DBC_SCALE=quick cargo run --release --bin exp_scaling
//! ```
//!
//! On a multi-core machine `train_router` should scale near-linearly to a
//! few threads (the acceptance target is ≥2× at 4 threads); on a single
//! core all rows show the same time, but the `identical` column must stay
//! `yes` everywhere — that is the determinism contract.

use std::time::Instant;

use dbcopilot_core::{DbcRouter, SerializationMode};
use dbcopilot_eval::{prepare, CorpusKind, Scale};
use dbcopilot_retrieval::{Bm25Index, Bm25Params};
use dbcopilot_runtime::with_thread_count;

fn main() {
    let scale = Scale::from_env();
    let prepared = prepare(CorpusKind::Spider, &scale);
    println!(
        "== Thread scaling — {} synth pairs, {} epochs, batch {} ==",
        prepared.synth_examples.len(),
        scale.router.epochs,
        scale.router.batch
    );
    println!("{:>7} | {:>12} | {:>12} | identical", "threads", "train (s)", "bm25 (s)");

    let mut reference: Option<Vec<u32>> = None;
    let mut violated = false;
    for threads in [1usize, 2, 4, 8] {
        let (train_secs, bm25_secs, losses) = with_thread_count(threads, || {
            let t0 = Instant::now();
            let (_, stats) = DbcRouter::fit(
                prepared.graph.clone(),
                &prepared.synth_examples,
                scale.router.clone(),
                SerializationMode::Dfs,
            );
            let train_secs = t0.elapsed().as_secs_f64();
            let targets = prepared.targets.clone(); // outside the timed region
            let t1 = Instant::now();
            let idx = Bm25Index::build(targets, Bm25Params::default());
            assert!(idx.num_docs() > 0);
            let bm25_secs = t1.elapsed().as_secs_f64();
            let losses: Vec<u32> = stats.epoch_losses.iter().map(|v| v.to_bits()).collect();
            (train_secs, bm25_secs, losses)
        });
        let identical = match &reference {
            None => {
                reference = Some(losses);
                "(ref)"
            }
            Some(r) if *r == losses => "yes",
            Some(_) => {
                violated = true;
                "NO — DETERMINISM VIOLATION"
            }
        };
        println!("{threads:>7} | {train_secs:>12.2} | {bm25_secs:>12.3} | {identical}");
    }
    if violated {
        eprintln!("determinism violation: epoch losses depend on the thread count");
        std::process::exit(1);
    }
}
