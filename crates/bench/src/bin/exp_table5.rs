//! Table 5: method efficiency and resource consumption — QPS, build time
//! (training + indexing), serialized index size, in-memory estimate.
//!
//! The paper's CRUSH rows are slow because each query round-trips a
//! commercial LLM; set `DBC_LLM_LATENCY_MS` (default 300) to simulate that
//! latency for the CRUSH rows, or 0 to disable.

use dbcopilot::{AskOptions, DbCopilot};
use dbcopilot_core::{save_router, DbcRouter, SerializationMode};
use dbcopilot_eval::{
    build_method, eval_ask, eval_routing, measure_latency_us, measure_served_ask_qps,
    measure_served_http_qps, measure_served_qps, prepare, render_ask_table, render_precision_table,
    render_table5, report, BuildReport, CorpusKind, MethodKind, PrecisionRow, ResourceReport,
    Scale,
};
use dbcopilot_http::{wire, Dispatcher, HttpClient, HttpConfig, HttpServer};
use dbcopilot_retrieval::{PrecisionSwitch, RoutePrecision, SchemaRouter};
use dbcopilot_serve::{
    AskOutcome, AskService, QueryPipeline, RouterService, ServiceConfig, ServiceStats,
};

fn main() {
    let scale = Scale::from_env();
    let llm_ms: u64 =
        std::env::var("DBC_LLM_LATENCY_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
    let prepared = prepare(CorpusKind::Spider, &scale);
    let questions: Vec<String> =
        prepared.corpus.test.iter().map(|i| i.question.clone()).take(64).collect();
    let mut rows = Vec::new();
    // The DBCopilot row's trained router is also the end-to-end section's
    // pipeline; save its (bit-exact) DBC1 bundle instead of training twice.
    let mut saved_router: Option<Vec<u8>> = None;
    for &method in MethodKind::ALL {
        let (mut router, build): (Box<dyn SchemaRouter + Send + Sync>, BuildReport) =
            if method == MethodKind::DbCopilot {
                let start = std::time::Instant::now();
                let (r, _) = DbcRouter::fit(
                    prepared.graph.clone(),
                    &prepared.synth_examples,
                    scale.router.clone(),
                    SerializationMode::Dfs,
                );
                let build = BuildReport {
                    build_secs: start.elapsed().as_secs_f64(),
                    disk_bytes: r.size_bytes(),
                };
                let mut buf = Vec::new();
                save_router(&r, &mut buf).expect("trained router must serialize");
                saved_router = Some(buf);
                (Box::new(r), build)
            } else {
                build_method(method, &prepared, &scale)
            };
        if matches!(method, MethodKind::CrushBm25 | MethodKind::CrushSxfmr) && llm_ms > 0 {
            // simulated commercial-LLM latency (documented in EXPERIMENTS.md)
            router = add_latency(method, &prepared, &scale, llm_ms);
        }
        let batch =
            if matches!(method, MethodKind::CrushBm25 | MethodKind::CrushSxfmr) && llm_ms > 0 {
                16
            } else {
                64
            };
        eprintln!("  measuring {}", method.label());
        rows.push(report(
            method.label(),
            router.as_ref(),
            &questions,
            build.build_secs,
            build.disk_bytes,
            batch,
        ));
        if method == MethodKind::DbCopilot {
            // The same trained router behind the serving layer: 4
            // concurrent clients cycling the question batch, so the number
            // reflects caching + micro-batching + pool dispatch.
            eprintln!("  measuring DBC (served)");
            let dbc = rows.last().expect("just pushed").clone();
            let service = RouterService::from_router(router, ServiceConfig::default());
            let qps = measure_served_qps(&service, &questions, 256, 4);
            rows.push(ResourceReport { method: "DBC (served)".to_string(), qps, ..dbc });
        }
    }
    println!("== Table 5 — efficiency & resource consumption ==");
    println!("{}", render_table5(&rows));
    println!("(CRUSH rows include {llm_ms} ms simulated LLM latency per query;");
    println!(" the served row adds the RouterService cache + worker-pool front)");

    // -----------------------------------------------------------------
    // Quantized routing: the same trained bundle scored at f32 and i8.
    // Recall is measured at both precisions, not asserted — at quick
    // scale quantization noise should leave it unchanged, and printing
    // both makes any drift visible in the experiment log.
    // -----------------------------------------------------------------
    eprintln!("  measuring quantized routing (f32 vs i8)");
    let saved = saved_router.expect("DbCopilot row always runs");
    let mut router = dbcopilot_core::load_router(&saved[..]).expect("saved router must load");
    let mut precision_rows = Vec::new();
    for (label, precision) in [("f32", RoutePrecision::F32), ("i8", RoutePrecision::I8)] {
        router.set_precision(precision);
        let m = eval_routing(&router, &prepared.corpus.test, 100);
        let latency_us = measure_latency_us(&router, &questions, 64);
        precision_rows.push(PrecisionRow {
            precision: label.to_string(),
            latency_us,
            db_r1: m.db_r1,
            db_r5: m.db_r5,
        });
    }
    println!("== Quantized routing — f32 vs i8 (same router) ==");
    println!("{}", render_precision_table(&precision_rows));

    // -----------------------------------------------------------------
    // SQL engine: the execution substrate under every EX number. Replay
    // the test split's gold queries under the interpreter, the compiled
    // path (fresh prepare per query), and the compiled path with
    // per-database prepared reuse — the configuration eval and serving
    // actually run.
    // -----------------------------------------------------------------
    eprintln!("  measuring engine latency (interpreted vs compiled)");
    {
        use dbcopilot::sqlengine::{execute_prepared, execute_with, ExecStrategy, PreparedStore};
        let store = &prepared.corpus.store;
        let pstore = PreparedStore::new(store.clone());
        let workload: Vec<_> = prepared
            .corpus
            .test
            .iter()
            .filter_map(|i| {
                let db = store.database(&i.schema.database)?;
                let pdb = pstore.prepared(&i.schema.database)?;
                Some((db, pdb, i.sql.as_str()))
            })
            .collect();
        let per_query_us = |run: &dyn Fn()| {
            let reps = 3;
            let start = std::time::Instant::now();
            for _ in 0..reps {
                run();
            }
            start.elapsed().as_secs_f64() * 1e6 / (reps * workload.len().max(1)) as f64
        };
        let interp = per_query_us(&|| {
            for (db, _, sql) in &workload {
                let _ = execute_with(db, sql, ExecStrategy::Interpreted);
            }
        });
        let compiled = per_query_us(&|| {
            for (db, _, sql) in &workload {
                let _ = execute_with(db, sql, ExecStrategy::Compiled);
            }
        });
        let reused = per_query_us(&|| {
            for (_, pdb, sql) in &workload {
                let _ = execute_prepared(pdb, sql);
            }
        });
        println!("== SQL engine — µs/query over the EX workload ({} queries) ==", workload.len());
        println!("interpreted            {interp:>10.1} µs/query");
        println!("compiled (per-query)   {compiled:>10.1} µs/query  ({:.1}x)", interp / compiled);
        println!("compiled (prepared)    {reused:>10.1} µs/query  ({:.1}x)", interp / reused);
    }

    // -----------------------------------------------------------------
    // End-to-end ask: routing accuracy only bounds what the full
    // question→SQL→result path delivers. Measure the single-candidate
    // path against top-3 fallback + execution-feedback repair, then the
    // same pipeline behind the AskService answer cache.
    // -----------------------------------------------------------------
    eprintln!("  measuring end-to-end ask (k=1 vs k=3 + repair)");
    // back to the f32 reference path for the end-to-end section
    router.set_precision(RoutePrecision::F32);
    let routing = eval_routing(&router, &prepared.corpus.test, 100);
    let copilot = DbCopilot::from_parts(
        router,
        Default::default(),
        prepared.corpus.collection.clone(),
        prepared.corpus.store.clone(),
    );
    let test = &prepared.corpus.test;
    let single = eval_ask(&copilot, &prepared.corpus, test, &AskOptions::first_candidate());
    let fallback =
        eval_ask(&copilot, &prepared.corpus, test, &AskOptions::new().top_k(3).repair_attempts(1));
    assert!(
        fallback.answered >= single.answered,
        "fallback must never answer fewer questions ({} vs {})",
        fallback.answered,
        single.answered,
    );
    println!("== End-to-end ask — question → SQL → result ({} questions) ==", test.len());
    println!("routing DB R@1 {:.1}%  (upper-bounds what k=1 can answer)", routing.db_r1);
    println!(
        "{}",
        render_ask_table(&[
            ("k=1 (no fallback)".to_string(), single),
            ("k=3 + 1 repair".to_string(), fallback.clone()),
        ])
    );

    eprintln!("  measuring DBC ask (served)");
    let ask_questions: Vec<String> = test.iter().map(|i| i.question.clone()).take(64).collect();
    let service = AskService::from_pipeline(
        copilot,
        AskOptions::new().top_k(3).repair_attempts(1),
        ServiceConfig::default(),
    );
    let qps = measure_served_ask_qps(&service, &ask_questions, 256, 4);
    let stats = service.stats();
    println!(
        "AskService (k=3 + repair): {qps:.1} answers/s over 4 clients \
         ({} cache hits / {} pipeline runs)",
        stats.cache_hits, stats.computed
    );
    // Served answers are the same computation: check outcome identity
    // against the direct pooled batch path, question by question.
    let served = service.ask_many(&ask_questions);
    let direct = service.pipeline().ask_batch(&ask_questions, service.options());
    for ((s, d), q) in served.iter().zip(&direct).zip(&ask_questions) {
        let identical = match (s.as_ref(), d) {
            (Ok(s), Ok(d)) => s.answer == d.answer && s.chosen == d.chosen,
            (Err(s), Err(d)) => s == d,
            _ => false,
        };
        assert!(identical, "served and direct ask disagree on {q:?}");
    }
    println!(
        "(served ask outcomes identical to direct ask — cache and pool are quality-invisible)"
    );

    // -----------------------------------------------------------------
    // HTTP edge: the same AskService served over real sockets. Reports
    // wire-level QPS, then asserts byte parity — the HTTP response body
    // for every question must equal the wire rendering of the direct
    // outcome, so the network edge is provably quality-invisible too.
    // -----------------------------------------------------------------
    eprintln!("  measuring DBC ask (HTTP edge)");
    struct AskOnly<P: QueryPipeline + 'static>(std::sync::Arc<AskService<P>>);
    impl<P: QueryPipeline + 'static> Dispatcher for AskOnly<P> {
        fn ask(&self, question: &str) -> std::sync::Arc<AskOutcome> {
            self.0.ask(question)
        }
        fn stats(&self) -> Vec<(&'static str, ServiceStats)> {
            vec![("ask", self.0.stats())]
        }
    }
    let service = std::sync::Arc::new(service);
    let server = HttpServer::bind(
        "127.0.0.1:0",
        AskOnly(std::sync::Arc::clone(&service)),
        HttpConfig::new().workers(4),
    )
    .expect("bind the HTTP edge on an ephemeral port");
    let http_qps = measure_served_http_qps(server.addr(), &ask_questions, 256, 4);
    let edge = server.stats();
    println!(
        "HTTP edge (4 keep-alive clients): {http_qps:.1} answers/s \
         (p50 {} µs, p95 {} µs per request over {} connections)",
        edge.p50_us, edge.p95_us, edge.accepted
    );

    let mut parity = HttpClient::connect(server.addr()).expect("parity client connects");
    for q in &ask_questions {
        let response =
            parity.post("/ask", &wire::question_body(q)).expect("parity request completes");
        let (status, body) = wire::ask_response(&service.ask(q));
        assert_eq!(
            (response.status, response.body.as_str()),
            (status, body.as_str()),
            "HTTP-served answer differs from direct ask for {q:?}"
        );
    }
    drop(parity);
    println!(
        "(HTTP-served bodies byte-identical to direct ask renderings over {} questions)",
        ask_questions.len()
    );
    let final_stats = server.shutdown();
    assert_eq!(final_stats.in_flight, 0, "graceful drain leaves nothing in flight");
}

fn add_latency(
    method: MethodKind,
    prepared: &dbcopilot_eval::Prepared,
    scale: &Scale,
    ms: u64,
) -> Box<dyn dbcopilot_retrieval::SchemaRouter + Send + Sync> {
    use dbcopilot_retrieval::{build_sxfmr, Bm25Index, Bm25Params, Crush};
    let latency = Some(std::time::Duration::from_millis(ms));
    match method {
        MethodKind::CrushBm25 => {
            let idx = Bm25Index::build(prepared.targets.clone(), Bm25Params::default());
            let mut c = Crush::new(idx, prepared.graph.clone(), "CRUSH_BM25");
            c.llm_latency = latency;
            Box::new(c)
        }
        _ => {
            let r = build_sxfmr(prepared.targets.clone(), scale.encoder.clone());
            let mut c = Crush::new(r, prepared.graph.clone(), "CRUSH_SXFMR");
            c.llm_latency = latency;
            Box::new(c)
        }
    }
}
