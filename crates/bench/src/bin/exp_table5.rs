//! Table 5: method efficiency and resource consumption — QPS, build time
//! (training + indexing), serialized index size, in-memory estimate.
//!
//! The paper's CRUSH rows are slow because each query round-trips a
//! commercial LLM; set `DBC_LLM_LATENCY_MS` (default 300) to simulate that
//! latency for the CRUSH rows, or 0 to disable.

use dbcopilot_eval::{
    build_method, measure_served_qps, prepare, render_table5, report, CorpusKind, MethodKind,
    ResourceReport, Scale,
};
use dbcopilot_serve::{RouterService, ServiceConfig};

fn main() {
    let scale = Scale::from_env();
    let llm_ms: u64 =
        std::env::var("DBC_LLM_LATENCY_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
    let prepared = prepare(CorpusKind::Spider, &scale);
    let questions: Vec<String> =
        prepared.corpus.test.iter().map(|i| i.question.clone()).take(64).collect();
    let mut rows = Vec::new();
    for &method in MethodKind::ALL {
        let (mut router, build) = build_method(method, &prepared, &scale);
        if matches!(method, MethodKind::CrushBm25 | MethodKind::CrushSxfmr) && llm_ms > 0 {
            // simulated commercial-LLM latency (documented in EXPERIMENTS.md)
            router = add_latency(method, &prepared, &scale, llm_ms);
        }
        let batch =
            if matches!(method, MethodKind::CrushBm25 | MethodKind::CrushSxfmr) && llm_ms > 0 {
                16
            } else {
                64
            };
        eprintln!("  measuring {}", method.label());
        rows.push(report(
            method.label(),
            router.as_ref(),
            &questions,
            build.build_secs,
            build.disk_bytes,
            batch,
        ));
        if method == MethodKind::DbCopilot {
            // The same trained router behind the serving layer: 4
            // concurrent clients cycling the question batch, so the number
            // reflects caching + micro-batching + pool dispatch.
            eprintln!("  measuring DBC (served)");
            let dbc = rows.last().expect("just pushed").clone();
            let service = RouterService::from_router(router, ServiceConfig::default());
            let qps = measure_served_qps(&service, &questions, 256, 4);
            rows.push(ResourceReport { method: "DBC (served)".to_string(), qps, ..dbc });
        }
    }
    println!("== Table 5 — efficiency & resource consumption ==");
    println!("{}", render_table5(&rows));
    println!("(CRUSH rows include {llm_ms} ms simulated LLM latency per query;");
    println!(" the served row adds the RouterService cache + worker-pool front)");
}

fn add_latency(
    method: MethodKind,
    prepared: &dbcopilot_eval::Prepared,
    scale: &Scale,
    ms: u64,
) -> Box<dyn dbcopilot_retrieval::SchemaRouter + Send + Sync> {
    use dbcopilot_retrieval::{build_sxfmr, Bm25Index, Bm25Params, Crush};
    let latency = Some(std::time::Duration::from_millis(ms));
    match method {
        MethodKind::CrushBm25 => {
            let idx = Bm25Index::build(prepared.targets.clone(), Bm25Params::default());
            let mut c = Crush::new(idx, prepared.graph.clone(), "CRUSH_BM25");
            c.llm_latency = latency;
            Box::new(c)
        }
        _ => {
            let r = build_sxfmr(prepared.targets.clone(), scale.encoder.clone());
            let mut c = Crush::new(r, prepared.graph.clone(), "CRUSH_SXFMR");
            c.llm_latency = latency;
            Box::new(c)
        }
    }
}
