//! Sharded-routing scaling report: quality and throughput vs shard count,
//! plus live demonstrations of the tier's three operational claims —
//! zero-downtime hot swap, lazy multi-shard bundle loading, and
//! shard-local ingestion.
//!
//! ```sh
//! DBC_SCALE=quick cargo run --release --bin exp_sharding
//! ```
//!
//! The full preset targets the paper's "massive collection" regime by
//! scaling the Spider-like corpus and the synthetic training pairs 10×
//! before partitioning; `quick` keeps the CI-sized corpus. At every scale
//! the run *fails* (exit 1) if any acceptance check is violated:
//!
//! 1. DB R@1/R@5 at 4 shards must stay within 2 points of the 1-shard
//!    monolith (the calibrated scatter-gather merge is lossless enough);
//! 2. a hot-swap `publish` under concurrent load must answer every request
//!    (zero drops) and advance the service generation;
//! 3. loading a multi-shard bundle must decode only the queried shard;
//! 4. `extend` with one new database must retrain exactly the owning shard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dbcopilot_core::{
    load_sharded_router_file, save_sharded_router_file, SerializationMode, ShardedRouter,
};
use dbcopilot_eval::{eval_routing, measure_qps, prepare, CorpusKind, Scale};
use dbcopilot_retrieval::SchemaRouter;
use dbcopilot_serve::{RouterService, ServiceConfig};
use dbcopilot_sqlengine::{DataType, DatabaseSchema, TableSchema};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Quality tolerance (percentage points) between the 4-shard tier and the
/// monolith.
const RECALL_TOLERANCE: f64 = 2.0;

fn main() {
    let mut scale = Scale::from_env();
    let quick = matches!(std::env::var("DBC_SCALE").as_deref(), Ok("quick"));
    if !quick {
        // The sharding experiment is about the regime where one monolithic
        // router stops being attractive: 10× the databases and synthetic
        // pairs of the standard preset.
        scale.spider.num_databases *= 10;
        scale.synth_pairs *= 10;
    }
    let prepared = prepare(CorpusKind::Spider, &scale);
    let questions: Vec<String> = prepared.corpus.test.iter().map(|i| i.question.clone()).collect();
    let qps_batch = if quick { 40 } else { 200 };
    println!(
        "== Sharded routing — {} databases, {} synth pairs, {} test questions ==",
        prepared.corpus.collection.num_databases(),
        prepared.synth_examples.len(),
        prepared.corpus.test.len()
    );
    println!(
        "{:>6} | {:>9} | {:>8} | {:>7} | {:>7}",
        "shards", "fit (s)", "QPS", "DB R@1", "DB R@5"
    );

    let mut failures = Vec::new();
    let mut monolith: Option<(f64, f64)> = None;
    let mut four_shard: Option<ShardedRouter> = None;
    for n in SHARD_COUNTS {
        let t0 = Instant::now();
        let (router, _) = ShardedRouter::fit(
            &prepared.corpus.collection,
            &prepared.synth_examples,
            scale.router.clone(),
            SerializationMode::Dfs,
            n,
        );
        let fit_secs = t0.elapsed().as_secs_f64();
        let m = eval_routing(&router, &prepared.corpus.test, 100);
        let qps = measure_qps(&router, &questions, qps_batch);
        println!("{n:>6} | {fit_secs:>9.2} | {qps:>8.1} | {:>7.1} | {:>7.1}", m.db_r1, m.db_r5);
        if n == 1 {
            monolith = Some((m.db_r1, m.db_r5));
        }
        if n == 4 {
            let (r1, r5) = monolith.expect("1-shard row runs first");
            if m.db_r1 < r1 - RECALL_TOLERANCE || m.db_r5 < r5 - RECALL_TOLERANCE {
                failures.push(format!(
                    "4-shard recall degraded beyond {RECALL_TOLERANCE} points: \
                     R@1 {:.1} vs {r1:.1}, R@5 {:.1} vs {r5:.1}",
                    m.db_r1, m.db_r5
                ));
            }
            four_shard = Some(router);
        }
    }
    let four_shard = four_shard.expect("shard sweep includes 4");

    demo_lazy_loading(&four_shard, &questions, &mut failures);
    let extended = demo_shard_local_extend(&prepared, &four_shard, &mut failures);
    demo_hot_swap(four_shard, extended, &questions, &mut failures);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ACCEPTANCE FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!("all sharding acceptance checks passed");
}

/// Save → load a multi-shard bundle and show that serving one shard
/// decodes one shard (the per-shard `loaded` counters are the evidence).
fn demo_lazy_loading(router: &ShardedRouter, questions: &[String], failures: &mut Vec<String>) {
    let path = std::env::temp_dir().join("dbc_exp_sharding.dbc1");
    save_sharded_router_file(router, &path).expect("save sharded bundle");
    let loaded = load_sharded_router_file(&path).expect("load sharded bundle");
    let cold = loaded.loaded_shards();
    let gold = &loaded.database_names()[0];
    let _ = loaded.route_shard(loaded.shard_of_db(gold), &questions[0], 10);
    let warm = loaded.loaded_shards();
    let states: Vec<&str> =
        loaded.shard_counters().iter().map(|c| if c.loaded { "hot" } else { "cold" }).collect();
    println!(
        "\n== Lazy loading — {} shards on disk, {cold} decoded after load, \
         {warm} after one single-shard route [{}] ==",
        loaded.num_shards(),
        states.join(" ")
    );
    if cold != 0 || warm != 1 {
        failures.push(format!(
            "lazy load decoded {cold} shards at load and {warm} after one route \
             (want 0 then 1)"
        ));
    }
    let _ = std::fs::remove_file(&path);
}

/// Add one database to the collection and show that `extend` retrains only
/// the shard that owns it.
fn demo_shard_local_extend(
    prepared: &dbcopilot_eval::Prepared,
    router: &ShardedRouter,
    failures: &mut Vec<String>,
) -> ShardedRouter {
    let mut grown = prepared.corpus.collection.clone();
    let mut db = DatabaseSchema::new("telemetry_hub");
    db.add_table(TableSchema::new("sensor").column("id", DataType::Int).primary(0));
    db.add_table(TableSchema::new("reading").column("id", DataType::Int).primary(0));
    grown.add_database(db);
    let owner = router.shard_of_db("telemetry_hub");

    let t0 = Instant::now();
    let (extended, retrained) = router
        .extend(&grown, &prepared.corpus.meta, &prepared.questioner, 48, 2)
        .expect("shard-local extend");
    let secs = t0.elapsed().as_secs_f64();
    let shards: Vec<usize> = retrained.iter().map(|(s, _)| *s).collect();
    println!(
        "== Shard-local ingestion — telemetry_hub lands on shard {owner}; \
         retrained {shards:?} of {} shards in {secs:.2}s ==",
        extended.num_shards()
    );
    if shards != [owner] {
        failures.push(format!("extend retrained shards {shards:?}, want only the owner {owner}"));
    }
    if !extended.database_names().iter().any(|n| n == "telemetry_hub") {
        failures.push("extended tier does not serve the new database".to_string());
    }
    extended
}

/// Publish the extended tier while clients are routing: every request must
/// be answered and the service generation must advance.
fn demo_hot_swap(
    before: ShardedRouter,
    after: ShardedRouter,
    questions: &[String],
    failures: &mut Vec<String>,
) {
    // No cache: every request exercises whichever router is current.
    let service =
        RouterService::new(Arc::new(before), ServiceConfig::new().cache_capacity(0).top_tables(10));
    let clients: u64 = 4;
    let rounds: u64 = 24;
    let answered = AtomicU64::new(0);
    let after = Arc::new(after);
    std::thread::scope(|s| {
        for client in 0..clients {
            let (service, answered) = (&service, &answered);
            // dbc-lint: allow(no-raw-spawn): hot-swap demo clients must be
            // independent OS threads hammering the service concurrently —
            // pooling them would serialize the swap being demonstrated.
            s.spawn(move || {
                for round in 0..rounds {
                    let q = &questions[((client + round * clients) as usize) % questions.len()];
                    let r = service.route(q);
                    assert!(!r.databases.is_empty(), "request answered by a live generation");
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        service.publish(Arc::clone(&after));
    });
    let answered = answered.load(Ordering::Relaxed);
    let generation = service.generation();
    println!(
        "== Hot swap — {answered}/{} requests answered across the publish, \
         generation {generation}, new tier serves {} databases ==",
        clients * rounds,
        service.router().num_databases()
    );
    if answered != clients * rounds {
        failures.push(format!("hot swap dropped {} requests", clients * rounds - answered));
    }
    if generation != 2 {
        failures.push(format!("publish must advance the generation to 2, got {generation}"));
    }
}
