//! Table 4: schema routing on the robustness test sets (Spider-syn /
//! Spider-real analogs): questions paraphrase or drop schema mentions.

use dbcopilot_bench::render_routing_rows;
use dbcopilot_eval::{build_method, eval_routing, prepare, CorpusKind, MethodKind, Scale};

fn main() {
    let scale = Scale::from_env();
    let prepared = prepare(CorpusKind::Spider, &scale);
    let syn = prepared.corpus.test_syn.as_ref().expect("spider corpus has syn variant");
    let real = prepared.corpus.test_real.as_ref().expect("spider corpus has real variant");
    let mut rows_syn = Vec::new();
    let mut rows_real = Vec::new();
    for &method in MethodKind::ALL {
        let (router, _) = build_method(method, &prepared, &scale);
        eprintln!("  evaluating {}", method.label());
        rows_syn.push((method.label().to_string(), eval_routing(router.as_ref(), syn, 100)));
        rows_real.push((method.label().to_string(), eval_routing(router.as_ref(), real, 100)));
    }
    println!("{}", render_routing_rows("Table 4 — Spider-syn", &rows_syn));
    println!("{}", render_routing_rows("Table 4 — Spider-real", &rows_real));
}
