//! Table 2: dataset statistics of the three benchmark corpora.

use dbcopilot_eval::{prepare, CorpusKind, Scale};
use dbcopilot_synth::{render_table2, DatasetStats};

fn main() {
    let scale = Scale::from_env();
    let mut stats = Vec::new();
    for &kind in CorpusKind::ALL {
        let p = prepare(kind, &scale);
        stats.push(DatasetStats::of(&p.corpus));
        if kind == CorpusKind::Spider {
            // robustness variants share the collection (paper footnote)
            let mut syn = DatasetStats::of(&p.corpus);
            syn.name = "spider-syn".into();
            syn.train = 0;
            let mut real = syn.clone();
            real.name = "spider-real".into();
            stats.push(syn);
            stats.push(real);
        }
    }
    println!("== Table 2 — dataset statistics ==");
    println!("{}", render_table2(&stats));
}
