//! Serving-layer micro-benchmarks: persistent-pool dispatch vs per-call
//! scoped spawn, warm-cache hits vs cold routes, and micro-batched routing
//! through the `RouterService`.
//!
//! The dispatch group isolates executor overhead on repeated *small*
//! batches — the serving workload where per-call `thread::spawn` is most
//! of the latency. The cache group compares a served warm hit against the
//! cold model route it replaces.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dbcopilot_core::{DbcRouter, SerializationMode};
use dbcopilot_eval::{prepare, CorpusKind, Scale};
use dbcopilot_retrieval::SchemaRouter;
use dbcopilot_runtime::{parallel_map_chunks, with_thread_count, WorkerPool};
use dbcopilot_serve::{RouterService, ServiceConfig};

/// Same tiny fixture rationale as `benches/routing.rs`: latency benches do
/// not need a converged model.
fn bench_scale() -> Scale {
    let mut s = Scale::quick();
    s.spider = dbcopilot_synth::CorpusSizes { num_databases: 8, train_n: 120, test_n: 10 };
    s.synth_pairs = 200;
    s.router.epochs = 2;
    s.encoder.epochs = 2;
    s
}

/// A few microseconds of integer work — small enough that dispatch
/// overhead dominates, which is exactly the regime micro-batched serving
/// lives in.
fn small_work(x: u64) -> u64 {
    let mut h = x;
    for _ in 0..400 {
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ x;
    }
    h
}

fn bench_dispatch(c: &mut Criterion) {
    let items: Vec<u64> = (0..16).collect();
    let pool = WorkerPool::new(4);

    let mut group = c.benchmark_group("dispatch_small_batch");
    group.bench_function("scoped_spawn", |b| {
        b.iter(|| {
            with_thread_count(4, || {
                parallel_map_chunks(black_box(&items), 4, |_, c| {
                    c.iter().map(|&x| small_work(x)).sum::<u64>()
                })
            })
        })
    });
    group.bench_function("worker_pool", |b| {
        b.iter(|| {
            with_thread_count(4, || {
                pool.map_chunks(black_box(&items), 4, |_, c| {
                    c.iter().map(|&x| small_work(x)).sum::<u64>()
                })
            })
        })
    });
    group.bench_function("serial_baseline", |b| {
        b.iter(|| {
            black_box(&items)
                .chunks(4)
                .map(|c| c.iter().map(|&x| small_work(x)).sum::<u64>())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_serving(c: &mut Criterion) {
    let scale = bench_scale();
    let prepared = prepare(CorpusKind::Spider, &scale);
    let questions: Vec<String> = prepared.corpus.test.iter().map(|i| i.question.clone()).collect();
    let (router, _) = DbcRouter::fit(
        prepared.graph.clone(),
        &prepared.synth_examples,
        scale.router.clone(),
        SerializationMode::Dfs,
    );
    let router = router.into_shared();

    let mut group = c.benchmark_group("route_cache");
    // Cold path: the model route a cache miss pays.
    let question = questions[0].clone();
    {
        let router = Arc::clone(&router);
        group.bench_function("cold_route", |b| b.iter(|| router.route(black_box(&question), 100)));
    }
    // Warm path: the same question served from the LRU cache.
    let service = RouterService::new(Arc::clone(&router), ServiceConfig::default());
    service.warm(&questions);
    group.bench_function("warm_cache_hit", |b| b.iter(|| service.route(black_box(&question))));
    group.finish();

    // Micro-batched serving throughput: all test questions in one
    // route_many sweep, cache disabled so every question routes.
    let mut group = c.benchmark_group("route_batch");
    let uncached = RouterService::new(Arc::clone(&router), ServiceConfig::new().cache_capacity(0));
    group.sample_size(10);
    group.bench_function("service_route_many", |b| {
        b.iter(|| uncached.route_many(black_box(&questions)))
    });
    group.bench_function("direct_loop", |b| {
        b.iter(|| black_box(&questions).iter().map(|q| router.route(q, 100)).collect::<Vec<_>>())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dispatch, bench_serving
}
criterion_main!(benches);
