//! HTTP-edge micro-benchmarks: parser cost, wire rendering cost, and full
//! socket round trips through a keep-alive connection.
//!
//! The parse/render benches isolate the protocol layer (no sockets, no
//! backend), so regressions there point at the parser or the JSON
//! rendering. The round-trip benches run a real server on a loopback
//! socket with an instant backend, so they price the whole edge: accept →
//! admission → parse → dispatch → render → write.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dbcopilot_graph::QuerySchema;
use dbcopilot_http::proto::{read_request, ByteStream, Conn, Limits};
use dbcopilot_http::{wire, Dispatcher, HttpClient, HttpConfig, HttpServer};
use dbcopilot_serve::{Answer, AskOutcome, AskReport, StageTimings};
use dbcopilot_sqlengine::ResultSet;

fn canned_report() -> AskReport {
    AskReport {
        question: "how many heads of the departments are older than 56 ?".into(),
        answer: Answer {
            schema: QuerySchema::new("department_management", vec!["head".into()]),
            sql: "SELECT COUNT(*) FROM head WHERE age > 56".into(),
            result: ResultSet {
                columns: vec!["COUNT(*)".into()],
                rows: vec![vec![dbcopilot_sqlengine::Value::Int(5)]],
            },
            recovered_errors: Vec::new(),
        },
        candidates: Vec::new(),
        chosen: 0,
        attempts: Vec::new(),
        timings: StageTimings::default(),
    }
}

struct CannedBackend(Arc<AskOutcome>);

impl Dispatcher for CannedBackend {
    fn ask(&self, _question: &str) -> Arc<AskOutcome> {
        Arc::clone(&self.0)
    }
}

fn bench_protocol(c: &mut Criterion) {
    let body = wire::question_body("how many heads of the departments are older than 56 ?");
    let request = format!(
        "POST /ask HTTP/1.1\r\nhost: dbcopilot\r\ncontent-type: application/json\r\n\
         content-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let outcome: AskOutcome = Ok(canned_report());

    let mut group = c.benchmark_group("http_edge");
    group.bench_function("request_parse", |b| {
        b.iter(|| {
            let mut conn = Conn::new(ByteStream::new(black_box(request.as_bytes().to_vec())));
            read_request(
                &mut conn,
                &Limits::default(),
                Duration::from_secs(1),
                Duration::from_secs(1),
            )
            .expect("canned request parses")
        })
    });
    group.bench_function("response_render", |b| b.iter(|| wire::ask_response(black_box(&outcome))));
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let server = HttpServer::bind(
        "127.0.0.1:0",
        CannedBackend(Arc::new(Ok(canned_report()))),
        HttpConfig::new().workers(2),
    )
    .expect("bind bench server");
    let mut client = HttpClient::connect(server.addr()).expect("bench client connects");
    let body = wire::question_body("how many heads of the departments are older than 56 ?");

    let mut group = c.benchmark_group("http_edge");
    group.bench_function("ask_roundtrip", |b| {
        b.iter(|| {
            let response = client.post("/ask", black_box(&body)).expect("roundtrip completes");
            assert_eq!(response.status, 200);
            response
        })
    });
    group.bench_function("healthz_roundtrip", |b| {
        b.iter(|| {
            let response = client.get("/healthz").expect("health roundtrip completes");
            assert_eq!(response.status, 200);
            response
        })
    });
    group.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench_protocol, bench_roundtrip);
criterion_main!(benches);
