//! SQL engine micro-benchmarks: parsing and the executor's main operators.

use criterion::{criterion_group, criterion_main, Criterion};

use dbcopilot_sqlengine::{
    execute, parse_select, DataType, Database, DatabaseSchema, TableSchema, Value,
};

fn make_db(rows: usize) -> Database {
    let mut schema = DatabaseSchema::new("bench");
    schema.add_table(
        TableSchema::new("orders")
            .column("order_id", DataType::Int)
            .column("name", DataType::Text)
            .column("amount", DataType::Float)
            .column("status", DataType::Text)
            .column("customer_id", DataType::Int)
            .primary(0),
    );
    schema.add_table(
        TableSchema::new("customer")
            .column("customer_id", DataType::Int)
            .column("name", DataType::Text)
            .column("region", DataType::Text)
            .primary(0),
    );
    let mut db = Database::from_schema(&schema);
    let statuses = ["active", "pending", "closed"];
    let regions = ["north", "south", "east", "west"];
    for i in 0..rows {
        db.insert(
            "orders",
            vec![
                Value::Int(i as i64),
                Value::Text(format!("o{i}")),
                Value::Float((i % 97) as f64 * 1.5),
                Value::Text(statuses[i % 3].into()),
                Value::Int((i % (rows / 4).max(1)) as i64),
            ],
        )
        .unwrap();
    }
    for i in 0..rows / 4 {
        db.insert(
            "customer",
            vec![
                Value::Int(i as i64),
                Value::Text(format!("c{i}")),
                Value::Text(regions[i % 4].into()),
            ],
        )
        .unwrap();
    }
    db
}

fn bench_engine(c: &mut Criterion) {
    let db = make_db(1000);
    c.bench_function("parse_join_query", |b| {
        b.iter(|| {
            parse_select(
                "SELECT o.name FROM orders AS o JOIN customer AS c \
                 ON o.customer_id = c.customer_id WHERE c.region = 'north' ORDER BY o.name LIMIT 10",
            )
        })
    });
    c.bench_function("scan_filter_1k", |b| {
        b.iter(|| execute(&db, "SELECT name FROM orders WHERE amount > 50"))
    });
    c.bench_function("group_by_1k", |b| {
        b.iter(|| execute(&db, "SELECT status, COUNT(*) FROM orders GROUP BY status"))
    });
    c.bench_function("join_1k_x_250", |b| {
        b.iter(|| {
            execute(
                &db,
                "SELECT o.name FROM orders AS o JOIN customer AS c \
                 ON o.customer_id = c.customer_id WHERE c.region = 'north'",
            )
        })
    });
    c.bench_function("subquery_max_1k", |b| {
        b.iter(|| {
            execute(&db, "SELECT name FROM orders WHERE amount = (SELECT MAX(amount) FROM orders)")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_engine
}
criterion_main!(benches);
