//! SQL engine micro-benchmarks: parsing, and each executor shape run under
//! both strategies — `interp` is the tree-walking interpreter, `compiled`
//! is the interned/index-resolved/hash-join path against a prepared
//! database (the serving and eval hot path). The compiled/interp pairs at
//! two row scales are what the CI baseline gate watches.

use criterion::{criterion_group, criterion_main, Criterion};

use dbcopilot_sqlengine::{
    execute_prepared, execute_with, parse_select, DataType, Database, DatabaseSchema, ExecStrategy,
    PreparedDb, TableSchema, Value,
};

fn make_db(rows: usize) -> Database {
    let mut schema = DatabaseSchema::new("bench");
    schema.add_table(
        TableSchema::new("orders")
            .column("order_id", DataType::Int)
            .column("name", DataType::Text)
            .column("amount", DataType::Float)
            .column("status", DataType::Text)
            .column("customer_id", DataType::Int)
            .primary(0),
    );
    schema.add_table(
        TableSchema::new("customer")
            .column("customer_id", DataType::Int)
            .column("name", DataType::Text)
            .column("region", DataType::Text)
            .primary(0),
    );
    let mut db = Database::from_schema(&schema);
    let statuses = ["active", "pending", "closed"];
    let regions = ["north", "south", "east", "west"];
    for i in 0..rows {
        db.insert(
            "orders",
            vec![
                Value::Int(i as i64),
                Value::Text(format!("o{i}")),
                Value::Float((i % 97) as f64 * 1.5),
                Value::Text(statuses[i % 3].into()),
                Value::Int((i % (rows / 4).max(1)) as i64),
            ],
        )
        .unwrap();
    }
    for i in 0..rows / 4 {
        db.insert(
            "customer",
            vec![
                Value::Int(i as i64),
                Value::Text(format!("c{i}")),
                Value::Text(regions[i % 4].into()),
            ],
        )
        .unwrap();
    }
    db
}

/// The executor shapes under the perf gate. Each runs as
/// `sqlengine/{shape}_{rows}/{interp|compiled}`.
const SHAPES: &[(&str, &str)] = &[
    ("scan_filter", "SELECT name FROM orders WHERE amount > 50"),
    (
        "join",
        "SELECT o.name FROM orders AS o JOIN customer AS c \
         ON o.customer_id = c.customer_id WHERE c.region = 'north'",
    ),
    ("group_by", "SELECT status, COUNT(*), SUM(amount) FROM orders GROUP BY status"),
    ("distinct", "SELECT DISTINCT status, customer_id FROM orders"),
    ("subquery", "SELECT name FROM orders WHERE amount = (SELECT MAX(amount) FROM orders)"),
    (
        "join_group_by",
        "SELECT c.region, COUNT(*), AVG(o.amount) FROM orders AS o \
         JOIN customer AS c ON o.customer_id = c.customer_id \
         GROUP BY c.region ORDER BY c.region",
    ),
];

fn bench_engine(c: &mut Criterion) {
    c.bench_function("parse_join_query", |b| {
        b.iter(|| {
            parse_select(
                "SELECT o.name FROM orders AS o JOIN customer AS c \
                 ON o.customer_id = c.customer_id WHERE c.region = 'north' ORDER BY o.name LIMIT 10",
            )
        })
    });
    for rows in [100usize, 1000] {
        let db = make_db(rows);
        let pdb = PreparedDb::prepare(&db);
        for (shape, sql) in SHAPES {
            c.bench_function(&format!("sqlengine/{shape}_{rows}/interp"), |b| {
                b.iter(|| execute_with(&db, sql, ExecStrategy::Interpreted))
            });
            c.bench_function(&format!("sqlengine/{shape}_{rows}/compiled"), |b| {
                b.iter(|| execute_prepared(&pdb, sql))
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_engine
}
criterion_main!(benches);
