//! Sharded-routing-tier micro-benchmarks: scatter-gather route latency vs
//! the monolith, the targeted single-shard path, calibrated-merge
//! overhead, and multi-shard bundle persistence (where lazy loading is the
//! whole point — load cost must not scale with shard count).
//!
//! CI runs this bench in `--compare` mode against the committed baseline
//! at `benches/baselines/sharding.json`; refresh it with
//! `cargo bench --bench sharding -- --save-baseline benches/baselines/sharding.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dbcopilot_core::{
    load_sharded_router_bytes, sharded_router_to_vec, SerializationMode, ShardedRouter,
};
use dbcopilot_eval::{prepare, CorpusKind, Scale};
use dbcopilot_retrieval::SchemaRouter;

/// Same tiny fixture rationale as `benches/routing.rs`: latency benches do
/// not need a converged model.
fn bench_scale() -> Scale {
    let mut s = Scale::quick();
    s.spider = dbcopilot_synth::CorpusSizes { num_databases: 8, train_n: 120, test_n: 10 };
    s.synth_pairs = 200;
    s.router.epochs = 2;
    s.encoder.epochs = 2;
    s
}

fn bench_sharding(c: &mut Criterion) {
    let scale = bench_scale();
    let prepared = prepare(CorpusKind::Spider, &scale);
    let question = &prepared.corpus.test[0].question;

    let fit = |n: usize| {
        ShardedRouter::fit(
            &prepared.corpus.collection,
            &prepared.synth_examples,
            scale.router.clone(),
            SerializationMode::Dfs,
            n,
        )
        .0
    };
    let one = fit(1);
    let four = fit(4);

    // Scatter-gather latency: the 1-shard tier routes exactly like the
    // monolith (no calibration), the 4-shard tier pays fan-out plus the
    // calibrated merge. Warm both tiers first so the cached background
    // scores — a one-time cost — stay out of the per-route numbers.
    let _ = one.route(question, 10);
    let _ = four.route(question, 10);
    let mut group = c.benchmark_group("shard_route");
    group.bench_function("x1", |b| b.iter(|| one.route(question, 10)));
    group.bench_function("x4", |b| b.iter(|| four.route(question, 10)));
    let target = four.shard_of_db(&prepared.corpus.test[0].schema.database);
    group.bench_function("one_shard_of_x4", |b| b.iter(|| four.route_shard(target, question, 10)));
    group.finish();

    // Persistence: encoding re-encodes every resident shard; loading a
    // multi-shard bundle must stay cheap because weight decoding is lazy.
    let bytes = sharded_router_to_vec(&four).unwrap();
    let mut group = c.benchmark_group("shard_persist");
    group.bench_function("save_x4", |b| b.iter(|| sharded_router_to_vec(&four).unwrap()));
    group.bench_function("lazy_load_x4", |b| {
        b.iter(|| black_box(load_sharded_router_bytes(bytes.clone()).unwrap()))
    });
    group.bench_function("load_and_route_one_shard", |b| {
        b.iter(|| {
            let tier = load_sharded_router_bytes(bytes.clone()).unwrap();
            black_box(tier.route_shard(target, question, 10))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sharding
}
criterion_main!(benches);
