//! Routing micro-benchmarks: per-query latency of every method (the basis
//! of Table 5's QPS column), constrained vs unconstrained decoding, DFS
//! serialization, index construction, and the f32 vs i8 quantized hot
//! path (both the raw matvec kernel and end-to-end routing).
//!
//! CI runs this bench in `--compare` mode against the committed baseline
//! at `benches/baselines/routing.json`; refresh it with
//! `cargo bench --bench routing -- --save-baseline benches/baselines/routing.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use dbcopilot_core::{load_router, save_router_as, DbcRouter, Format, SerializationMode};
use dbcopilot_eval::{build_method, prepare, CorpusKind, MethodKind, Scale};
use dbcopilot_graph::{dfs_serialize, IterOrder};
use dbcopilot_nn::{QuantizedMatrix, QuantizedVec, Tensor};
use dbcopilot_retrieval::{PrecisionSwitch, RoutePrecision, SchemaRouter};

/// A deliberately tiny setup: per-query latency does not need a large
/// corpus or a converged model, and the full quick-scale training used to
/// make `cargo bench` setup take minutes. One small router is trained once
/// and reused by both the routing and the decoding benchmark groups.
fn bench_scale() -> Scale {
    let mut s = Scale::quick();
    s.spider = dbcopilot_synth::CorpusSizes { num_databases: 8, train_n: 120, test_n: 10 };
    s.synth_pairs = 200;
    s.router.epochs = 2;
    s.encoder.epochs = 2;
    s
}

fn bench_routing(c: &mut Criterion) {
    let scale = bench_scale();
    let prepared = prepare(CorpusKind::Spider, &scale);
    let question = &prepared.corpus.test[0].question;

    // the shared pre-trained router fixture
    let (mut dbc, _) = DbcRouter::fit(
        prepared.graph.clone(),
        &prepared.synth_examples,
        scale.router.clone(),
        SerializationMode::Dfs,
    );

    let mut group = c.benchmark_group("route_one_query");
    for &m in &[MethodKind::Bm25, MethodKind::Sxfmr, MethodKind::CrushBm25, MethodKind::Dtr] {
        let (router, _) = build_method(m, &prepared, &scale);
        group.bench_with_input(BenchmarkId::from_parameter(m.label()), question, |b, q| {
            b.iter(|| router.route(q, 100))
        });
    }
    group.bench_with_input(BenchmarkId::from_parameter("DBCopilot"), question, |b, q| {
        b.iter(|| dbc.route(q, 100))
    });
    group.finish();

    // constrained vs unconstrained decoding (Table 7 CD ablation cost),
    // on the same pre-trained fixture
    let mut group = c.benchmark_group("decoding");
    group.bench_function("constrained", |b| b.iter(|| dbc.sequences(question)));
    dbc.decode_opts.constrained = false;
    group.bench_function("unconstrained", |b| b.iter(|| dbc.sequences(question)));
    dbc.decode_opts.constrained = true;
    dbc.decode_opts.diverse = false;
    group.bench_function("plain_beams", |b| b.iter(|| dbc.sequences(question)));
    group.finish();

    // DFS serialization
    let schema = &prepared.corpus.test[0].schema;
    c.bench_function("dfs_serialize", |b| {
        b.iter(|| dfs_serialize(&prepared.graph, schema, IterOrder::Fixed))
    });

    // index construction
    c.bench_function("bm25_build", |b| {
        b.iter(|| {
            dbcopilot_retrieval::Bm25Index::build(
                prepared.targets.clone(),
                dbcopilot_retrieval::Bm25Params::default(),
            )
        })
    });

    // persistence: the DBC1 binary codec vs the JSON escape hatch, on the
    // same pre-trained fixture (Table 5 build/disk accounting path)
    let mut group = c.benchmark_group("persistence");
    let mut bin = Vec::new();
    save_router_as(&dbc, &mut bin, Format::Binary).unwrap();
    let mut json = Vec::new();
    save_router_as(&dbc, &mut json, Format::Json).unwrap();
    group.bench_function("save_binary", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(bin.len());
            save_router_as(&dbc, &mut buf, Format::Binary).unwrap();
            buf
        })
    });
    group.bench_function("save_json", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(json.len());
            save_router_as(&dbc, &mut buf, Format::Json).unwrap();
            buf
        })
    });
    group.bench_function("load_binary", |b| b.iter(|| load_router(bin.as_slice()).unwrap()));
    group.bench_function("load_json", |b| b.iter(|| load_router(json.as_slice()).unwrap()));
    group.finish();
}

/// The quantized hot path vs the f32 reference, at two levels: the raw
/// matvec kernel that dominates scoring, and a full `route()` call through
/// the precision knob. The i8 rows are the ones the perf-regression gate
/// most cares about — a change that silently de-quantizes the hot loop
/// shows up here as a large delta.
fn bench_quantized(c: &mut Criterion) {
    // kernel: [512 x 256] matvec, roughly the q_proj shape at paper scale
    let (rows, cols) = (512, 256);
    let w = Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|i| ((i * 2_654_435_761) % 1000) as f32 / 500.0 - 1.0).collect(),
    );
    let x: Vec<f32> = (0..cols).map(|i| (i as f32 / cols as f32) - 0.5).collect();
    let qw = QuantizedMatrix::from_tensor(&w);
    let qx = QuantizedVec::quantize(&x);

    let mut group = c.benchmark_group("quant_matvec");
    let mut out = vec![0.0f32; rows];
    group.bench_function("f32", |b| {
        b.iter(|| {
            for (r, o) in out.iter_mut().enumerate() {
                let row = w.row(r);
                *o = row.iter().zip(&x).map(|(a, b)| a * b).sum();
            }
            black_box(out[rows - 1])
        })
    });
    let mut qout = Vec::with_capacity(rows);
    group.bench_function("i8", |b| {
        b.iter(|| {
            qw.matvec_into(&qx, &mut qout);
            black_box(qout[rows - 1])
        })
    });
    group.finish();

    // route level: the same trained fixture served at both precisions
    let scale = bench_scale();
    let prepared = prepare(CorpusKind::Spider, &scale);
    let question = &prepared.corpus.test[0].question;
    let (mut dbc, _) = DbcRouter::fit(
        prepared.graph.clone(),
        &prepared.synth_examples,
        scale.router.clone(),
        SerializationMode::Dfs,
    );

    let mut group = c.benchmark_group("quant_route");
    group.bench_function("f32", |b| b.iter(|| dbc.route(question, 100)));
    dbc.set_precision(RoutePrecision::I8);
    group.bench_function("i8", |b| b.iter(|| dbc.route(question, 100)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_routing, bench_quantized
}
criterion_main!(benches);
