//! Differential tests: the compiled execution path must be observably
//! identical to the interpreter — same columns, same rows in the same
//! order, and byte-identical error messages — over randomized queries
//! covering every clause the engine implements. The repair loop derives
//! its RNG stream from error text, so error parity is not cosmetic: a
//! single diverging byte changes downstream EX numbers.

use proptest::prelude::*;

use dbcopilot_sqlengine::{
    execute_prepared, execute_with, DataType, Database, DatabaseSchema, ExecStrategy, PreparedDb,
    TableSchema, Value,
};

/// A small multi-table database exercising the hazards the compiled path
/// must replicate: NULLs in join keys and aggregates, duplicate join keys,
/// text shared across tables, -0.0 vs 0.0, integers beyond 2^53 (where
/// f64 equality classes collapse), and an empty table.
fn diff_db() -> Database {
    let mut schema = DatabaseSchema::new("diffdb");
    schema.add_table(
        TableSchema::new("singer")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("age", DataType::Int)
            .column("country", DataType::Text)
            .column("net", DataType::Float),
    );
    schema.add_table(
        TableSchema::new("concert")
            .column("cid", DataType::Int)
            .column("singer_id", DataType::Int)
            .column("city", DataType::Text)
            .column("year", DataType::Int)
            .column("score", DataType::Float),
    );
    schema.add_table(
        TableSchema::new("album")
            .column("aid", DataType::Int)
            .column("singer_id", DataType::Int)
            .column("title", DataType::Text),
    );
    schema.add_table(
        TableSchema::new("nobody").column("nid", DataType::Int).column("note", DataType::Text),
    );
    let mut db = Database::from_schema(&schema);
    let text = |s: &str| Value::Text(s.to_string());
    let singers: &[(Value, Value, Value, Value, Value)] = &[
        (Value::Int(1), text("adele"), Value::Int(30), text("uk"), Value::Float(1.5)),
        (Value::Int(2), text("bruno"), Value::Int(32), text("usa"), Value::Float(-0.0)),
        (Value::Int(3), text("celine"), Value::Null, text("canada"), Value::Float(0.0)),
        (Value::Int(4), text("drake"), Value::Int(30), text("canada"), Value::Null),
        (Value::Int(5), text("elvis"), Value::Int(42), text("usa"), Value::Float(2.5)),
        (Value::Int(6), text("adele"), Value::Int(25), text("usa"), Value::Float(1e15)),
        (
            Value::Int(9007199254740993),
            text("ghost"),
            Value::Int(99),
            Value::Null,
            Value::Float(9007199254740992.0),
        ),
    ];
    for (id, name, age, country, net) in singers.iter().cloned() {
        db.insert("singer", vec![id, name, age, country, net]).unwrap();
    }
    let concerts: &[(i64, Value, Value, Value, Value)] = &[
        (10, Value::Int(1), text("london"), Value::Int(1999), Value::Float(4.5)),
        (11, Value::Int(1), text("austin"), Value::Int(2020), Value::Float(3.0)),
        (12, Value::Int(2), text("usa"), Value::Int(2020), Value::Null),
        (13, Value::Int(2), text("austin"), Value::Int(1999), Value::Float(4.5)),
        (14, Value::Null, text("london"), Value::Int(2005), Value::Float(1.0)),
        (15, Value::Int(5), text("memphis"), Value::Int(1956), Value::Float(5.0)),
        (16, Value::Int(5), text("memphis"), Value::Int(1957), Value::Float(5.0)),
        (17, Value::Int(8), text("nowhere"), Value::Int(2001), Value::Float(2.0)),
        (18, Value::Int(9007199254740992), text("ghost town"), Value::Int(2024), Value::Float(0.5)),
    ];
    for (cid, sid, city, year, score) in concerts.iter().cloned() {
        db.insert("concert", vec![Value::Int(cid), sid, city, year, score]).unwrap();
    }
    let albums: &[(i64, Value, &str)] = &[
        (100, Value::Int(1), "19"),
        (101, Value::Int(1), "25"),
        (102, Value::Int(2), "doo-wops"),
        (103, Value::Int(5), "blue hawaii"),
        (104, Value::Null, "untitled"),
    ];
    for (aid, sid, title) in albums.iter().cloned() {
        db.insert("album", vec![Value::Int(aid), sid, text(title)]).unwrap();
    }
    db
}

/// Run one SQL string through the interpreter, the compiled path, and the
/// prepared-database entry point; all three must agree observably.
fn check(db: &Database, pdb: &PreparedDb, sql: &str) -> Result<(), TestCaseError> {
    let interp = execute_with(db, sql, ExecStrategy::Interpreted);
    let compiled = execute_with(db, sql, ExecStrategy::Compiled);
    match (&interp, &compiled) {
        (Ok(a), Ok(b)) => {
            // Debug formatting distinguishes -0.0 from 0.0 and NaN bit
            // patterns well enough for "observably identical".
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "results diverge on: {}", sql);
        }
        (Err(a), Err(b)) => {
            prop_assert_eq!(a.to_string(), b.to_string(), "errors diverge on: {}", sql);
        }
        _ => {
            prop_assert!(
                false,
                "strategy disagreement on {}\n  interpreted: {:?}\n  compiled: {:?}",
                sql,
                interp,
                compiled
            );
        }
    }
    let prepared = execute_prepared(pdb, sql);
    match (&compiled, &prepared) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "prepared diverges on: {}", sql);
        }
        (Err(a), Err(b)) => {
            prop_assert_eq!(a.to_string(), b.to_string(), "prepared error diverges on: {}", sql);
        }
        _ => {
            prop_assert!(
                false,
                "prepared disagreement on {}\n  compiled: {:?}\n  prepared: {:?}",
                sql,
                compiled,
                prepared
            );
        }
    }
    Ok(())
}

fn rnd(state: &mut u64, n: usize) -> usize {
    (proptest::next_state(state) % n as u64) as usize
}

fn pick<'a>(state: &mut u64, xs: &[&'a str]) -> &'a str {
    xs[rnd(state, xs.len())]
}

fn chance(state: &mut u64, pct: usize) -> bool {
    rnd(state, 100) < pct
}

const TABLES: &[&str] = &["singer", "concert", "album", "nobody"];

fn columns_of(table: &str) -> &'static [&'static str] {
    match table {
        "singer" => &["id", "name", "age", "country", "net"],
        "concert" => &["cid", "singer_id", "city", "year", "score"],
        "album" => &["aid", "singer_id", "title"],
        _ => &["nid", "note"],
    }
}

fn num_columns_of(table: &str) -> &'static [&'static str] {
    match table {
        "singer" => &["id", "age", "net"],
        "concert" => &["cid", "singer_id", "year", "score"],
        "album" => &["aid", "singer_id"],
        _ => &["nid"],
    }
}

fn text_columns_of(table: &str) -> &'static [&'static str] {
    match table {
        "singer" => &["name", "country"],
        "concert" => &["city"],
        "album" => &["title"],
        _ => &["note"],
    }
}

/// Literals drawn from values present in the data, absent values, edge
/// floats, huge integers, and NULL.
fn literal(state: &mut u64) -> &'static str {
    pick(
        state,
        &[
            "0",
            "1",
            "2",
            "5",
            "25",
            "30",
            "32",
            "1999",
            "2020",
            "9007199254740993",
            "9007199254740992",
            "-1",
            "0.0",
            "-0.0",
            "1.5",
            "4.5",
            "1e15",
            "'usa'",
            "'uk'",
            "'austin'",
            "'adele'",
            "'memphis'",
            "'nope'",
            "NULL",
        ],
    )
}

/// A column reference; occasionally qualified, occasionally bogus (to
/// exercise unknown-column error parity, including the deferred-resolution
/// quirk where `SELECT bogus FROM t WHERE false` succeeds).
fn column(state: &mut u64, table: &str) -> String {
    if chance(state, 4) {
        return pick(state, &["bogus", "singer.bogus", "zzz.id"]).to_string();
    }
    let col = pick(state, columns_of(table));
    if chance(state, 30) {
        format!("{table}.{col}")
    } else {
        col.to_string()
    }
}

/// Scalar expression over one table: column, literal, or arithmetic.
fn scalar(state: &mut u64, table: &str, depth: usize) -> String {
    match if depth == 0 { rnd(state, 2) } else { rnd(state, 4) } {
        0 => column(state, table),
        1 => literal(state).to_string(),
        2 => {
            let op = pick(state, &["+", "-", "*", "/"]);
            format!("{} {op} {}", scalar(state, table, depth - 1), scalar(state, table, depth - 1))
        }
        _ => format!("-{}", scalar(state, table, depth - 1)),
    }
}

/// A small uncorrelated subquery usable in IN / scalar positions.
fn subquery(state: &mut u64, scalar_pos: bool) -> String {
    let table = pick(state, &["singer", "concert", "album", "nobody", "missing_table"]);
    let col = if table == "missing_table" { "id" } else { pick(state, columns_of(table)) };
    if scalar_pos {
        let agg = pick(state, &["MAX", "MIN", "COUNT", "SUM", "AVG"]);
        let mut s = format!("SELECT {agg}({col}) FROM {table}");
        if chance(state, 30) {
            s.push_str(&format!(" WHERE {}", predicate(state, table, 0)));
        }
        s
    } else {
        let mut s = format!("SELECT {col} FROM {table}");
        if chance(state, 40) {
            s.push_str(&format!(" WHERE {}", predicate(state, table, 0)));
        }
        s
    }
}

/// Boolean predicate over one table.
fn predicate(state: &mut u64, table: &str, depth: usize) -> String {
    let simple = |state: &mut u64| -> String {
        match rnd(state, 7) {
            0 | 1 => {
                let op = pick(state, &["=", "<>", "<", "<=", ">", ">="]);
                format!("{} {op} {}", scalar(state, table, 1), scalar(state, table, 1))
            }
            2 => {
                let col = pick(state, columns_of(table));
                let not = if chance(state, 50) { " NOT" } else { "" };
                format!("{col} IS{not} NULL")
            }
            3 => {
                let col = pick(state, text_columns_of(table));
                let pat = pick(state, &["'%a%'", "'a%'", "'%usa'", "'m_mphis'", "'%'", "''"]);
                format!("{col} LIKE {pat}")
            }
            4 => {
                let col = pick(state, num_columns_of(table));
                let (a, b) = (literal(state), literal(state));
                format!("{col} BETWEEN {a} AND {b}")
            }
            5 => {
                let col = pick(state, columns_of(table));
                let not = if chance(state, 30) { "NOT " } else { "" };
                if chance(state, 50) {
                    format!(
                        "{col} {not}IN ({}, {}, {})",
                        literal(state),
                        literal(state),
                        literal(state)
                    )
                } else {
                    format!("{col} {not}IN ({})", subquery(state, false))
                }
            }
            _ => {
                let op = pick(state, &["=", "<", ">"]);
                format!("{} {op} ({})", scalar(state, table, 1), subquery(state, true))
            }
        }
    };
    if depth == 0 {
        return simple(state);
    }
    match rnd(state, 4) {
        0 => format!("{} AND {}", predicate(state, table, depth - 1), simple(state)),
        1 => format!("{} OR {}", predicate(state, table, depth - 1), simple(state)),
        2 => format!("NOT ({})", predicate(state, table, depth - 1)),
        _ => simple(state),
    }
}

/// ORDER BY / LIMIT tail. ORDER BY may reference a projection alias.
fn tail(state: &mut u64, table: &str, aliases: &[String]) -> String {
    let mut s = String::new();
    if chance(state, 50) {
        let key = if !aliases.is_empty() && chance(state, 40) {
            aliases[rnd(state, aliases.len())].clone()
        } else {
            column(state, table)
        };
        let dir = pick(state, &["", " ASC", " DESC"]);
        s.push_str(&format!(" ORDER BY {key}{dir}"));
        if chance(state, 30) {
            s.push_str(&format!(", {}", column(state, table)));
        }
    }
    if chance(state, 40) {
        s.push_str(&format!(" LIMIT {}", rnd(state, 6)));
    }
    s
}

/// Flat (non-grouped) single-table query.
fn flat_query(state: &mut u64) -> String {
    let table = pick(state, TABLES);
    let distinct = if chance(state, 30) { "DISTINCT " } else { "" };
    let mut aliases = Vec::new();
    let projs = if chance(state, 15) {
        "*".to_string()
    } else {
        let n = 1 + rnd(state, 3);
        let mut parts = Vec::new();
        for i in 0..n {
            let e = scalar(state, table, 1);
            if chance(state, 30) {
                let a = format!("al{i}");
                parts.push(format!("{e} AS {a}"));
                aliases.push(a);
            } else {
                parts.push(e);
            }
        }
        parts.join(", ")
    };
    let mut sql = format!("SELECT {distinct}{projs} FROM {table}");
    if chance(state, 70) {
        sql.push_str(&format!(" WHERE {}", predicate(state, table, 1)));
    }
    sql.push_str(&tail(state, table, &aliases));
    sql
}

/// Join query over singer ⋈ concert (sometimes + album). Mixes pure
/// equality keys (hash-join path), residual conjuncts, literal-only and
/// non-equi ON clauses (nested-loop fallback), and bogus tables/columns.
fn join_query(state: &mut u64) -> String {
    let on = match rnd(state, 6) {
        0 | 1 => "singer.id = concert.singer_id".to_string(),
        2 => "concert.singer_id = singer.id AND concert.year > 1990".to_string(),
        3 => format!(
            "singer.id = concert.singer_id AND concert.city = {}",
            pick(state, &["'austin'", "'usa'", "singer.country"])
        ),
        4 => "singer.id < concert.singer_id".to_string(),
        _ => format!("concert.city = {}", pick(state, &["'memphis'", "singer.country", "'nope'"])),
    };
    let mut sql = format!(
        "SELECT {}, {} FROM singer JOIN concert ON {on}",
        column(state, "singer"),
        if chance(state, 85) {
            format!("concert.{}", pick(state, columns_of("concert")))
        } else {
            "concert.bogus".to_string()
        },
    );
    match rnd(state, 8) {
        0 => sql.push_str(" JOIN album ON album.singer_id = singer.id"),
        1 => sql.push_str(" JOIN nobody ON nobody.nid = singer.id"),
        2 => sql.push_str(" JOIN missing_table ON missing_table.x = singer.id"),
        _ => {}
    }
    if chance(state, 50) {
        let t = pick(state, &["singer", "concert"]);
        sql.push_str(&format!(" WHERE {}", predicate(state, t, 0)));
    }
    if chance(state, 40) {
        sql.push_str(&format!(
            " ORDER BY {}",
            pick(state, &["singer.id", "concert.cid", "concert.year DESC, singer.id"])
        ));
    }
    if chance(state, 30) {
        sql.push_str(&format!(" LIMIT {}", rnd(state, 8)));
    }
    sql
}

/// Grouped/aggregated query (with or without GROUP BY and HAVING).
fn grouped_query(state: &mut u64) -> String {
    let table = pick(state, &["singer", "concert", "nobody"]);
    let key = pick(state, columns_of(table));
    let num = pick(state, num_columns_of(table));
    let agg_fn = pick(state, &["COUNT", "SUM", "AVG", "MIN", "MAX"]);
    let agg_arg = match rnd(state, 4) {
        0 if agg_fn == "COUNT" => "*".to_string(),
        1 => format!("DISTINCT {num}"),
        _ => num.to_string(),
    };
    let mut sql = if chance(state, 75) {
        format!("SELECT {key}, {agg_fn}({agg_arg}) AS m FROM {table}")
    } else {
        // global aggregate, no GROUP BY (empty-group representative)
        let wild = if chance(state, 15) { ", *" } else { "" };
        format!("SELECT {agg_fn}({agg_arg}) AS m{wild} FROM {table}")
    };
    if chance(state, 50) {
        sql.push_str(&format!(" WHERE {}", predicate(state, table, 0)));
    }
    if sql.contains(&format!("SELECT {key},")) {
        sql.push_str(&format!(" GROUP BY {key}"));
        if chance(state, 50) {
            sql.push_str(&format!(
                " HAVING {agg_fn}({agg_arg}) {} {}",
                pick(state, &[">", ">=", "<", "="]),
                rnd(state, 5)
            ));
        }
        if chance(state, 40) {
            sql.push_str(&format!(" ORDER BY {}", pick(state, &["m", "m DESC", "1"])));
        }
    }
    if chance(state, 30) {
        sql.push_str(&format!(" LIMIT {}", rnd(state, 4)));
    }
    sql
}

fn any_query(state: &mut u64) -> String {
    match rnd(state, 3) {
        0 => flat_query(state),
        1 => join_query(state),
        _ => grouped_query(state),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flat scans: projections, WHERE, DISTINCT, ORDER BY (incl. aliases),
    /// LIMIT, subqueries in predicates, deliberate unknown columns.
    #[test]
    fn compiled_matches_interpreter_on_flat_queries(seed in 0u64..1_000_000) {
        let db = diff_db();
        let pdb = PreparedDb::prepare(&db);
        let mut state = seed;
        for _ in 0..4 {
            let sql = flat_query(&mut state);
            check(&db, &pdb, &sql)?;
        }
    }

    /// Joins: hash equi-join, residual conjuncts, nested-loop fallback,
    /// NULL/absent keys, three-way joins, bind errors.
    #[test]
    fn compiled_matches_interpreter_on_joins(seed in 0u64..1_000_000) {
        let db = diff_db();
        let pdb = PreparedDb::prepare(&db);
        let mut state = seed;
        for _ in 0..4 {
            let sql = join_query(&mut state);
            check(&db, &pdb, &sql)?;
        }
    }

    /// GROUP BY / HAVING / global aggregates / DISTINCT aggregates,
    /// including the empty table (empty-group representative row).
    #[test]
    fn compiled_matches_interpreter_on_grouped_queries(seed in 0u64..1_000_000) {
        let db = diff_db();
        let pdb = PreparedDb::prepare(&db);
        let mut state = seed;
        for _ in 0..4 {
            let sql = grouped_query(&mut state);
            check(&db, &pdb, &sql)?;
        }
    }

    /// Everything mixed — the long-haul differential sweep.
    #[test]
    fn compiled_matches_interpreter_on_mixed_queries(seed in 0u64..1_000_000) {
        let db = diff_db();
        let pdb = PreparedDb::prepare(&db);
        let mut state = seed;
        for _ in 0..4 {
            let sql = any_query(&mut state);
            check(&db, &pdb, &sql)?;
        }
    }
}

/// Directed cases for hazards the generator may hit only rarely. Each was
/// chosen because the compiled path has a dedicated mechanism for it.
#[test]
fn directed_parity_cases() {
    let db = diff_db();
    let pdb = PreparedDb::prepare(&db);
    let cases = [
        // Deferred column resolution: unknown column never evaluated.
        "SELECT bogus FROM singer WHERE 1 = 0",
        "SELECT bogus FROM singer",
        "SELECT name FROM singer WHERE 1 = 0 AND bogus = 3",
        // Join bind-error ordering: earlier join errors win over later binds.
        "SELECT name FROM singer JOIN missing_table ON missing_table.x = singer.id JOIN concert ON concert.singer_id = singer.id",
        "SELECT bogus FROM singer JOIN missing_table ON missing_table.x = singer.id",
        // Hash-join key classes: -0.0 = 0.0, int/float cross-type equality,
        // i64 beyond 2^53 colliding with its f64 neighbour.
        "SELECT s.id FROM singer AS s JOIN concert ON s.net = concert.score",
        "SELECT singer.id, concert.cid FROM singer JOIN concert ON singer.id = concert.singer_id WHERE singer.id > 9007199254740000",
        // NULL keys never match, on either side.
        "SELECT singer.name FROM singer JOIN concert ON singer.age = concert.singer_id",
        // Build-side selection both ways round (small ⋈ large, large ⋈ small).
        "SELECT album.title FROM album JOIN concert ON album.singer_id = concert.singer_id",
        "SELECT album.title FROM concert JOIN album ON album.singer_id = concert.singer_id",
        // Empty build/probe sides.
        "SELECT note FROM nobody JOIN singer ON nobody.nid = singer.id",
        "SELECT note FROM singer JOIN nobody ON nobody.nid = singer.id",
        // Residual conjunct errors must fire per matched pair, in order.
        "SELECT name FROM singer JOIN concert ON singer.id = concert.singer_id AND concert.city + 1 > 0",
        // DISTINCT float canonicalization: -0.0/0.0 fold, 1e15 boundary.
        "SELECT DISTINCT net FROM singer",
        "SELECT DISTINCT net / 1 FROM singer",
        // ORDER BY alias after wildcard (positional-quirk replication).
        "SELECT *, age AS k FROM singer ORDER BY k",
        "SELECT age AS k, * FROM singer ORDER BY k DESC",
        // Aggregates over NULLs, empty groups, DISTINCT aggregates.
        "SELECT COUNT(age), COUNT(*), SUM(net), AVG(age), MIN(name), MAX(net) FROM singer",
        "SELECT COUNT(DISTINCT country) FROM singer",
        "SELECT SUM(nid) FROM nobody",
        "SELECT country, COUNT(*) FROM singer GROUP BY country HAVING COUNT(*) > 1",
        "SELECT COUNT(*), * FROM singer",
        // Scalar subqueries: empty → NULL, aggregate over empty table.
        "SELECT name FROM singer WHERE age = (SELECT MAX(nid) FROM nobody)",
        "SELECT name FROM singer WHERE age > (SELECT AVG(year) FROM concert)",
        // IN subquery with NULLs in the probe and the list.
        "SELECT name FROM singer WHERE age IN (SELECT singer_id FROM concert)",
        "SELECT name FROM singer WHERE age NOT IN (SELECT singer_id FROM concert)",
        "SELECT cid FROM concert WHERE singer_id IN (SELECT id FROM singer)",
        // Subquery with its own error, evaluated lazily per row.
        "SELECT name FROM singer WHERE age IN (SELECT nope FROM concert)",
        "SELECT name FROM singer WHERE 1 = 0 AND age IN (SELECT nope FROM concert)",
        // Arithmetic type errors: message parity matters to the repair RNG.
        "SELECT name + 1 FROM singer",
        "SELECT net / 0 FROM singer",
        "SELECT net / 0.0 FROM singer",
        // LIKE edge patterns.
        "SELECT name FROM singer WHERE name LIKE '%'",
        "SELECT name FROM singer WHERE name LIKE ''",
        "SELECT name FROM singer WHERE country LIKE 'u__'",
        // BETWEEN with NULL bounds.
        "SELECT name FROM singer WHERE age BETWEEN NULL AND 40",
        // Case-insensitive table lookup.
        "SELECT NAME FROM SINGER WHERE COUNTRY = 'usa'",
    ];
    for sql in cases {
        if let Err(e) = check(&db, &pdb, sql) {
            panic!("directed case failed: {e}");
        }
    }
}

/// The compiled path is deterministic: two separately prepared databases
/// produce byte-identical results (symbol assignment must never leak into
/// observable output).
#[test]
fn prepared_execution_is_deterministic() {
    let db = diff_db();
    let pdb1 = PreparedDb::prepare(&db);
    let pdb2 = PreparedDb::prepare(&db);
    let mut state = 0xD1FFu64;
    for _ in 0..64 {
        let sql = any_query(&mut state);
        let a = execute_prepared(&pdb1, &sql);
        let b = execute_prepared(&pdb2, &sql);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "nondeterministic on: {sql}");
    }
}
