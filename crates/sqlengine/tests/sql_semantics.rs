//! SQL semantics suite: NULL handling, aggregate edge cases, multi-key
//! ordering, nested subqueries — behaviors EX comparison depends on.

use dbcopilot_sqlengine::{
    execute, execution_match, DataType, Database, DatabaseSchema, TableSchema, Value,
};

fn db() -> Database {
    let mut schema = DatabaseSchema::new("sem");
    schema.add_table(
        TableSchema::new("items")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("price", DataType::Float)
            .column("category", DataType::Text)
            .primary(0),
    );
    schema.add_table(TableSchema::new("empty").column("x", DataType::Int));
    let mut db = Database::from_schema(&schema);
    let rows: Vec<(i64, &str, Option<f64>, Option<&str>)> = vec![
        (1, "apple", Some(1.5), Some("fruit")),
        (2, "beet", Some(0.5), Some("veg")),
        (3, "corn", None, Some("veg")),
        (4, "date", Some(8.0), None),
        (5, "fig", Some(1.5), Some("fruit")),
    ];
    for (id, name, price, cat) in rows {
        db.insert(
            "items",
            vec![
                Value::Int(id),
                Value::Text(name.into()),
                price.map(Value::Float).unwrap_or(Value::Null),
                cat.map(|c| Value::Text(c.into())).unwrap_or(Value::Null),
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn null_excluded_from_comparisons() {
    let d = db();
    // corn has NULL price: excluded from both sides of the split
    let above = execute(&d, "SELECT name FROM items WHERE price > 1.0").unwrap();
    let below = execute(&d, "SELECT name FROM items WHERE price <= 1.0").unwrap();
    assert_eq!(above.rows.len() + below.rows.len(), 4);
}

#[test]
fn aggregates_skip_nulls() {
    let d = db();
    let rs = execute(&d, "SELECT COUNT(price), AVG(price) FROM items").unwrap();
    assert!(rs.rows[0][0].sql_eq(&Value::Int(4)));
    assert!(rs.rows[0][1].sql_eq(&Value::Float((1.5 + 0.5 + 8.0 + 1.5) / 4.0)));
}

#[test]
fn aggregates_over_empty_table() {
    let d = db();
    let rs = execute(&d, "SELECT COUNT(*), SUM(x), MIN(x) FROM empty").unwrap();
    assert!(rs.rows[0][0].sql_eq(&Value::Int(0)));
    assert!(rs.rows[0][1].is_null(), "SUM of nothing is NULL");
    assert!(rs.rows[0][2].is_null(), "MIN of nothing is NULL");
}

#[test]
fn group_by_treats_null_as_its_own_group() {
    let d = db();
    let rs = execute(&d, "SELECT category, COUNT(*) FROM items GROUP BY category").unwrap();
    assert_eq!(rs.rows.len(), 3, "fruit, veg, NULL: {:?}", rs.rows);
}

#[test]
fn is_null_filters() {
    let d = db();
    let rs = execute(&d, "SELECT name FROM items WHERE price IS NULL").unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert!(rs.rows[0][0].sql_eq(&Value::Text("corn".into())));
    let rs = execute(&d, "SELECT name FROM items WHERE category IS NOT NULL").unwrap();
    assert_eq!(rs.rows.len(), 4);
}

#[test]
fn multi_key_order_by() {
    let d = db();
    // price ASC with NULLs first (total order), then name DESC as tiebreak
    let rs = execute(&d, "SELECT name FROM items ORDER BY price ASC, name DESC").unwrap();
    let names: Vec<String> = rs
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Text(s) => s.clone(),
            v => v.to_string(),
        })
        .collect();
    assert_eq!(names[0], "corn", "NULL price sorts first: {names:?}");
    // apple and fig tie at 1.5 → name DESC puts fig before apple
    let fig = names.iter().position(|n| n == "fig").unwrap();
    let apple = names.iter().position(|n| n == "apple").unwrap();
    assert!(fig < apple, "{names:?}");
}

#[test]
fn nested_subqueries_two_deep() {
    let d = db();
    let rs = execute(
        &d,
        "SELECT name FROM items WHERE price = \
         (SELECT MAX(price) FROM items WHERE id IN (SELECT id FROM items WHERE category = 'fruit'))",
    )
    .unwrap();
    // max fruit price is 1.5 → apple and fig
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn scalar_subquery_empty_is_null() {
    let d = db();
    let rs =
        execute(&d, "SELECT name FROM items WHERE price = (SELECT MAX(x) FROM empty)").unwrap();
    assert!(rs.rows.is_empty(), "comparison with NULL matches nothing");
}

#[test]
fn distinct_with_nulls() {
    let d = db();
    let rs = execute(&d, "SELECT DISTINCT category FROM items").unwrap();
    assert_eq!(rs.rows.len(), 3);
}

#[test]
fn limit_zero_and_overlarge() {
    let d = db();
    assert!(execute(&d, "SELECT name FROM items LIMIT 0").unwrap().rows.is_empty());
    assert_eq!(execute(&d, "SELECT name FROM items LIMIT 99").unwrap().rows.len(), 5);
}

#[test]
fn ex_match_is_case_insensitive_on_keywords_not_values() {
    let d = db();
    assert!(execution_match(
        &d,
        "select name from items where category = 'fruit'",
        "SELECT name FROM items WHERE category = 'fruit'"
    )
    .is_match());
    assert!(!execution_match(
        &d,
        "SELECT name FROM items WHERE category = 'fruit'",
        "SELECT name FROM items WHERE category = 'FRUIT'"
    )
    .is_match());
}

#[test]
fn arithmetic_in_projections_and_filters() {
    let d = db();
    let rs =
        execute(&d, "SELECT name FROM items WHERE price * 2 > 3.0 AND price + 1 < 10").unwrap();
    assert_eq!(rs.rows.len(), 1); // date (8.0)
}

#[test]
fn between_inclusive_bounds() {
    let d = db();
    let rs = execute(&d, "SELECT name FROM items WHERE price BETWEEN 0.5 AND 1.5").unwrap();
    assert_eq!(rs.rows.len(), 3); // beet, apple, fig
}

#[test]
fn not_like_and_wildcards() {
    let d = db();
    let rs = execute(&d, "SELECT name FROM items WHERE name NOT LIKE '%e%'").unwrap();
    // apple(e) beet(e) corn date(e) fig → corn, fig
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn having_with_aggregate_on_other_column() {
    let d = db();
    let rs = execute(&d, "SELECT category FROM items GROUP BY category HAVING AVG(price) > 1.0")
        .unwrap();
    // fruit avg 1.5 ✓; veg avg (0.5, NULL skipped) = 0.5 ✗; NULL category avg 8.0 ✓
    assert_eq!(rs.rows.len(), 2);
}
