//! SQL tokenizer.

use crate::error::EngineError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are detected by the parser).
    Ident(String),
    /// Quoted identifier (`"name"` or `` `name` ``) — never a keyword.
    QuotedIdent(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Punctuation and operators.
    Symbol(Sym),
}

/// Operator / punctuation symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

/// Tokenize a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, EngineError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '.' => {
                tokens.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            ';' => {
                tokens.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    // line comment
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Symbol(Sym::Minus));
                    i += 1;
                }
            }
            '/' => {
                tokens.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Symbol(Sym::NotEq));
                    i += 2;
                } else {
                    return Err(EngineError::Lex {
                        pos: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Symbol(Sym::LtEq));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Symbol(Sym::NotEq));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Symbol(Sym::GtEq));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' | '"' | '`' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                let mut out = String::new();
                let mut closed = false;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj == quote {
                        // doubled quote escapes itself
                        if j + 1 < bytes.len() && bytes[j + 1] as char == quote {
                            out.push(quote);
                            j += 2;
                            continue;
                        }
                        closed = true;
                        break;
                    }
                    out.push(cj);
                    j += 1;
                }
                if !closed {
                    return Err(EngineError::Lex { pos: i, message: "unterminated string".into() });
                }
                if quote == '\'' {
                    tokens.push(Token::Str(out));
                } else {
                    tokens.push(Token::QuotedIdent(out));
                }
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || (bytes[i] == b'.'
                            && i + 1 < bytes.len()
                            && (bytes[i + 1] as char).is_ascii_digit()))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| EngineError::Lex {
                        pos: start,
                        message: format!("bad float literal {text:?}"),
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|_| EngineError::Lex {
                        pos: start,
                        message: format!("bad int literal {text:?}"),
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(EngineError::Lex {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_select() {
        let toks = lex("SELECT name FROM singer WHERE age >= 30").unwrap();
        assert_eq!(toks.len(), 8);
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[5], Token::Ident("age".into()));
        assert_eq!(toks[6], Token::Symbol(Sym::GtEq));
        assert_eq!(toks[7], Token::Int(30));
    }

    #[test]
    fn lex_strings_with_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn lex_quoted_identifiers() {
        let toks = lex("\"weird name\" `another`").unwrap();
        assert_eq!(
            toks,
            vec![Token::QuotedIdent("weird name".into()), Token::QuotedIdent("another".into())]
        );
    }

    #[test]
    fn lex_numbers() {
        let toks = lex("1 2.5 100").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Float(2.5), Token::Int(100)]);
    }

    #[test]
    fn lex_not_eq_variants() {
        assert_eq!(lex("<>").unwrap(), vec![Token::Symbol(Sym::NotEq)]);
        assert_eq!(lex("!=").unwrap(), vec![Token::Symbol(Sym::NotEq)]);
    }

    #[test]
    fn lex_comments_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n , 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(matches!(lex("'oops"), Err(EngineError::Lex { .. })));
    }

    #[test]
    fn lex_dotted_name() {
        let toks = lex("db.table").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Token::Symbol(Sym::Dot));
    }
}
