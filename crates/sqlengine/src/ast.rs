//! Abstract syntax tree for the supported SQL subset.
//!
//! The subset covers what the synthetic workloads and the paper's example
//! queries need: single-`SELECT` statements with inner joins, WHERE, GROUP
//! BY/HAVING, ORDER BY, LIMIT, DISTINCT, aggregates, and uncorrelated scalar
//! / IN subqueries.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// Expressions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference, optionally qualified: `[table.]column`.
    Column {
        table: Option<String>,
        column: String,
    },
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    Neg(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr LIKE 'pattern'` with `%`/`_` wildcards.
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    /// `expr IN (v1, v2, …)` or `expr IN (SELECT …)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<Select>,
        negated: bool,
    },
    /// `(SELECT …)` producing a single value.
    ScalarSubquery(Box<Select>),
    /// Aggregate call; `arg = None` encodes `COUNT(*)`.
    Aggregate {
        func: AggFunc,
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, column: name.to_string() }
    }

    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column { table: Some(table.to_string()), column: name.to_string() }
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(l), right: Box::new(r) }
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) | Expr::Neg(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => expr.contains_aggregate(),
            Expr::Between { expr, low, high } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::ScalarSubquery(_) => false,
        }
    }

    /// Collect all referenced column names (unqualified) into `out`.
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column { column, .. } => out.push(column),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_columns(out),
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::Between { expr, low, high } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::InSubquery { expr, subquery, .. } => {
                expr.collect_columns(out);
                subquery.collect_columns(out);
            }
            Expr::ScalarSubquery(s) => s.collect_columns(out),
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
        }
    }
}

/// One projected column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Projection {
    /// `SELECT *`
    Wildcard,
    Expr {
        expr: Expr,
        alias: Option<String>,
    },
}

/// A table reference in FROM/JOIN with an optional alias.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRef {
    /// Optional database qualifier (`db.table`), checked against the target
    /// database at execution time.
    pub database: Option<String>,
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// Name the reference binds to in scope: alias if present, else table.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// An inner join clause.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Join {
    pub table: TableRef,
    pub on: Expr,
}

/// ORDER BY direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortDir {
    Asc,
    Desc,
}

/// One ORDER BY key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrderKey {
    pub expr: Expr,
    pub dir: SortDir,
}

/// A SELECT statement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Select {
    pub distinct: bool,
    pub projections: Vec<Projection>,
    pub from: TableRef,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
}

impl Select {
    /// All table names referenced (FROM, JOINs, and subqueries).
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        out.push(self.from.table.to_ascii_lowercase());
        for j in &self.joins {
            out.push(j.table.table.to_ascii_lowercase());
        }
        let mut visit = |e: &Expr| collect_tables_expr(e, out);
        if let Some(w) = &self.where_clause {
            visit(w);
        }
        if let Some(h) = &self.having {
            visit(h);
        }
        for p in &self.projections {
            if let Projection::Expr { expr, .. } = p {
                visit(expr);
            }
        }
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        for p in &self.projections {
            if let Projection::Expr { expr, .. } = p {
                expr.collect_columns(out);
            }
        }
        for j in &self.joins {
            j.on.collect_columns(out);
        }
        if let Some(w) = &self.where_clause {
            w.collect_columns(out);
        }
        for g in &self.group_by {
            g.collect_columns(out);
        }
        if let Some(h) = &self.having {
            h.collect_columns(out);
        }
        for o in &self.order_by {
            o.expr.collect_columns(out);
        }
    }

    /// All referenced column names across the statement (including
    /// subqueries), lowercased and deduplicated.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut raw = Vec::new();
        self.collect_columns(&mut raw);
        let mut out: Vec<String> = raw.iter().map(|c| c.to_ascii_lowercase()).collect();
        let mut subs = Vec::new();
        if let Some(w) = &self.where_clause {
            find_subqueries(w, &mut subs);
        }
        if let Some(h) = &self.having {
            find_subqueries(h, &mut subs);
        }
        for s in subs {
            out.extend(s.referenced_columns());
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Collect nested subqueries of an expression.
fn find_subqueries<'a>(e: &'a Expr, out: &mut Vec<&'a Select>) {
    match e {
        Expr::InSubquery { subquery, .. } => out.push(subquery),
        Expr::ScalarSubquery(s) => out.push(s),
        Expr::Binary { left, right, .. } => {
            find_subqueries(left, out);
            find_subqueries(right, out);
        }
        Expr::Not(x) | Expr::Neg(x) => find_subqueries(x, out),
        Expr::Between { expr, low, high } => {
            find_subqueries(expr, out);
            find_subqueries(low, out);
            find_subqueries(high, out);
        }
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => find_subqueries(expr, out),
        Expr::InList { expr, list, .. } => {
            find_subqueries(expr, out);
            for e in list {
                find_subqueries(e, out);
            }
        }
        _ => {}
    }
}

fn collect_tables_expr(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Binary { left, right, .. } => {
            collect_tables_expr(left, out);
            collect_tables_expr(right, out);
        }
        Expr::Not(x) | Expr::Neg(x) => collect_tables_expr(x, out),
        Expr::Between { expr, low, high } => {
            collect_tables_expr(expr, out);
            collect_tables_expr(low, out);
            collect_tables_expr(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_tables_expr(expr, out);
            for e in list {
                collect_tables_expr(e, out);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            collect_tables_expr(expr, out);
            subquery.collect_tables(out);
        }
        Expr::ScalarSubquery(s) => s.collect_tables(out),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => collect_tables_expr(expr, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_parse() {
        assert_eq!(AggFunc::parse("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("MAX"), Some(AggFunc::Max));
        assert_eq!(AggFunc::parse("median"), None);
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let e = Expr::bin(
            BinOp::Gt,
            Expr::Aggregate { func: AggFunc::Count, arg: None, distinct: false },
            Expr::lit(Value::Int(2)),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef { database: None, table: "singer".into(), alias: Some("s".into()) };
        assert_eq!(t.binding(), "s");
        let t2 = TableRef { database: None, table: "singer".into(), alias: None };
        assert_eq!(t2.binding(), "singer");
    }
}
