//! Engine error types.

use crate::value::DataType;

/// Errors from parsing or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexing failed at a byte offset.
    Lex { pos: usize, message: String },
    /// Parsing failed.
    Parse { message: String },
    /// A referenced table does not exist in the target database.
    UnknownTable { table: String },
    /// A referenced column cannot be resolved.
    UnknownColumn { column: String },
    /// A column name resolves against more than one table in scope.
    AmbiguousColumn { column: String },
    /// A row had the wrong number of values.
    Arity { table: String, expected: usize, got: usize },
    /// A value did not fit the declared column type.
    TypeMismatch { table: String, column: String, expected: DataType },
    /// Runtime evaluation error (bad operand types, div by zero, …).
    Eval { message: String },
    /// A scalar subquery returned a non-1×1 result.
    ScalarSubquery { rows: usize, cols: usize },
    /// SQL feature outside the supported subset.
    Unsupported { feature: String },
    /// The query referenced a database other than the one it ran against.
    WrongDatabase { expected: String, got: String },
}

impl EngineError {
    /// The table/column identifier this error calls out, if any — what an
    /// execution-feedback repair prompt tells the generator to avoid.
    pub fn offending_identifier(&self) -> Option<&str> {
        match self {
            EngineError::UnknownTable { table } => Some(table),
            EngineError::UnknownColumn { column } | EngineError::AmbiguousColumn { column } => {
                Some(column)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            EngineError::Parse { message } => write!(f, "parse error: {message}"),
            EngineError::UnknownTable { table } => write!(f, "unknown table {table:?}"),
            EngineError::UnknownColumn { column } => write!(f, "unknown column {column:?}"),
            EngineError::AmbiguousColumn { column } => write!(f, "ambiguous column {column:?}"),
            EngineError::Arity { table, expected, got } => {
                write!(f, "table {table:?} expects {expected} values, got {got}")
            }
            EngineError::TypeMismatch { table, column, expected } => {
                write!(f, "column {table}.{column} expects {expected}")
            }
            EngineError::Eval { message } => write!(f, "evaluation error: {message}"),
            EngineError::ScalarSubquery { rows, cols } => {
                write!(f, "scalar subquery returned {rows}x{cols} result")
            }
            EngineError::Unsupported { feature } => write!(f, "unsupported SQL: {feature}"),
            EngineError::WrongDatabase { expected, got } => {
                write!(f, "query targets database {got:?} but ran against {expected:?}")
            }
        }
    }
}

impl std::error::Error for EngineError {}
