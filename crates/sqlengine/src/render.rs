//! SQL rendering: turn an AST back into SQL text.
//!
//! Round-trips with the parser (`parse(render(ast))` is semantically
//! identical), which the cross-crate property tests verify. Used by tools
//! that manipulate queries programmatically and by diagnostics.

use std::fmt::Write;

use crate::ast::{BinOp, Expr, OrderKey, Projection, Select, SortDir, TableRef};
use crate::value::Value;

/// Render a SELECT statement as SQL text.
pub fn render_select(sel: &Select) -> String {
    let mut out = String::from("SELECT ");
    if sel.distinct {
        out.push_str("DISTINCT ");
    }
    let projs: Vec<String> = sel.projections.iter().map(render_projection).collect();
    out.push_str(&projs.join(", "));
    out.push_str(" FROM ");
    out.push_str(&render_table_ref(&sel.from));
    for j in &sel.joins {
        write!(out, " JOIN {} ON {}", render_table_ref(&j.table), render_expr(&j.on)).unwrap();
    }
    if let Some(w) = &sel.where_clause {
        write!(out, " WHERE {}", render_expr(w)).unwrap();
    }
    if !sel.group_by.is_empty() {
        let keys: Vec<String> = sel.group_by.iter().map(render_expr).collect();
        write!(out, " GROUP BY {}", keys.join(", ")).unwrap();
    }
    if let Some(h) = &sel.having {
        write!(out, " HAVING {}", render_expr(h)).unwrap();
    }
    if !sel.order_by.is_empty() {
        let keys: Vec<String> = sel.order_by.iter().map(render_order_key).collect();
        write!(out, " ORDER BY {}", keys.join(", ")).unwrap();
    }
    if let Some(n) = sel.limit {
        write!(out, " LIMIT {n}").unwrap();
    }
    out
}

fn render_projection(p: &Projection) -> String {
    match p {
        Projection::Wildcard => "*".to_string(),
        Projection::Expr { expr, alias: Some(a) } => format!("{} AS {}", render_expr(expr), a),
        Projection::Expr { expr, alias: None } => render_expr(expr),
    }
}

fn render_table_ref(t: &TableRef) -> String {
    let base = match &t.database {
        Some(db) => format!("{db}.{}", t.table),
        None => t.table.clone(),
    };
    match &t.alias {
        Some(a) => format!("{base} AS {a}"),
        None => base,
    }
}

fn render_order_key(k: &OrderKey) -> String {
    let dir = match k.dir {
        SortDir::Asc => "ASC",
        SortDir::Desc => "DESC",
    };
    format!("{} {}", render_expr(&k.expr), dir)
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

/// Render an expression (fully parenthesized where precedence matters).
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Column { table: Some(t), column } => format!("{t}.{column}"),
        Expr::Column { table: None, column } => column.clone(),
        Expr::Literal(v) => render_value(v),
        Expr::Binary { op, left, right } => {
            let l = render_expr(left);
            let r = render_expr(right);
            match op {
                BinOp::And | BinOp::Or => format!("({l} {op} {r})"),
                _ => format!("({l} {op} {r})"),
            }
        }
        Expr::Not(x) => format!("NOT ({})", render_expr(x)),
        Expr::Neg(x) => format!("-({})", render_expr(x)),
        Expr::IsNull { expr, negated } => {
            format!("{} IS {}NULL", render_expr(expr), if *negated { "NOT " } else { "" })
        }
        Expr::Like { expr, pattern, negated } => format!(
            "{} {}LIKE '{}'",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            pattern.replace('\'', "''")
        ),
        Expr::Between { expr, low, high } => {
            format!("{} BETWEEN {} AND {}", render_expr(expr), render_expr(low), render_expr(high))
        }
        Expr::InList { expr, list, negated } => {
            let items: Vec<String> = list.iter().map(render_expr).collect();
            format!(
                "{} {}IN ({})",
                render_expr(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::InSubquery { expr, subquery, negated } => format!(
            "{} {}IN ({})",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_select(subquery)
        ),
        Expr::ScalarSubquery(s) => format!("({})", render_select(s)),
        Expr::Aggregate { func, arg: None, .. } => format!("{func}(*)"),
        Expr::Aggregate { func, arg: Some(a), distinct } => {
            format!("{func}({}{})", if *distinct { "DISTINCT " } else { "" }, render_expr(a))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn roundtrip(sql: &str) -> String {
        let ast = parse_select(sql).expect("parse input");
        let rendered = render_select(&ast);
        parse_select(&rendered).unwrap_or_else(|e| panic!("reparse {rendered:?}: {e}"));
        rendered
    }

    #[test]
    fn roundtrip_simple() {
        let r = roundtrip("SELECT name FROM singer WHERE age > 30");
        assert!(r.contains("WHERE (age > 30)"));
    }

    #[test]
    fn roundtrip_join_group() {
        roundtrip(
            "SELECT s.name, COUNT(*) AS n FROM singer AS s \
             JOIN concert AS c ON s.id = c.id \
             WHERE c.year = 2014 GROUP BY s.name HAVING COUNT(*) > 2 \
             ORDER BY n DESC LIMIT 3",
        );
    }

    #[test]
    fn roundtrip_subqueries() {
        roundtrip(
            "SELECT name FROM t WHERE x IN (SELECT y FROM u) \
             AND z = (SELECT MAX(z) FROM t)",
        );
    }

    #[test]
    fn roundtrip_escaping() {
        let r = roundtrip("SELECT name FROM t WHERE a = 'it''s'");
        assert!(r.contains("'it''s'"));
    }

    #[test]
    fn roundtrip_distinct_between_like() {
        roundtrip(
            "SELECT DISTINCT a FROM t WHERE b BETWEEN 1 AND 5 AND name LIKE '%x%' \
             AND c IS NOT NULL AND d NOT IN (1, 2)",
        );
    }

    #[test]
    fn rendered_sql_executes_identically() {
        use crate::schema::{DatabaseSchema, TableSchema};
        use crate::storage::Database;
        use crate::value::DataType;
        let mut schema = DatabaseSchema::new("d");
        schema.add_table(
            TableSchema::new("t").column("a", DataType::Int).column("b", DataType::Text),
        );
        let mut db = Database::from_schema(&schema);
        for i in 0..10 {
            db.insert("t", vec![Value::Int(i), Value::Text(format!("x{i}"))]).unwrap();
        }
        let sql = "SELECT b FROM t WHERE a > 4 ORDER BY b DESC LIMIT 3";
        let rendered = render_select(&parse_select(sql).unwrap());
        assert!(crate::compare::execution_match(&db, sql, &rendered).is_match());
    }
}
