//! String interning for the compiled execution path.
//!
//! A [`PreparedDb`](crate::compile::PreparedDb) interns every `Value::Text`
//! payload (and each text literal found in a query) once, so the run phase
//! carries `Symbol`s + shared `Arc<str>` payloads instead of owned
//! `String`s: equality between two interned texts is a single integer
//! compare, cloning a text cell is a refcount bump, and the original bytes
//! stay reachable for ordering, `LIKE`, and result materialization.

use std::collections::HashMap;
use std::num::NonZeroU32;
use std::sync::Arc;

/// A handle to an interned string. Two symbols from the *same* interner
/// are equal iff the strings they name are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(NonZeroU32);

impl Symbol {
    fn new(index: usize) -> Symbol {
        // ids start at 1 so Option<Symbol> stays 4 bytes via the niche
        Symbol(NonZeroU32::new(u32::try_from(index + 1).expect("interner overflow")).unwrap())
    }

    /// Index into the interner's string table.
    pub fn index(self) -> usize {
        self.0.get() as usize - 1
    }
}

/// Append-only string table with hash-consing. Symbol assignment depends
/// only on interning order, which the prepare phase keeps deterministic
/// (tables in storage order, cells in row-major order); symbol *values*
/// never influence query results, only the speed of equality checks.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Arc<str>, Symbol>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol and the shared payload.
    pub fn intern(&mut self, s: &str) -> (Symbol, Arc<str>) {
        if let Some((arc, sym)) = self.map.get_key_value(s) {
            return (*sym, Arc::clone(arc));
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Symbol::new(self.strings.len());
        self.strings.push(Arc::clone(&arc));
        self.map.insert(Arc::clone(&arc), sym);
        (sym, arc)
    }

    /// Find an already-interned string without inserting (the compile
    /// phase uses this for query literals: a literal absent from the
    /// database can still match another literal by content).
    pub fn lookup(&self, s: &str) -> Option<(Symbol, Arc<str>)> {
        self.map.get_key_value(s).map(|(arc, sym)| (*sym, Arc::clone(arc)))
    }

    /// The string a symbol names.
    pub fn resolve(&self, sym: Symbol) -> &Arc<str> {
        &self.strings[sym.index()]
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_resolves() {
        let mut i = Interner::new();
        let (a, arc_a) = i.intern("north");
        let (b, arc_b) = i.intern("north");
        let (c, _) = i.intern("south");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&arc_a, &arc_b));
        assert_ne!(a, c);
        assert_eq!(i.resolve(a).as_ref(), "north");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut i = Interner::new();
        i.intern("x");
        assert!(i.lookup("x").is_some());
        assert!(i.lookup("y").is_none());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn option_symbol_is_compact() {
        assert_eq!(std::mem::size_of::<Option<Symbol>>(), 4);
    }
}
