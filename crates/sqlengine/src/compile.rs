//! Compiled query execution: compile once, run allocation-lean.
//!
//! The interpreter in [`crate::exec`] resolves column names per row, clones
//! whole tables up front, and materializes full cross-products for joins.
//! This module splits execution into a **compile** phase — every column
//! reference becomes a flat `(slot, column)` index, text payloads are
//! interned through the per-database [`Interner`], equality join predicates
//! are classified for hash joins — and a **run** phase that carries joined
//! rows as index tuples into the base tables until projection forces
//! materialization, with group/DISTINCT keys in flat per-query arenas.
//!
//! Semantics are mirrored from the interpreter exactly, including error
//! *messages* and error *timing*: the interpreter resolves columns lazily
//! per row (so `SELECT bogus FROM t WHERE false` succeeds), which compiled
//! execution reproduces with deferred `CExpr::Error` nodes that only fail
//! when actually evaluated. The differential proptest suite in
//! `tests/differential.rs` holds the two paths to identical `ResultSet`s
//! and identical errors.
//!
//! One deliberate non-goal: the interpreter keys groups on a joined string
//! (`canon_row`), where a text value containing `\u{1f}` can collide across
//! column boundaries. Compiled execution keys on structured `CKey` slices
//! and does not reproduce that collision.

use std::cell::OnceCell;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::sync::OnceLock;

use crate::ast::{AggFunc, BinOp, Expr, Projection, Select, SortDir, TableRef};
use crate::error::EngineError;
use crate::exec::ResultSet;
use crate::intern::{Interner, Symbol};
use crate::parser::parse_select;
use crate::storage::{Database, Store};
use crate::value::Value;

// ---------------------------------------------------------------------------
// Compiled values
// ---------------------------------------------------------------------------

/// A runtime value in the compiled engine. Mirrors [`Value`] except that
/// text carries a shared `Arc<str>` payload plus its interner symbol when
/// the string is known to the database: two interned texts compare by a
/// single integer compare, and cloning is a refcount bump.
#[derive(Debug, Clone)]
pub enum CVal {
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    Text(Option<Symbol>, Arc<str>),
}

impl CVal {
    pub fn is_null(&self) -> bool {
        matches!(self, CVal::Null)
    }

    /// Mirror of [`Value::as_f64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            CVal::Int(i) => Some(*i as f64),
            CVal::Float(f) => Some(*f),
            CVal::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Mirror of [`Value::sql_eq`], with a symbol fast path for interned
    /// text: equal symbols from the same interner mean equal strings.
    pub fn sql_eq(&self, other: &CVal) -> bool {
        match (self, other) {
            (CVal::Null, _) | (_, CVal::Null) => false,
            (CVal::Text(sa, a), CVal::Text(sb, b)) => match (sa, sb) {
                (Some(x), Some(y)) => x == y,
                _ => Arc::ptr_eq(a, b) || a == b,
            },
            (CVal::Bool(a), CVal::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }

    /// Mirror of [`Value::sql_cmp`].
    pub fn sql_cmp(&self, other: &CVal) -> Option<Ordering> {
        match (self, other) {
            (CVal::Null, _) | (_, CVal::Null) => None,
            (CVal::Text(_, a), CVal::Text(_, b)) => {
                if Arc::ptr_eq(a, b) {
                    Some(Ordering::Equal)
                } else {
                    Some(a.cmp(b))
                }
            }
            (CVal::Bool(a), CVal::Bool(b)) => Some(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }

    /// Mirror of [`Value::total_cmp`]: NULL < Bool < numbers < Text.
    pub fn total_cmp(&self, other: &CVal) -> Ordering {
        fn rank(v: &CVal) -> u8 {
            match v {
                CVal::Null => 0,
                CVal::Bool(_) => 1,
                CVal::Int(_) | CVal::Float(_) => 2,
                CVal::Text(..) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (CVal::Null, CVal::Null) => Ordering::Equal,
            (CVal::Bool(a), CVal::Bool(b)) => a.cmp(b),
            (CVal::Text(_, a), CVal::Text(_, b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            _ => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.partial_cmp(&b).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// Mirror of [`Value::is_truthy`].
    pub fn is_truthy(&self) -> bool {
        match self {
            CVal::Bool(b) => *b,
            CVal::Int(i) => *i != 0,
            CVal::Float(f) => *f != 0.0,
            _ => false,
        }
    }
}

/// Display mirrors [`Value`]'s Display byte-for-byte: eval error messages
/// embed operand values, and the repair loop's RNG stream derives from the
/// error text, so the two engines must render identically.
impl std::fmt::Display for CVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CVal::Null => write!(f, "NULL"),
            CVal::Int(i) => write!(f, "{i}"),
            CVal::Float(v) => write!(f, "{v}"),
            CVal::Text(_, s) => write!(f, "'{s}'"),
            CVal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Intern a stored value into the prepare-phase representation.
fn cval_intern(v: &Value, interner: &mut Interner) -> CVal {
    match v {
        Value::Null => CVal::Null,
        Value::Int(i) => CVal::Int(*i),
        Value::Float(f) => CVal::Float(*f),
        Value::Bool(b) => CVal::Bool(*b),
        Value::Text(s) => {
            let (sym, arc) = interner.intern(s);
            CVal::Text(Some(sym), arc)
        }
    }
}

/// Convert a value from outside the database (query literal, subquery
/// result) without growing the interner: a string the database knows gets
/// its symbol, anything else stays content-compared.
fn cval_lookup(v: &Value, interner: &Interner) -> CVal {
    match v {
        Value::Null => CVal::Null,
        Value::Int(i) => CVal::Int(*i),
        Value::Float(f) => CVal::Float(*f),
        Value::Bool(b) => CVal::Bool(*b),
        Value::Text(s) => match interner.lookup(s) {
            Some((sym, arc)) => CVal::Text(Some(sym), arc),
            None => CVal::Text(None, Arc::from(s.as_str())),
        },
    }
}

fn cval_to_value(v: &CVal) -> Value {
    match v {
        CVal::Null => Value::Null,
        CVal::Int(i) => Value::Int(*i),
        CVal::Float(f) => Value::Float(*f),
        CVal::Bool(b) => Value::Bool(*b),
        CVal::Text(_, s) => Value::Text(s.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Canonical keys
// ---------------------------------------------------------------------------

/// Grouping / DISTINCT key with the same equivalence classes as the
/// interpreter's `canon_value` string — but hashable without formatting:
/// integral floats merge with ints (`5` groups with `5.0`), non-integral
/// floats key on their 9-digit rendering, text keys share the interned
/// payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CKey {
    Null,
    Bool(bool),
    Int(i64),
    Float(Box<str>),
    Text(Arc<str>),
}

pub(crate) fn ckey(v: &CVal) -> CKey {
    match v {
        CVal::Null => CKey::Null,
        CVal::Bool(b) => CKey::Bool(*b),
        CVal::Int(i) => CKey::Int(*i),
        CVal::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                CKey::Int(*f as i64)
            } else {
                CKey::Float(format!("{f:.9}").into())
            }
        }
        CVal::Text(_, s) => CKey::Text(Arc::clone(s)),
    }
}

/// Hash-join / IN-set key with the same equivalence classes as
/// [`Value::sql_eq`]: all numerics (bools included) collapse to f64 bits
/// with `-0.0` normalized, text keys by content. `None` means the value
/// can never compare equal to anything (NULL, NaN) and is excluded from
/// both build and probe sides.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum EqKey {
    Num(u64),
    Text(Arc<str>),
}

fn num_key(f: f64) -> Option<EqKey> {
    if f.is_nan() {
        return None;
    }
    let f = if f == 0.0 { 0.0 } else { f }; // -0.0 == 0.0 must share a bucket
    Some(EqKey::Num(f.to_bits()))
}

pub(crate) fn eq_key(v: &CVal) -> Option<EqKey> {
    match v {
        CVal::Null => None,
        CVal::Int(i) => num_key(*i as f64),
        CVal::Float(f) => num_key(*f),
        CVal::Bool(b) => num_key(if *b { 1.0 } else { 0.0 }),
        CVal::Text(_, s) => Some(EqKey::Text(Arc::clone(s))),
    }
}

fn value_eq_key(v: &Value, interner: &Interner) -> Option<EqKey> {
    eq_key(&cval_lookup(v, interner))
}

// ---------------------------------------------------------------------------
// Prepared databases
// ---------------------------------------------------------------------------

/// One table in prepared (interned, row-major flat) form.
#[derive(Debug, Clone)]
pub struct PreparedTable {
    name: String,
    columns: Vec<String>,
    cells: Vec<CVal>,
    width: usize,
    nrows: usize,
}

impl PreparedTable {
    #[inline]
    fn cell(&self, row: usize, col: usize) -> &CVal {
        &self.cells[row * self.width + col]
    }
}

/// A database in execution-ready form: every text payload interned once,
/// rows flattened. Build once with [`PreparedDb::prepare`] and reuse across
/// queries (the eval loops and the serving pipeline do), or let
/// [`execute_select_with`](crate::exec::execute_select_with) prepare just
/// the referenced tables for a one-shot query.
#[derive(Debug, Clone)]
pub struct PreparedDb {
    pub name: String,
    tables: Vec<PreparedTable>,
    interner: Interner,
}

impl PreparedDb {
    /// Prepare every table (deterministic: tables in storage order, cells
    /// row-major, so symbol assignment is reproducible).
    pub fn prepare(db: &Database) -> PreparedDb {
        Self::prepare_filtered(db, None)
    }

    /// Prepare only the tables a single statement references — the cheap
    /// path for one-shot execution. Lookup semantics stay identical to
    /// [`Database::table`] because every case-insensitive candidate of
    /// every referenced name is included, in storage order.
    pub fn for_select(db: &Database, sel: &Select) -> PreparedDb {
        let mut refs = Vec::new();
        collect_refs(sel, &mut refs);
        Self::prepare_filtered(db, Some(&refs))
    }

    fn prepare_filtered(db: &Database, refs: Option<&[String]>) -> PreparedDb {
        let mut interner = Interner::new();
        let mut tables = Vec::new();
        for (key, t) in &db.tables {
            if let Some(refs) = refs {
                if !refs.iter().any(|r| key.eq_ignore_ascii_case(r)) {
                    continue;
                }
            }
            interner.intern(key);
            let columns: Vec<String> = t.schema.columns.iter().map(|c| c.name.clone()).collect();
            for c in &columns {
                interner.intern(c);
            }
            let width = columns.len();
            let mut cells = Vec::with_capacity(t.rows.len() * width);
            for row in &t.rows {
                for v in row {
                    cells.push(cval_intern(v, &mut interner));
                }
            }
            tables.push(PreparedTable {
                name: key.clone(),
                columns,
                cells,
                width,
                nrows: t.rows.len(),
            });
        }
        PreparedDb { name: db.name.clone(), tables, interner }
    }

    /// Mirror of [`Database::table`]: exact name first, then the first
    /// case-insensitive match in storage order.
    fn lookup(&self, name: &str) -> Option<usize> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .or_else(|| self.tables.iter().position(|t| t.name.eq_ignore_ascii_case(name)))
    }
}

/// A [`Store`] paired with lazily-built [`PreparedDb`]s, one per database:
/// the first query against a database pays the prepare cost, later queries
/// (eval loops, repair rounds, served asks) reuse the interned tables.
#[derive(Debug, Default)]
pub struct PreparedStore {
    store: Store,
    prepared: std::collections::BTreeMap<String, OnceLock<PreparedDb>>,
}

impl Clone for PreparedStore {
    fn clone(&self) -> Self {
        // Prepared state is a cache; a clone re-prepares on demand.
        PreparedStore::new(self.store.clone())
    }
}

impl PreparedStore {
    pub fn new(store: Store) -> Self {
        let prepared = store.databases.keys().map(|k| (k.clone(), OnceLock::new())).collect();
        PreparedStore { store, prepared }
    }

    pub fn store(&self) -> &Store {
        &self.store
    }

    pub fn database(&self, name: &str) -> Option<&Database> {
        self.store.database(name)
    }

    /// The prepared form of a database, building it on first use.
    pub fn prepared(&self, name: &str) -> Option<&PreparedDb> {
        let cell = self.prepared.get(name)?;
        let db = self.store.database(name)?;
        Some(cell.get_or_init(|| PreparedDb::prepare(db)))
    }
}

/// Collect every table name a statement references (FROM, JOINs, and all
/// subqueries, including those in GROUP BY / ORDER BY positions, which
/// `Select::referenced_tables` skips). Names are kept verbatim so the
/// prepare filter can reproduce case-insensitive lookup exactly.
fn collect_refs(sel: &Select, out: &mut Vec<String>) {
    out.push(sel.from.table.clone());
    for j in &sel.joins {
        out.push(j.table.table.clone());
        collect_refs_expr(&j.on, out);
    }
    for p in &sel.projections {
        if let Projection::Expr { expr, .. } = p {
            collect_refs_expr(expr, out);
        }
    }
    if let Some(w) = &sel.where_clause {
        collect_refs_expr(w, out);
    }
    for g in &sel.group_by {
        collect_refs_expr(g, out);
    }
    if let Some(h) = &sel.having {
        collect_refs_expr(h, out);
    }
    for o in &sel.order_by {
        collect_refs_expr(&o.expr, out);
    }
}

fn collect_refs_expr(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Column { .. } | Expr::Literal(_) => {}
        Expr::Binary { left, right, .. } => {
            collect_refs_expr(left, out);
            collect_refs_expr(right, out);
        }
        Expr::Not(x) | Expr::Neg(x) => collect_refs_expr(x, out),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => collect_refs_expr(expr, out),
        Expr::Between { expr, low, high } => {
            collect_refs_expr(expr, out);
            collect_refs_expr(low, out);
            collect_refs_expr(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_refs_expr(expr, out);
            for e in list {
                collect_refs_expr(e, out);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            collect_refs_expr(expr, out);
            collect_refs(subquery, out);
        }
        Expr::ScalarSubquery(s) => collect_refs(s, out),
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                collect_refs_expr(a, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled form
// ---------------------------------------------------------------------------

/// A compiled expression: every surviving column reference is a flat
/// `(slot, table, column)` index; resolution failures become deferred
/// [`CExpr::Error`] nodes that only fail when evaluated, matching the
/// interpreter's lazy per-row resolution.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    Lit(CVal),
    Col { slot: u16, table: u16, col: u16, name: Box<str> },
    Error(EngineError),
    Binary { op: BinOp, left: Box<CExpr>, right: Box<CExpr> },
    Not(Box<CExpr>),
    Neg(Box<CExpr>),
    IsNull { expr: Box<CExpr>, negated: bool },
    Like { expr: Box<CExpr>, pattern: Vec<char>, negated: bool },
    Between { expr: Box<CExpr>, low: Box<CExpr>, high: Box<CExpr> },
    InList { expr: Box<CExpr>, list: Vec<CExpr>, negated: bool },
    InSub { expr: Box<CExpr>, sub: usize, negated: bool },
    ScalarSub(usize),
    Agg { func: AggFunc, arg: Option<Box<CExpr>>, distinct: bool },
}

/// One compiled join. `keys` is the maximal *prefix* of equality conjuncts
/// whose operands are provably error-free (bare columns / literals) with
/// one side on already-joined slots and the other on the new table — those
/// drive the hash table. The remaining conjuncts run as `residual` per
/// candidate pair, preserving the interpreter's left-to-right evaluation
/// order. When no usable prefix exists, `full_on` falls back to a nested
/// loop over the original predicate.
#[derive(Debug, Clone)]
pub(crate) struct CompiledJoin {
    table: usize,
    keys: Vec<(CExpr, CExpr)>,
    residual: Vec<CExpr>,
    full_on: Option<CExpr>,
}

#[derive(Debug, Clone)]
pub(crate) struct COrderKey {
    alias: Option<usize>,
    expr: CExpr,
    desc: bool,
}

/// A SELECT compiled against a [`PreparedDb`]: name resolution, literal
/// interning, join classification, and projection layout all done once.
#[derive(Debug, Clone)]
pub struct CompiledSelect {
    distinct: bool,
    limit: Option<usize>,
    from_table: usize,
    joins: Vec<CompiledJoin>,
    /// A JOIN clause that failed to bind (unknown table / wrong database).
    /// Earlier joins still run first — their evaluation errors outrank this
    /// one, exactly as in the interpreter.
    join_error: Option<EngineError>,
    filter: Option<CExpr>,
    aggregated: bool,
    group_by: Vec<CExpr>,
    having: Option<CExpr>,
    /// `SELECT *` under GROUP BY: unsupported, but only *after* group keys
    /// evaluate (the interpreter groups first, then rejects).
    wildcard_in_grouped: bool,
    columns: Vec<String>,
    projections: Vec<CExpr>,
    order_by: Vec<COrderKey>,
    subs: Vec<Result<CompiledSelect, EngineError>>,
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct CBinding {
    name: String,
    columns: Vec<String>,
    table: usize,
}

struct CScope {
    bindings: Vec<CBinding>,
}

impl CScope {
    fn bind(&mut self, pdb: &PreparedDb, tref: &TableRef) -> Result<(), EngineError> {
        if let Some(dbname) = &tref.database {
            if !dbname.eq_ignore_ascii_case(&pdb.name) {
                return Err(EngineError::WrongDatabase {
                    expected: pdb.name.clone(),
                    got: dbname.clone(),
                });
            }
        }
        let ti = pdb
            .lookup(&tref.table)
            .ok_or_else(|| EngineError::UnknownTable { table: tref.table.clone() })?;
        self.bindings.push(CBinding {
            name: tref.binding().to_string(),
            columns: pdb.tables[ti].columns.clone(),
            table: ti,
        });
        Ok(())
    }

    /// Mirror of the interpreter's `Scope::resolve`, returning binding slot
    /// + table + column indices instead of a flat row offset.
    fn resolve(
        &self,
        qualifier: Option<&str>,
        column: &str,
    ) -> Result<(u16, u16, u16), EngineError> {
        match qualifier {
            Some(q) => {
                let (slot, b) = self
                    .bindings
                    .iter()
                    .enumerate()
                    .find(|(_, b)| b.name.eq_ignore_ascii_case(q))
                    .ok_or_else(|| EngineError::UnknownTable { table: q.to_string() })?;
                let idx =
                    b.columns.iter().position(|c| c.eq_ignore_ascii_case(column)).ok_or_else(
                        || EngineError::UnknownColumn { column: format!("{q}.{column}") },
                    )?;
                Ok((slot as u16, b.table as u16, idx as u16))
            }
            None => {
                let mut found = None;
                for (slot, b) in self.bindings.iter().enumerate() {
                    if let Some(idx) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(column))
                    {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn { column: column.into() });
                        }
                        found = Some((slot as u16, b.table as u16, idx as u16));
                    }
                }
                found.ok_or_else(|| EngineError::UnknownColumn { column: column.into() })
            }
        }
    }
}

/// Compile a SELECT against a prepared database. The only hard errors are
/// FROM-clause binding failures (the interpreter fails those before any
/// evaluation); everything else is deferred into the compiled form so
/// error timing matches interpretation.
pub fn compile(pdb: &PreparedDb, sel: &Select) -> Result<CompiledSelect, EngineError> {
    let mut scope = CScope { bindings: Vec::new() };
    let mut subs = Vec::new();
    scope.bind(pdb, &sel.from)?;
    let from_table = scope.bindings[0].table;

    let mut joins = Vec::new();
    let mut join_error = None;
    for j in &sel.joins {
        if let Err(e) = scope.bind(pdb, &j.table) {
            join_error = Some(e);
            break;
        }
        let new_slot = scope.bindings.len() - 1;
        let table = scope.bindings[new_slot].table;
        joins.push(classify_join(&j.on, table, new_slot, &scope, pdb, &mut subs));
    }

    let aggregated = !sel.group_by.is_empty()
        || sel.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate(),
            Projection::Wildcard => false,
        })
        || sel.having.as_ref().is_some_and(Expr::contains_aggregate)
        || sel.order_by.iter().any(|o| o.expr.contains_aggregate());

    let mut columns = Vec::new();
    let mut projections = Vec::new();
    let mut wildcard_in_grouped = false;
    for (i, p) in sel.projections.iter().enumerate() {
        match p {
            Projection::Wildcard => {
                if aggregated {
                    wildcard_in_grouped = true;
                } else {
                    for (slot, b) in scope.bindings.iter().enumerate() {
                        for (ci, c) in b.columns.iter().enumerate() {
                            columns.push(c.clone());
                            projections.push(CExpr::Col {
                                slot: slot as u16,
                                table: b.table as u16,
                                col: ci as u16,
                                name: c.as_str().into(),
                            });
                        }
                    }
                }
            }
            Projection::Expr { expr, .. } => {
                columns.push(crate::exec::projection_name(p, i));
                projections.push(compile_expr(expr, &scope, pdb, &mut subs));
            }
        }
    }

    let alias_map = crate::exec::alias_exprs(sel);
    let mut order_by = Vec::with_capacity(sel.order_by.len());
    for k in &sel.order_by {
        let alias = match &k.expr {
            Expr::Column { table: None, column } => {
                alias_map.iter().find(|(a, _)| a.eq_ignore_ascii_case(column)).map(|(_, pos)| *pos)
            }
            _ => None,
        };
        order_by.push(COrderKey {
            alias,
            expr: compile_expr(&k.expr, &scope, pdb, &mut subs),
            desc: k.dir == SortDir::Desc,
        });
    }

    Ok(CompiledSelect {
        distinct: sel.distinct,
        limit: sel.limit,
        from_table,
        joins,
        join_error,
        filter: sel.where_clause.as_ref().map(|w| compile_expr(w, &scope, pdb, &mut subs)),
        aggregated,
        group_by: sel.group_by.iter().map(|g| compile_expr(g, &scope, pdb, &mut subs)).collect(),
        having: sel.having.as_ref().map(|h| compile_expr(h, &scope, pdb, &mut subs)),
        wildcard_in_grouped,
        columns,
        projections,
        order_by,
        subs,
    })
}

/// Which side of a join does a pure operand read from?
enum Side {
    Old,
    New,
    Any, // literal: constant on either side
}

/// Compile `e` only if it is provably error-free at evaluation time — a
/// bare resolved column or a literal. Anything else (arithmetic can raise,
/// unresolved columns defer errors) disqualifies the conjunct from hash
/// classification.
fn pure_operand(
    e: &Expr,
    new_slot: usize,
    scope: &CScope,
    pdb: &PreparedDb,
) -> Option<(CExpr, Side)> {
    match e {
        Expr::Literal(v) => Some((CExpr::Lit(cval_lookup(v, &pdb.interner)), Side::Any)),
        Expr::Column { table, column } => {
            let (slot, tbl, col) = scope.resolve(table.as_deref(), column).ok()?;
            let side = if (slot as usize) == new_slot { Side::New } else { Side::Old };
            Some((CExpr::Col { slot, table: tbl, col, name: column.as_str().into() }, side))
        }
        _ => None,
    }
}

/// Split an ON predicate into hash keys + residual conjuncts. Only a
/// *prefix* of equality conjuncts may become keys: a pair the hash probe
/// skips is exactly a pair where the interpreter's AND chain short-circuits
/// false before reaching any residual, so no evaluation (or error) is lost.
fn classify_join(
    on: &Expr,
    table: usize,
    new_slot: usize,
    scope: &CScope,
    pdb: &PreparedDb,
    subs: &mut Vec<Result<CompiledSelect, EngineError>>,
) -> CompiledJoin {
    let mut conjuncts = Vec::new();
    flatten_and(on, &mut conjuncts);
    let mut keys = Vec::new();
    let mut rest = 0;
    for (i, c) in conjuncts.iter().enumerate() {
        rest = i;
        let Expr::Binary { op: BinOp::Eq, left, right } = c else { break };
        let Some((cl, sl)) = pure_operand(left, new_slot, scope, pdb) else { break };
        let Some((cr, sr)) = pure_operand(right, new_slot, scope, pdb) else { break };
        // (old_expr, new_expr), literals bending to whichever side needs one
        match (sl, sr) {
            (Side::Old, Side::New) | (Side::Old, Side::Any) | (Side::Any, Side::New) => {
                keys.push((cl, cr))
            }
            (Side::New, Side::Old) | (Side::New, Side::Any) | (Side::Any, Side::Old) => {
                keys.push((cr, cl))
            }
            _ => break,
        }
        rest = i + 1;
    }
    if keys.is_empty() {
        return CompiledJoin {
            table,
            keys,
            residual: Vec::new(),
            full_on: Some(compile_expr(on, scope, pdb, subs)),
        };
    }
    let residual = conjuncts[rest..].iter().map(|c| compile_expr(c, scope, pdb, subs)).collect();
    CompiledJoin { table, keys, residual, full_on: None }
}

/// Flatten an AND tree in evaluation order (left subtree first).
fn flatten_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary { op: BinOp::And, left, right } = e {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e);
    }
}

fn compile_expr(
    e: &Expr,
    scope: &CScope,
    pdb: &PreparedDb,
    subs: &mut Vec<Result<CompiledSelect, EngineError>>,
) -> CExpr {
    let sub = |s: &Select, subs: &mut Vec<Result<CompiledSelect, EngineError>>| {
        subs.push(compile(pdb, s));
        subs.len() - 1
    };
    match e {
        Expr::Literal(v) => CExpr::Lit(cval_lookup(v, &pdb.interner)),
        Expr::Column { table, column } => match scope.resolve(table.as_deref(), column) {
            Ok((slot, tbl, col)) => {
                CExpr::Col { slot, table: tbl, col, name: column.as_str().into() }
            }
            Err(err) => CExpr::Error(err),
        },
        Expr::Binary { op, left, right } => CExpr::Binary {
            op: *op,
            left: Box::new(compile_expr(left, scope, pdb, subs)),
            right: Box::new(compile_expr(right, scope, pdb, subs)),
        },
        Expr::Not(x) => CExpr::Not(Box::new(compile_expr(x, scope, pdb, subs))),
        Expr::Neg(x) => CExpr::Neg(Box::new(compile_expr(x, scope, pdb, subs))),
        Expr::IsNull { expr, negated } => CExpr::IsNull {
            expr: Box::new(compile_expr(expr, scope, pdb, subs)),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => CExpr::Like {
            expr: Box::new(compile_expr(expr, scope, pdb, subs)),
            pattern: pattern.to_lowercase().chars().collect(),
            negated: *negated,
        },
        Expr::Between { expr, low, high } => CExpr::Between {
            expr: Box::new(compile_expr(expr, scope, pdb, subs)),
            low: Box::new(compile_expr(low, scope, pdb, subs)),
            high: Box::new(compile_expr(high, scope, pdb, subs)),
        },
        Expr::InList { expr, list, negated } => CExpr::InList {
            expr: Box::new(compile_expr(expr, scope, pdb, subs)),
            list: list.iter().map(|i| compile_expr(i, scope, pdb, subs)).collect(),
            negated: *negated,
        },
        Expr::InSubquery { expr, subquery, negated } => {
            let probe = Box::new(compile_expr(expr, scope, pdb, subs));
            CExpr::InSub { expr: probe, sub: sub(subquery, subs), negated: *negated }
        }
        Expr::ScalarSubquery(s) => CExpr::ScalarSub(sub(s, subs)),
        Expr::Aggregate { func, arg, distinct } => CExpr::Agg {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(compile_expr(a, scope, pdb, subs))),
            distinct: *distinct,
        },
    }
}

// ---------------------------------------------------------------------------
// Run phase
// ---------------------------------------------------------------------------

/// Group context during aggregation: the tuple arena plus the member tuple
/// indices of the current group.
#[derive(Clone, Copy)]
struct Grp<'a> {
    data: &'a [u32],
    width: usize,
    rows: &'a [u32],
}

/// Cached result of an uncorrelated subquery. The interpreter re-executes
/// subqueries per outer row; results are deterministic, so computing once
/// and replaying (value or error) per evaluation is observably identical.
enum SubCache {
    In(HashSet<EqKey>),
    Scalar(CVal),
}

struct Machine<'a> {
    pdb: &'a PreparedDb,
    c: &'a CompiledSelect,
    cache: Vec<OnceCell<Result<SubCache, EngineError>>>,
}

/// Execute a compiled SELECT against its prepared database.
pub fn run(pdb: &PreparedDb, c: &CompiledSelect) -> Result<ResultSet, EngineError> {
    let cache = c.subs.iter().map(|_| OnceCell::new()).collect();
    Machine { pdb, c, cache }.run()
}

impl<'a> Machine<'a> {
    fn run(&self) -> Result<ResultSet, EngineError> {
        let c = self.c;
        // Base scan: index tuples, no row clones.
        let mut width = 1usize;
        let mut data: Vec<u32> = (0..self.pdb.tables[c.from_table].nrows as u32).collect();
        for join in &c.joins {
            data = self.join(join, &data, width)?;
            width += 1;
        }
        if let Some(e) = &c.join_error {
            return Err(e.clone());
        }
        if let Some(f) = &c.filter {
            let mut kept = Vec::with_capacity(data.len());
            for tup in data.chunks_exact(width) {
                if self.eval(f, tup, None)?.is_truthy() {
                    kept.extend_from_slice(tup);
                }
            }
            data = kept;
        }
        if c.aggregated {
            self.run_grouped(&data, width)
        } else {
            self.run_flat(&data, width)
        }
    }

    /// Join the current tuple arena with one more table. Equality prefixes
    /// hash-partition on the smaller side; the output order is always the
    /// interpreter's nested-loop order (left-major, right rows ascending).
    fn join(&self, j: &CompiledJoin, data: &[u32], width: usize) -> Result<Vec<u32>, EngineError> {
        let t = &self.pdb.tables[j.table];
        let n_old = data.len() / width;
        let n_new = t.nrows;
        let mut out = Vec::new();
        if n_old == 0 || n_new == 0 {
            return Ok(out);
        }
        let mut cand = vec![0u32; width + 1];
        if let Some(on) = &j.full_on {
            for tup in data.chunks_exact(width) {
                cand[..width].copy_from_slice(tup);
                for r in 0..n_new as u32 {
                    cand[width] = r;
                    if self.eval(on, &cand, None)?.is_truthy() {
                        out.extend_from_slice(&cand);
                    }
                }
            }
            return Ok(out);
        }

        // Key evaluators: old-side exprs read existing slots, new-side
        // exprs read only the new slot (scratch tuple), both proven pure.
        let mut scratch = vec![0u32; width + 1];
        let nk = j.keys.len();
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        if n_new <= n_old {
            // Build on the new table, probe old tuples in order: matches
            // come out left-major with right rows ascending for free.
            let mut map: HashMap<Vec<EqKey>, Vec<u32>> = HashMap::with_capacity(n_new);
            'new_rows: for r in 0..n_new as u32 {
                scratch[width] = r;
                let mut key = Vec::with_capacity(nk);
                for (_, ne) in &j.keys {
                    match eq_key(&self.eval(ne, &scratch, None)?) {
                        Some(k) => key.push(k),
                        None => continue 'new_rows, // NULL/NaN never matches
                    }
                }
                map.entry(key).or_default().push(r);
            }
            let mut key = Vec::with_capacity(nk);
            'old_tuples: for (i, tup) in data.chunks_exact(width).enumerate() {
                key.clear();
                for (oe, _) in &j.keys {
                    match eq_key(&self.eval(oe, tup, None)?) {
                        Some(k) => key.push(k),
                        None => continue 'old_tuples,
                    }
                }
                if let Some(rs) = map.get(&key) {
                    for &r in rs {
                        pairs.push((i as u32, r));
                    }
                }
            }
        } else {
            // Build on the old side, probe new rows, then restore the
            // interpreter's (left, right) order by sorting the index pairs.
            let mut map: HashMap<Vec<EqKey>, Vec<u32>> = HashMap::with_capacity(n_old);
            'old_tuples2: for (i, tup) in data.chunks_exact(width).enumerate() {
                let mut key = Vec::with_capacity(nk);
                for (oe, _) in &j.keys {
                    match eq_key(&self.eval(oe, tup, None)?) {
                        Some(k) => key.push(k),
                        None => continue 'old_tuples2,
                    }
                }
                map.entry(key).or_default().push(i as u32);
            }
            let mut key = Vec::with_capacity(nk);
            'new_rows2: for r in 0..n_new as u32 {
                scratch[width] = r;
                key.clear();
                for (_, ne) in &j.keys {
                    match eq_key(&self.eval(ne, &scratch, None)?) {
                        Some(k) => key.push(k),
                        None => continue 'new_rows2,
                    }
                }
                if let Some(is) = map.get(&key) {
                    for &i in is {
                        pairs.push((i, r));
                    }
                }
            }
            pairs.sort_unstable();
        }

        // Residual conjuncts run in interpreter pair order; errors inside
        // them surface for the first equality-matching pair, exactly where
        // the interpreter's AND chain would reach them.
        for (i, r) in pairs {
            let base = i as usize * width;
            cand[..width].copy_from_slice(&data[base..base + width]);
            cand[width] = r;
            let mut ok = true;
            for res in &j.residual {
                if !self.eval(res, &cand, None)?.is_truthy() {
                    ok = false;
                    break;
                }
            }
            if ok {
                out.extend_from_slice(&cand);
            }
        }
        Ok(out)
    }

    fn run_flat(&self, data: &[u32], width: usize) -> Result<ResultSet, EngineError> {
        let c = self.c;
        let n = data.len() / width.max(1);
        let ow = c.columns.len();
        let kw = c.order_by.len();
        let mut out: Vec<CVal> = Vec::with_capacity(n * ow);
        let mut keys: Vec<CVal> = Vec::with_capacity(n * kw);
        for tup in data.chunks_exact(width) {
            let base = out.len();
            for p in &c.projections {
                let v = self.eval(p, tup, None)?;
                out.push(v);
            }
            for k in &c.order_by {
                let v = self.order_key(k, tup, None, &out[base..base + ow])?;
                keys.push(v);
            }
        }
        self.finish(out, keys, n)
    }

    fn run_grouped(&self, data: &[u32], width: usize) -> Result<ResultSet, EngineError> {
        let c = self.c;
        let n = data.len() / width.max(1);
        let gw = c.group_by.len();
        // Pass 1: evaluate group keys into a flat arena (errors surface in
        // row order, before the wildcard check — interpreter ordering).
        let mut keybuf: Vec<CKey> = Vec::with_capacity(n * gw);
        for tup in data.chunks_exact(width) {
            for g in &c.group_by {
                let v = self.eval(g, tup, None)?;
                keybuf.push(ckey(&v));
            }
        }
        // Pass 2: bucket tuple indices by key slice, first-seen order.
        let mut index: HashMap<&[CKey], usize> = HashMap::new();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            let k = &keybuf[i * gw..(i + 1) * gw];
            match index.get(k) {
                Some(&g) => groups[g].push(i as u32),
                None => {
                    index.insert(k, groups.len());
                    groups.push(vec![i as u32]);
                }
            }
        }
        // A global aggregate over zero rows still yields one output row.
        if groups.is_empty() && gw == 0 {
            groups.push(Vec::new());
        }
        if c.wildcard_in_grouped {
            return Err(EngineError::Unsupported {
                feature: "SELECT * with GROUP BY/aggregates".into(),
            });
        }

        let ow = c.columns.len();
        let mut out: Vec<CVal> = Vec::new();
        let mut keys: Vec<CVal> = Vec::new();
        let mut outn = 0usize;
        for g in &groups {
            let rep: &[u32] = match g.first() {
                Some(&i) => &data[i as usize * width..(i as usize + 1) * width],
                None => &[],
            };
            let grp = Some(Grp { data, width, rows: g });
            if let Some(h) = &c.having {
                if !self.eval(h, rep, grp)?.is_truthy() {
                    continue;
                }
            }
            let base = out.len();
            for p in &c.projections {
                let v = self.eval(p, rep, grp)?;
                out.push(v);
            }
            for k in &c.order_by {
                let v = self.order_key(k, rep, grp, &out[base..base + ow])?;
                keys.push(v);
            }
            outn += 1;
        }
        self.finish(out, keys, outn)
    }

    /// ORDER BY / DISTINCT / LIMIT over the flat output arenas, then
    /// materialize through the index permutation.
    fn finish(&self, out: Vec<CVal>, keys: Vec<CVal>, n: usize) -> Result<ResultSet, EngineError> {
        let c = self.c;
        let ow = c.columns.len();
        let kw = c.order_by.len();
        let mut perm: Vec<usize> = (0..n).collect();
        if kw > 0 {
            perm.sort_by(|&a, &b| {
                for (ki, key) in c.order_by.iter().enumerate() {
                    let va = &keys[a * kw + ki];
                    let vb = &keys[b * kw + ki];
                    let ord = va.total_cmp(vb);
                    let ord = if key.desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }
        if c.distinct {
            let mut ck: Vec<CKey> = Vec::with_capacity(n * ow);
            for v in &out {
                ck.push(ckey(v));
            }
            let mut seen: HashSet<&[CKey]> = HashSet::with_capacity(n);
            perm.retain(|&i| seen.insert(&ck[i * ow..(i + 1) * ow]));
        }
        if let Some(l) = c.limit {
            perm.truncate(l);
        }
        let rows: Vec<Vec<Value>> = perm
            .iter()
            .map(|&i| out[i * ow..(i + 1) * ow].iter().map(cval_to_value).collect())
            .collect();
        Ok(ResultSet { columns: c.columns.clone(), rows })
    }

    fn order_key(
        &self,
        k: &COrderKey,
        tup: &[u32],
        grp: Option<Grp<'_>>,
        projected: &[CVal],
    ) -> Result<CVal, EngineError> {
        // ORDER BY <alias> refers to the projected value when in range
        // (the interpreter falls back to scope resolution otherwise).
        if let Some(pos) = k.alias {
            if let Some(v) = projected.get(pos) {
                return Ok(v.clone());
            }
        }
        self.eval(&k.expr, tup, grp)
    }

    fn eval(&self, e: &CExpr, tup: &[u32], grp: Option<Grp<'_>>) -> Result<CVal, EngineError> {
        match e {
            CExpr::Lit(v) => Ok(v.clone()),
            CExpr::Col { slot, table, col, name } => match tup.get(*slot as usize) {
                Some(&row) => {
                    Ok(self.pdb.tables[*table as usize].cell(row as usize, *col as usize).clone())
                }
                None => {
                    Err(EngineError::Eval { message: format!("row too narrow for column {name}") })
                }
            },
            CExpr::Error(err) => Err(err.clone()),
            CExpr::Binary { op, left, right } => {
                let l = self.eval(left, tup, grp)?;
                match op {
                    BinOp::And => {
                        if !l.is_truthy() {
                            return Ok(CVal::Bool(false));
                        }
                        let r = self.eval(right, tup, grp)?;
                        Ok(CVal::Bool(r.is_truthy()))
                    }
                    BinOp::Or => {
                        if l.is_truthy() {
                            return Ok(CVal::Bool(true));
                        }
                        let r = self.eval(right, tup, grp)?;
                        Ok(CVal::Bool(r.is_truthy()))
                    }
                    _ => {
                        let r = self.eval(right, tup, grp)?;
                        eval_binop(*op, &l, &r)
                    }
                }
            }
            CExpr::Not(x) => {
                let v = self.eval(x, tup, grp)?;
                Ok(CVal::Bool(!v.is_truthy()))
            }
            CExpr::Neg(x) => {
                let v = self.eval(x, tup, grp)?;
                match v {
                    CVal::Int(i) => Ok(CVal::Int(i.wrapping_neg())),
                    CVal::Float(f) => Ok(CVal::Float(-f)),
                    CVal::Null => Ok(CVal::Null),
                    other => Err(EngineError::Eval { message: format!("cannot negate {other}") }),
                }
            }
            CExpr::IsNull { expr, negated } => {
                let v = self.eval(expr, tup, grp)?;
                Ok(CVal::Bool(v.is_null() != *negated))
            }
            CExpr::Like { expr, pattern, negated } => {
                let v = self.eval(expr, tup, grp)?;
                match v {
                    CVal::Text(_, s) => {
                        let t: Vec<char> = s.to_lowercase().chars().collect();
                        let m = crate::exec::like_rec(pattern, &t);
                        Ok(CVal::Bool(m != *negated))
                    }
                    CVal::Null => Ok(CVal::Bool(false)),
                    other => {
                        Err(EngineError::Eval { message: format!("LIKE on non-text {other}") })
                    }
                }
            }
            CExpr::Between { expr, low, high } => {
                let v = self.eval(expr, tup, grp)?;
                let lo = self.eval(low, tup, grp)?;
                let hi = self.eval(high, tup, grp)?;
                let ge = matches!(v.sql_cmp(&lo), Some(Ordering::Greater | Ordering::Equal));
                let le = matches!(v.sql_cmp(&hi), Some(Ordering::Less | Ordering::Equal));
                Ok(CVal::Bool(ge && le))
            }
            CExpr::InList { expr, list, negated } => {
                let v = self.eval(expr, tup, grp)?;
                let mut found = false;
                for item in list {
                    let iv = self.eval(item, tup, grp)?;
                    if v.sql_eq(&iv) {
                        found = true;
                        break;
                    }
                }
                Ok(CVal::Bool(found != *negated))
            }
            CExpr::InSub { expr, sub, negated } => {
                // Probe expression first — its errors outrank subquery
                // errors, as in the interpreter.
                let v = self.eval(expr, tup, grp)?;
                let set = self.sub_in(*sub)?;
                let found = match eq_key(&v) {
                    Some(k) => set.contains(&k),
                    None => false, // NULL/NaN probes match nothing
                };
                Ok(CVal::Bool(found != *negated))
            }
            CExpr::ScalarSub(sub) => self.sub_scalar(*sub),
            CExpr::Agg { func, arg, distinct } => {
                let g = grp.ok_or_else(|| EngineError::Eval {
                    message: format!("aggregate {func} outside GROUP BY context"),
                })?;
                self.eval_aggregate(*func, arg.as_deref(), *distinct, g)
            }
        }
    }

    fn eval_aggregate(
        &self,
        func: AggFunc,
        arg: Option<&CExpr>,
        distinct: bool,
        g: Grp<'_>,
    ) -> Result<CVal, EngineError> {
        if func == AggFunc::Count && arg.is_none() {
            return Ok(CVal::Int(g.rows.len() as i64));
        }
        let arg = arg
            .ok_or_else(|| EngineError::Eval { message: format!("{func} requires an argument") })?;
        let mut vals = Vec::with_capacity(g.rows.len());
        for &ri in g.rows {
            let base = ri as usize * g.width;
            let tup = &g.data[base..base + g.width];
            let v = self.eval(arg, tup, None)?;
            if !v.is_null() {
                vals.push(v);
            }
        }
        if distinct {
            let mut seen = HashSet::new();
            vals.retain(|v| seen.insert(ckey(v)));
        }
        match func {
            AggFunc::Count => Ok(CVal::Int(vals.len() as i64)),
            AggFunc::Sum => {
                if vals.is_empty() {
                    return Ok(CVal::Null);
                }
                if vals.iter().all(|v| matches!(v, CVal::Int(_))) {
                    let s: i64 =
                        vals.iter().map(|v| if let CVal::Int(i) = v { *i } else { 0 }).sum();
                    Ok(CVal::Int(s))
                } else {
                    let mut s = 0.0;
                    for v in &vals {
                        s += v.as_f64().ok_or_else(|| EngineError::Eval {
                            message: format!("SUM over non-numeric {v}"),
                        })?;
                    }
                    Ok(CVal::Float(s))
                }
            }
            AggFunc::Avg => {
                if vals.is_empty() {
                    return Ok(CVal::Null);
                }
                let mut s = 0.0;
                for v in &vals {
                    s += v.as_f64().ok_or_else(|| EngineError::Eval {
                        message: format!("AVG over non-numeric {v}"),
                    })?;
                }
                Ok(CVal::Float(s / vals.len() as f64))
            }
            AggFunc::Min | AggFunc::Max => {
                let mut best: Option<CVal> = None;
                for v in vals {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let keep_new = match v.sql_cmp(&b) {
                                Some(Ordering::Less) => func == AggFunc::Min,
                                Some(Ordering::Greater) => func == AggFunc::Max,
                                _ => false,
                            };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                Ok(best.unwrap_or(CVal::Null))
            }
        }
    }

    fn sub_run(&self, idx: usize) -> &Result<SubCache, EngineError> {
        self.cache[idx].get_or_init(|| match &self.c.subs[idx] {
            Err(e) => Err(e.clone()),
            Ok(cs) => {
                let rs = run(self.pdb, cs)?;
                // Each sub index has exactly one use site, so the cached
                // shape matches how it will be consumed.
                if matches!(self.sub_kind(idx), SubKind::Scalar) {
                    if rs.columns.len() != 1 {
                        return Err(EngineError::ScalarSubquery {
                            rows: rs.rows.len(),
                            cols: rs.columns.len(),
                        });
                    }
                    let v = rs
                        .rows
                        .first()
                        .map(|r| cval_lookup(&r[0], &self.pdb.interner))
                        .unwrap_or(CVal::Null);
                    Ok(SubCache::Scalar(v))
                } else {
                    let mut set = HashSet::with_capacity(rs.rows.len());
                    for r in &rs.rows {
                        if let Some(v) = r.first() {
                            if let Some(k) = value_eq_key(v, &self.pdb.interner) {
                                set.insert(k);
                            }
                        }
                    }
                    Ok(SubCache::In(set))
                }
            }
        })
    }

    fn sub_kind(&self, idx: usize) -> SubKind {
        find_sub_kind(
            &self.c.projections,
            &self.c.group_by,
            &self.c.having,
            &self.c.filter,
            &self.c.order_by,
            &self.c.joins,
            idx,
        )
    }

    fn sub_in(&self, idx: usize) -> Result<&HashSet<EqKey>, EngineError> {
        match self.sub_run(idx) {
            Ok(SubCache::In(set)) => Ok(set),
            Ok(SubCache::Scalar(_)) => unreachable!("sub cached under the wrong shape"),
            Err(e) => Err(e.clone()),
        }
    }

    fn sub_scalar(&self, idx: usize) -> Result<CVal, EngineError> {
        match self.sub_run(idx) {
            Ok(SubCache::Scalar(v)) => Ok(v.clone()),
            Ok(SubCache::In(_)) => unreachable!("sub cached under the wrong shape"),
            Err(e) => Err(e.clone()),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum SubKind {
    In,
    Scalar,
}

fn find_sub_kind(
    projections: &[CExpr],
    group_by: &[CExpr],
    having: &Option<CExpr>,
    filter: &Option<CExpr>,
    order_by: &[COrderKey],
    joins: &[CompiledJoin],
    idx: usize,
) -> SubKind {
    fn walk(e: &CExpr, idx: usize, out: &mut Option<SubKind>) {
        match e {
            CExpr::InSub { expr, sub, .. } => {
                if *sub == idx {
                    *out = Some(SubKind::In);
                }
                walk(expr, idx, out);
            }
            CExpr::ScalarSub(sub) => {
                if *sub == idx {
                    *out = Some(SubKind::Scalar);
                }
            }
            CExpr::Binary { left, right, .. } => {
                walk(left, idx, out);
                walk(right, idx, out);
            }
            CExpr::Not(x) | CExpr::Neg(x) => walk(x, idx, out),
            CExpr::IsNull { expr, .. } | CExpr::Like { expr, .. } => walk(expr, idx, out),
            CExpr::Between { expr, low, high } => {
                walk(expr, idx, out);
                walk(low, idx, out);
                walk(high, idx, out);
            }
            CExpr::InList { expr, list, .. } => {
                walk(expr, idx, out);
                for i in list {
                    walk(i, idx, out);
                }
            }
            CExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    walk(a, idx, out);
                }
            }
            CExpr::Lit(_) | CExpr::Col { .. } | CExpr::Error(_) => {}
        }
    }
    let mut out = None;
    for e in projections.iter().chain(group_by) {
        walk(e, idx, &mut out);
    }
    if let Some(h) = having {
        walk(h, idx, &mut out);
    }
    if let Some(f) = filter {
        walk(f, idx, &mut out);
    }
    for k in order_by {
        walk(&k.expr, idx, &mut out);
    }
    for j in joins {
        if let Some(on) = &j.full_on {
            walk(on, idx, &mut out);
        }
        for r in &j.residual {
            walk(r, idx, &mut out);
        }
    }
    out.unwrap_or(SubKind::In)
}

/// Mirror of the interpreter's `eval_binop` over compiled values.
fn eval_binop(op: BinOp, l: &CVal, r: &CVal) -> Result<CVal, EngineError> {
    use BinOp::*;
    match op {
        Eq => Ok(CVal::Bool(l.sql_eq(r))),
        NotEq => {
            if l.is_null() || r.is_null() {
                return Ok(CVal::Bool(false));
            }
            Ok(CVal::Bool(!l.sql_eq(r)))
        }
        Lt | LtEq | Gt | GtEq => {
            let ord = match l.sql_cmp(r) {
                Some(o) => o,
                None => return Ok(CVal::Bool(false)),
            };
            let b = match op {
                Lt => ord == Ordering::Less,
                LtEq => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(CVal::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(CVal::Null);
            }
            match (l, r) {
                // Wrapping to match the interpreter (see exec::eval_binop).
                (CVal::Int(a), CVal::Int(b)) if op != Div => Ok(CVal::Int(match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    Mul => a.wrapping_mul(*b),
                    _ => unreachable!(),
                })),
                _ => {
                    let (a, b) = match (l.as_f64(), r.as_f64()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(EngineError::Eval {
                                message: format!("arithmetic on non-numeric: {l} {op} {r}"),
                            })
                        }
                    };
                    let v = match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => {
                            if b == 0.0 {
                                return Ok(CVal::Null);
                            }
                            a / b
                        }
                        _ => unreachable!(),
                    };
                    Ok(CVal::Float(v))
                }
            }
        }
        And | Or => unreachable!("handled by eval"),
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// One-shot compiled execution: prepare referenced tables, compile, run.
pub fn run_select(db: &Database, sel: &Select) -> Result<ResultSet, EngineError> {
    let pdb = PreparedDb::for_select(db, sel);
    let c = compile(&pdb, sel)?;
    run(&pdb, &c)
}

/// Parse + compile + run against an already-prepared database — the hot
/// path for eval loops and the serving pipeline.
pub fn execute_prepared(pdb: &PreparedDb, sql: &str) -> Result<ResultSet, EngineError> {
    let sel = parse_select(sql)?;
    execute_select_prepared(pdb, &sel)
}

/// Compile + run a parsed SELECT against a prepared database.
pub fn execute_select_prepared(pdb: &PreparedDb, sel: &Select) -> Result<ResultSet, EngineError> {
    let c = compile(pdb, sel)?;
    run(pdb, &c)
}
