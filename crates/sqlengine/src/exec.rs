//! Query execution: a straightforward tuple-at-a-time interpreter.
//!
//! Supported: inner joins (nested loop), WHERE, GROUP BY + aggregates,
//! HAVING, ORDER BY, LIMIT, DISTINCT, uncorrelated scalar/IN subqueries.
//! Semantics follow SQLite where they matter for execution-accuracy
//! comparison (NULL-skipping aggregates, case-insensitive LIKE, empty scalar
//! subquery → NULL).

use std::collections::HashSet;

use crate::ast::{AggFunc, BinOp, Expr, OrderKey, Projection, Select, SortDir};
use crate::error::EngineError;
use crate::parser::parse_select;
use crate::storage::Database;
use crate::value::Value;

/// A query result: named columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    pub fn empty() -> Self {
        ResultSet { columns: Vec::new(), rows: Vec::new() }
    }
}

/// How to execute a SELECT.
///
/// Both strategies produce identical `ResultSet`s and identical errors —
/// the differential suite in `tests/differential.rs` enforces this. The
/// compiled path ([`mod@crate::compile`]) resolves names once, interns text,
/// and hash-joins; the interpreter remains as the semantic reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// The original tuple-at-a-time interpreter (semantic reference).
    Interpreted,
    /// Compile to index-resolved form, then run (the default).
    #[default]
    Compiled,
}

/// Parse and execute a SELECT statement against a database.
pub fn execute(db: &Database, sql: &str) -> Result<ResultSet, EngineError> {
    execute_with(db, sql, ExecStrategy::default())
}

/// Parse and execute with an explicit strategy.
pub fn execute_with(
    db: &Database,
    sql: &str,
    strategy: ExecStrategy,
) -> Result<ResultSet, EngineError> {
    let sel = parse_select(sql)?;
    execute_select_with(db, &sel, strategy)
}

/// Execute a parsed SELECT against a database.
pub fn execute_select(db: &Database, sel: &Select) -> Result<ResultSet, EngineError> {
    execute_select_with(db, sel, ExecStrategy::default())
}

/// Execute a parsed SELECT with an explicit strategy.
pub fn execute_select_with(
    db: &Database,
    sel: &Select,
    strategy: ExecStrategy,
) -> Result<ResultSet, EngineError> {
    match strategy {
        ExecStrategy::Interpreted => interpret_select(db, sel),
        ExecStrategy::Compiled => crate::compile::run_select(db, sel),
    }
}

/// The tuple-at-a-time interpreter (kept as the semantic reference for the
/// compiled engine; subqueries below stay on this path so the strategy is
/// pure end to end).
fn interpret_select(db: &Database, sel: &Select) -> Result<ResultSet, EngineError> {
    // Resolve scope: one binding per FROM/JOIN table.
    let mut scope = Scope { bindings: Vec::new() };
    scope.bind(db, &sel.from)?;
    let mut rows: Vec<Vec<Value>> = {
        let t = db
            .table(&sel.from.table)
            .ok_or_else(|| EngineError::UnknownTable { table: sel.from.table.clone() })?;
        t.rows.clone()
    };
    for join in &sel.joins {
        scope.bind(db, &join.table)?;
        let jt = db
            .table(&join.table.table)
            .ok_or_else(|| EngineError::UnknownTable { table: join.table.table.clone() })?;
        let mut next = Vec::new();
        for left in &rows {
            for right in &jt.rows {
                let mut combined = left.clone();
                combined.extend(right.iter().cloned());
                let keep = eval(&join.on, &combined, &scope, db, None)?.is_truthy();
                if keep {
                    next.push(combined);
                }
            }
        }
        rows = next;
    }

    // WHERE
    if let Some(w) = &sel.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if eval(w, &row, &scope, db, None)?.is_truthy() {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let aggregated = !sel.group_by.is_empty()
        || sel.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate(),
            Projection::Wildcard => false,
        })
        || sel.having.as_ref().is_some_and(Expr::contains_aggregate)
        || sel.order_by.iter().any(|o| o.expr.contains_aggregate());

    let (columns, mut out_rows, sort_keys) = if aggregated {
        project_grouped(sel, &rows, &scope, db)?
    } else {
        project_flat(sel, &rows, &scope, db)?
    };

    // ORDER BY (sort keys were computed in the right context already)
    if !sel.order_by.is_empty() {
        let mut order: Vec<usize> = (0..out_rows.len()).collect();
        order.sort_by(|&a, &b| {
            for (ki, key) in sel.order_by.iter().enumerate() {
                let va = &sort_keys[a][ki];
                let vb = &sort_keys[b][ki];
                let ord = va.total_cmp(vb);
                let ord = match key.dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        apply_permutation(&mut out_rows, &order);
    }

    // DISTINCT
    if sel.distinct {
        let mut seen = HashSet::new();
        out_rows.retain(|r| seen.insert(canon_row(r)));
    }

    // LIMIT
    if let Some(n) = sel.limit {
        out_rows.truncate(n);
    }

    Ok(ResultSet { columns, rows: out_rows })
}

/// Reorder `rows` so that `rows[k]` becomes the old `rows[perm[k]]`,
/// in place via cycle decomposition — no take-and-collect shuffle, no
/// second row vector.
fn apply_permutation<T>(rows: &mut [T], perm: &[usize]) {
    debug_assert_eq!(rows.len(), perm.len());
    let mut perm = perm.to_vec();
    for start in 0..perm.len() {
        if perm[start] == usize::MAX {
            continue; // already placed by an earlier cycle
        }
        let mut i = start;
        loop {
            let src = perm[i];
            perm[i] = usize::MAX;
            if src == start {
                break;
            }
            rows.swap(i, src);
            i = src;
        }
    }
}

// ---------------------------------------------------------------------------
// Scope & resolution
// ---------------------------------------------------------------------------

struct Binding {
    name: String,
    columns: Vec<String>,
    offset: usize,
}

struct Scope {
    bindings: Vec<Binding>,
}

impl Scope {
    fn bind(&mut self, db: &Database, tref: &crate::ast::TableRef) -> Result<(), EngineError> {
        if let Some(dbname) = &tref.database {
            if !dbname.eq_ignore_ascii_case(&db.name) {
                return Err(EngineError::WrongDatabase {
                    expected: db.name.clone(),
                    got: dbname.clone(),
                });
            }
        }
        let t = db
            .table(&tref.table)
            .ok_or_else(|| EngineError::UnknownTable { table: tref.table.clone() })?;
        let offset = self.width();
        self.bindings.push(Binding {
            name: tref.binding().to_string(),
            columns: t.schema.columns.iter().map(|c| c.name.clone()).collect(),
            offset,
        });
        Ok(())
    }

    fn width(&self) -> usize {
        self.bindings.last().map(|b| b.offset + b.columns.len()).unwrap_or(0)
    }

    /// Resolve `[qualifier.]column` to a flat row index.
    fn resolve(&self, qualifier: Option<&str>, column: &str) -> Result<usize, EngineError> {
        match qualifier {
            Some(q) => {
                let b = self
                    .bindings
                    .iter()
                    .find(|b| b.name.eq_ignore_ascii_case(q))
                    .ok_or_else(|| EngineError::UnknownTable { table: q.to_string() })?;
                let idx =
                    b.columns.iter().position(|c| c.eq_ignore_ascii_case(column)).ok_or_else(
                        || EngineError::UnknownColumn { column: format!("{q}.{column}") },
                    )?;
                Ok(b.offset + idx)
            }
            None => {
                let mut found = None;
                for b in &self.bindings {
                    if let Some(idx) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(column))
                    {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn { column: column.into() });
                        }
                        found = Some(b.offset + idx);
                    }
                }
                found.ok_or_else(|| EngineError::UnknownColumn { column: column.into() })
            }
        }
    }

    /// All columns with their flat indices (for `SELECT *`).
    fn all_columns(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for b in &self.bindings {
            for (i, c) in b.columns.iter().enumerate() {
                out.push((c.clone(), b.offset + i));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

type Projected = (Vec<String>, Vec<Vec<Value>>, Vec<Vec<Value>>);

pub(crate) fn projection_name(p: &Projection, i: usize) -> String {
    match p {
        Projection::Wildcard => "*".into(),
        Projection::Expr { alias: Some(a), .. } => a.clone(),
        Projection::Expr { expr: Expr::Column { column, .. }, .. } => column.clone(),
        _ => format!("col{i}"),
    }
}

fn project_flat(
    sel: &Select,
    rows: &[Vec<Value>],
    scope: &Scope,
    db: &Database,
) -> Result<Projected, EngineError> {
    let mut columns = Vec::new();
    for (i, p) in sel.projections.iter().enumerate() {
        match p {
            Projection::Wildcard => {
                for (name, _) in scope.all_columns() {
                    columns.push(name);
                }
            }
            _ => columns.push(projection_name(p, i)),
        }
    }
    let alias_map = alias_exprs(sel);
    let mut out = Vec::with_capacity(rows.len());
    let mut keys = Vec::with_capacity(rows.len());
    for row in rows {
        let mut vals = Vec::with_capacity(columns.len());
        for p in &sel.projections {
            match p {
                Projection::Wildcard => {
                    for (_, idx) in scope.all_columns() {
                        vals.push(row[idx].clone());
                    }
                }
                Projection::Expr { expr, .. } => vals.push(eval(expr, row, scope, db, None)?),
            }
        }
        let mut krow = Vec::with_capacity(sel.order_by.len());
        for key in &sel.order_by {
            krow.push(eval_order_key(key, row, scope, db, None, &alias_map, &vals, sel)?);
        }
        out.push(vals);
        keys.push(krow);
    }
    Ok((columns, out, keys))
}

fn project_grouped(
    sel: &Select,
    rows: &[Vec<Value>],
    scope: &Scope,
    db: &Database,
) -> Result<Projected, EngineError> {
    // Group rows by the GROUP BY key (empty key = single global group).
    let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for row in rows {
        let mut key = Vec::with_capacity(sel.group_by.len());
        for g in &sel.group_by {
            key.push(eval(g, row, scope, db, None)?);
        }
        let ck = canon_row(&key);
        match index.get(&ck) {
            Some(&gi) => groups[gi].1.push(row.clone()),
            None => {
                index.insert(ck, groups.len());
                groups.push((key, vec![row.clone()]));
            }
        }
    }
    // A global aggregate over zero rows still yields one output row
    // (e.g. `SELECT COUNT(*) FROM empty` → 0).
    if groups.is_empty() && sel.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut columns = Vec::new();
    for (i, p) in sel.projections.iter().enumerate() {
        match p {
            Projection::Wildcard => {
                return Err(EngineError::Unsupported {
                    feature: "SELECT * with GROUP BY/aggregates".into(),
                })
            }
            _ => columns.push(projection_name(p, i)),
        }
    }

    let alias_map = alias_exprs(sel);
    let mut out = Vec::new();
    let mut keys = Vec::new();
    for (_, grows) in &groups {
        if let Some(h) = &sel.having {
            if !eval(h, first_or_empty(grows), scope, db, Some(grows))?.is_truthy() {
                continue;
            }
        }
        let mut vals = Vec::with_capacity(columns.len());
        for p in &sel.projections {
            if let Projection::Expr { expr, .. } = p {
                vals.push(eval(expr, first_or_empty(grows), scope, db, Some(grows))?);
            }
        }
        let mut krow = Vec::with_capacity(sel.order_by.len());
        for key in &sel.order_by {
            krow.push(eval_order_key(
                key,
                first_or_empty(grows),
                scope,
                db,
                Some(grows),
                &alias_map,
                &vals,
                sel,
            )?);
        }
        out.push(vals);
        keys.push(krow);
    }
    Ok((columns, out, keys))
}

fn first_or_empty(rows: &[Vec<Value>]) -> &[Value] {
    rows.first().map(|r| r.as_slice()).unwrap_or(&[])
}

/// Map projection aliases to their positions so ORDER BY can reference them.
pub(crate) fn alias_exprs(sel: &Select) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    for p in &sel.projections {
        match p {
            Projection::Wildcard => pos += 1, // widths differ, but aliases never point here
            Projection::Expr { alias, .. } => {
                if let Some(a) = alias {
                    out.push((a.clone(), pos));
                }
                pos += 1;
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn eval_order_key(
    key: &OrderKey,
    row: &[Value],
    scope: &Scope,
    db: &Database,
    group: Option<&Vec<Vec<Value>>>,
    alias_map: &[(String, usize)],
    projected: &[Value],
    _sel: &Select,
) -> Result<Value, EngineError> {
    // ORDER BY <alias> refers to the projected value.
    if let Expr::Column { table: None, column } = &key.expr {
        if let Some((_, pos)) = alias_map.iter().find(|(a, _)| a.eq_ignore_ascii_case(column)) {
            if let Some(v) = projected.get(*pos) {
                return Ok(v.clone());
            }
        }
    }
    eval(&key.expr, row, scope, db, group.map(|g| g.as_slice()))
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Evaluate an expression.
///
/// `group`: when `Some`, aggregate calls evaluate over these rows and plain
/// columns read from the representative `row`.
fn eval(
    expr: &Expr,
    row: &[Value],
    scope: &Scope,
    db: &Database,
    group: Option<&[Vec<Value>]>,
) -> Result<Value, EngineError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, column } => {
            let idx = scope.resolve(table.as_deref(), column)?;
            row.get(idx).cloned().ok_or_else(|| EngineError::Eval {
                message: format!("row too narrow for column {column}"),
            })
        }
        Expr::Binary { op, left, right } => {
            let l = eval(left, row, scope, db, group)?;
            match op {
                BinOp::And => {
                    if !l.is_truthy() {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(right, row, scope, db, group)?;
                    Ok(Value::Bool(r.is_truthy()))
                }
                BinOp::Or => {
                    if l.is_truthy() {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(right, row, scope, db, group)?;
                    Ok(Value::Bool(r.is_truthy()))
                }
                _ => {
                    let r = eval(right, row, scope, db, group)?;
                    eval_binop(*op, &l, &r)
                }
            }
        }
        Expr::Not(e) => {
            let v = eval(e, row, scope, db, group)?;
            Ok(Value::Bool(!v.is_truthy()))
        }
        Expr::Neg(e) => {
            let v = eval(e, row, scope, db, group)?;
            match v {
                Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Null => Ok(Value::Null),
                other => Err(EngineError::Eval { message: format!("cannot negate {other}") }),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row, scope, db, group)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, row, scope, db, group)?;
            match v {
                Value::Text(s) => {
                    let m = like_match(pattern, &s);
                    Ok(Value::Bool(m != *negated))
                }
                Value::Null => Ok(Value::Bool(false)),
                other => Err(EngineError::Eval { message: format!("LIKE on non-text {other}") }),
            }
        }
        Expr::Between { expr, low, high } => {
            let v = eval(expr, row, scope, db, group)?;
            let lo = eval(low, row, scope, db, group)?;
            let hi = eval(high, row, scope, db, group)?;
            let ge = matches!(
                v.sql_cmp(&lo),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            );
            let le = matches!(
                v.sql_cmp(&hi),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            Ok(Value::Bool(ge && le))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, row, scope, db, group)?;
            let mut found = false;
            for item in list {
                let iv = eval(item, row, scope, db, group)?;
                if v.sql_eq(&iv) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let v = eval(expr, row, scope, db, group)?;
            let rs = interpret_select(db, subquery)?;
            let found = rs.rows.iter().any(|r| r.first().is_some_and(|iv| v.sql_eq(iv)));
            Ok(Value::Bool(found != *negated))
        }
        Expr::ScalarSubquery(sub) => {
            let rs = interpret_select(db, sub)?;
            if rs.columns.len() != 1 {
                return Err(EngineError::ScalarSubquery {
                    rows: rs.rows.len(),
                    cols: rs.columns.len(),
                });
            }
            Ok(rs.rows.first().map(|r| r[0].clone()).unwrap_or(Value::Null))
        }
        Expr::Aggregate { func, arg, distinct } => {
            let rows = group.ok_or_else(|| EngineError::Eval {
                message: format!("aggregate {func} outside GROUP BY context"),
            })?;
            eval_aggregate(*func, arg.as_deref(), *distinct, rows, scope, db)
        }
    }
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, EngineError> {
    use BinOp::*;
    match op {
        Eq => Ok(Value::Bool(l.sql_eq(r))),
        NotEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(!l.sql_eq(r)))
        }
        Lt | LtEq | Gt | GtEq => {
            let ord = match l.sql_cmp(r) {
                Some(o) => o,
                None => return Ok(Value::Bool(false)),
            };
            let b = match op {
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (l, r) {
                // Wrapping keeps debug and release builds identical on
                // overflow (predicted SQL is adversarial input; a panic
                // here would take down a serving worker).
                (Value::Int(a), Value::Int(b)) if op != Div => Ok(Value::Int(match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    Mul => a.wrapping_mul(*b),
                    _ => unreachable!(),
                })),
                _ => {
                    let (a, b) = match (l.as_f64(), r.as_f64()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(EngineError::Eval {
                                message: format!("arithmetic on non-numeric: {l} {op} {r}"),
                            })
                        }
                    };
                    let v = match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => {
                            if b == 0.0 {
                                return Ok(Value::Null);
                            }
                            a / b
                        }
                        _ => unreachable!(),
                    };
                    Ok(Value::Float(v))
                }
            }
        }
        And | Or => unreachable!("handled by eval"),
    }
}

fn eval_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    rows: &[Vec<Value>],
    scope: &Scope,
    db: &Database,
) -> Result<Value, EngineError> {
    // COUNT(*) counts rows directly.
    if func == AggFunc::Count && arg.is_none() {
        return Ok(Value::Int(rows.len() as i64));
    }
    let arg =
        arg.ok_or_else(|| EngineError::Eval { message: format!("{func} requires an argument") })?;
    let mut vals = Vec::with_capacity(rows.len());
    for row in rows {
        let v = eval(arg, row, scope, db, None)?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    if distinct {
        let mut seen = HashSet::new();
        vals.retain(|v| seen.insert(canon_value(v)));
    }
    match func {
        AggFunc::Count => Ok(Value::Int(vals.len() as i64)),
        AggFunc::Sum => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                let s: i64 = vals.iter().map(|v| if let Value::Int(i) = v { *i } else { 0 }).sum();
                Ok(Value::Int(s))
            } else {
                let mut s = 0.0;
                for v in &vals {
                    s += v.as_f64().ok_or_else(|| EngineError::Eval {
                        message: format!("SUM over non-numeric {v}"),
                    })?;
                }
                Ok(Value::Float(s))
            }
        }
        AggFunc::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut s = 0.0;
            for v in &vals {
                s += v.as_f64().ok_or_else(|| EngineError::Eval {
                    message: format!("AVG over non-numeric {v}"),
                })?;
            }
            Ok(Value::Float(s / vals.len() as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
                            Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

/// Case-insensitive SQL LIKE with `%` and `_` wildcards.
fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let t: Vec<char> = text.to_lowercase().chars().collect();
    like_rec(&p, &t)
}

pub(crate) fn like_rec(p: &[char], t: &[char]) -> bool {
    match p.first() {
        None => t.is_empty(),
        Some('%') => {
            // Greedy-or-empty: try all split points.
            (0..=t.len()).any(|i| like_rec(&p[1..], &t[i..]))
        }
        Some('_') => !t.is_empty() && like_rec(&p[1..], &t[1..]),
        Some(&c) => t.first() == Some(&c) && like_rec(&p[1..], &t[1..]),
    }
}

/// Canonical string key for a value (grouping / DISTINCT).
pub(crate) fn canon_value(v: &Value) -> String {
    match v {
        Value::Null => "∅".into(),
        Value::Bool(b) => format!("b:{b}"),
        Value::Int(i) => format!("n:{i}"),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("n:{}", *f as i64)
            } else {
                format!("f:{f:.9}")
            }
        }
        Value::Text(s) => format!("t:{s}"),
    }
}

/// Canonical string key for a row.
pub(crate) fn canon_row(row: &[Value]) -> String {
    let parts: Vec<String> = row.iter().map(canon_value).collect();
    parts.join("\u{1f}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DatabaseSchema, TableSchema};
    use crate::value::DataType;

    /// The paper's running example database (Example 1-2).
    fn concert_db() -> Database {
        let mut schema = DatabaseSchema::new("concert_singer");
        schema.add_table(
            TableSchema::new("singer")
                .column("singer_id", DataType::Int)
                .column("name", DataType::Text)
                .column("age", DataType::Int)
                .primary(0),
        );
        schema.add_table(
            TableSchema::new("concert")
                .column("concert_id", DataType::Int)
                .column("venue", DataType::Text)
                .column("year", DataType::Int)
                .primary(0),
        );
        schema.add_table(
            TableSchema::new("singer_in_concert")
                .column("singer_id", DataType::Int)
                .column("concert_id", DataType::Int)
                .foreign("singer_id", "singer", "singer_id")
                .foreign("concert_id", "concert", "concert_id"),
        );
        let mut db = Database::from_schema(&schema);
        for (id, name, age) in [(1, "Ann", 30), (2, "Bo", 42), (3, "Cy", 25), (4, "Di", 35)] {
            db.insert("singer", vec![Value::Int(id), Value::Text(name.into()), Value::Int(age)])
                .unwrap();
        }
        for (id, venue, year) in [(10, "Arena", 2014), (11, "Hall", 2014), (12, "Club", 2022)] {
            db.insert("concert", vec![Value::Int(id), Value::Text(venue.into()), Value::Int(year)])
                .unwrap();
        }
        for (s, c) in [(1, 10), (2, 10), (1, 11), (3, 12)] {
            db.insert("singer_in_concert", vec![Value::Int(s), Value::Int(c)]).unwrap();
        }
        db
    }

    #[test]
    fn select_star() {
        let db = concert_db();
        let rs = execute(&db, "SELECT * FROM singer").unwrap();
        assert_eq!(rs.columns, vec!["singer_id", "name", "age"]);
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn where_filter() {
        let db = concert_db();
        let rs = execute(&db, "SELECT name FROM singer WHERE age > 30").unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn paper_example2_join() {
        let db = concert_db();
        let rs = execute(
            &db,
            "SELECT s.name FROM singer_in_concert AS sc \
             JOIN singer AS s ON sc.singer_id = s.singer_id \
             JOIN concert AS c ON sc.concert_id = c.concert_id \
             WHERE c.year = 2014",
        )
        .unwrap();
        let mut names: Vec<String> = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Text(s) => s.clone(),
                other => panic!("{other:?}"),
            })
            .collect();
        names.sort();
        assert_eq!(names, vec!["Ann", "Ann", "Bo"]);
    }

    #[test]
    fn group_by_count_order() {
        let db = concert_db();
        let rs = execute(
            &db,
            "SELECT venue, COUNT(*) AS n FROM concert \
             JOIN singer_in_concert AS sc ON concert.concert_id = sc.concert_id \
             GROUP BY venue ORDER BY n DESC LIMIT 1",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert!(rs.rows[0][0].sql_eq(&Value::Text("Arena".into())));
        assert!(rs.rows[0][1].sql_eq(&Value::Int(2)));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = concert_db();
        let rs = execute(&db, "SELECT COUNT(*) FROM singer WHERE age > 100").unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert!(rs.rows[0][0].sql_eq(&Value::Int(0)));
    }

    #[test]
    fn scalar_subquery_max() {
        let db = concert_db();
        let rs = execute(&db, "SELECT name FROM singer WHERE age = (SELECT MAX(age) FROM singer)")
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert!(rs.rows[0][0].sql_eq(&Value::Text("Bo".into())));
    }

    #[test]
    fn in_subquery() {
        let db = concert_db();
        let rs = execute(
            &db,
            "SELECT name FROM singer WHERE singer_id IN \
             (SELECT singer_id FROM singer_in_concert WHERE concert_id = 10)",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let db = concert_db();
        let rs = execute(&db, "SELECT DISTINCT year FROM concert").unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn having_filters_groups() {
        let db = concert_db();
        let rs = execute(
            &db,
            "SELECT concert_id FROM singer_in_concert GROUP BY concert_id HAVING COUNT(*) >= 2",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert!(rs.rows[0][0].sql_eq(&Value::Int(10)));
    }

    #[test]
    fn order_by_text_asc() {
        let db = concert_db();
        let rs = execute(&db, "SELECT name FROM singer ORDER BY name ASC").unwrap();
        assert!(rs.rows[0][0].sql_eq(&Value::Text("Ann".into())));
        assert!(rs.rows[3][0].sql_eq(&Value::Text("Di".into())));
    }

    #[test]
    fn db_qualified_tables_allowed() {
        let db = concert_db();
        let rs = execute(&db, "SELECT name FROM concert_singer.singer WHERE age < 30").unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn wrong_database_qualifier_fails() {
        let db = concert_db();
        let err = execute(&db, "SELECT * FROM other_db.singer").unwrap_err();
        assert!(matches!(err, EngineError::WrongDatabase { .. }));
    }

    #[test]
    fn unknown_table_fails() {
        let db = concert_db();
        assert!(matches!(
            execute(&db, "SELECT * FROM nonexistent"),
            Err(EngineError::UnknownTable { .. })
        ));
    }

    #[test]
    fn unknown_column_fails() {
        let db = concert_db();
        assert!(matches!(
            execute(&db, "SELECT bogus FROM singer"),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn ambiguous_column_fails() {
        let db = concert_db();
        let err = execute(
            &db,
            "SELECT singer_id FROM singer JOIN singer_in_concert \
             ON singer.singer_id = singer_in_concert.singer_id",
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::AmbiguousColumn { .. }));
    }

    #[test]
    fn like_patterns() {
        let db = concert_db();
        let rs = execute(&db, "SELECT name FROM singer WHERE name LIKE 'a%'").unwrap();
        assert_eq!(rs.rows.len(), 1); // Ann, case-insensitive
        let rs = execute(&db, "SELECT name FROM singer WHERE name LIKE '__'").unwrap();
        assert_eq!(rs.rows.len(), 3); // Bo, Cy, Di
    }

    #[test]
    fn arithmetic_and_division() {
        let db = concert_db();
        let rs = execute(&db, "SELECT age * 2 FROM singer WHERE singer_id = 1").unwrap();
        assert!(rs.rows[0][0].sql_eq(&Value::Int(60)));
        let rs = execute(&db, "SELECT age / 0 FROM singer WHERE singer_id = 1").unwrap();
        assert!(rs.rows[0][0].is_null());
    }

    #[test]
    fn avg_and_sum() {
        let db = concert_db();
        let rs = execute(&db, "SELECT AVG(age), SUM(age) FROM singer").unwrap();
        assert!(rs.rows[0][0].sql_eq(&Value::Float(33.0)));
        assert!(rs.rows[0][1].sql_eq(&Value::Int(132)));
    }

    #[test]
    fn count_distinct() {
        let db = concert_db();
        let rs = execute(&db, "SELECT COUNT(DISTINCT singer_id) FROM singer_in_concert").unwrap();
        assert!(rs.rows[0][0].sql_eq(&Value::Int(3)));
    }

    #[test]
    fn between() {
        let db = concert_db();
        let rs = execute(&db, "SELECT name FROM singer WHERE age BETWEEN 25 AND 35").unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn order_by_alias() {
        let db = concert_db();
        let rs = execute(
            &db,
            "SELECT name, age * 2 AS doubled FROM singer ORDER BY doubled DESC LIMIT 1",
        )
        .unwrap();
        assert!(rs.rows[0][0].sql_eq(&Value::Text("Bo".into())));
    }
}
