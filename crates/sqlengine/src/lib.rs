//! `dbcopilot-sqlengine` — a minimal in-memory relational engine.
//!
//! The paper evaluates end-to-end NL2SQL with *execution accuracy* (EX):
//! predicted SQL and gold SQL are executed against the target database and
//! their results compared. The original work runs SQLite; this crate is the
//! offline substitute, covering the SQL subset the synthetic workloads (and
//! the paper's own example queries) use:
//!
//! * inner joins, WHERE, GROUP BY + aggregates, HAVING, ORDER BY, LIMIT,
//!   DISTINCT;
//! * uncorrelated scalar and `IN` subqueries;
//! * `LIKE`, `BETWEEN`, `IS [NOT] NULL`, arithmetic.
//!
//! Out of scope (documented in DESIGN.md): outer joins, UNION, correlated
//! subqueries, CASE — none are emitted by the workload generator, and a
//! predicted query using them simply fails execution (EX = 0), exactly as an
//! invalid query would against SQLite.
//!
//! ```
//! use dbcopilot_sqlengine::{
//!     execute, DataType, Database, DatabaseSchema, TableSchema, Value,
//! };
//!
//! let mut schema = DatabaseSchema::new("world");
//! schema.add_table(
//!     TableSchema::new("city").column("name", DataType::Text).column("pop", DataType::Int),
//! );
//! let mut db = Database::from_schema(&schema);
//! db.insert("city", vec![Value::Text("ulm".into()), Value::Int(126_000)]).unwrap();
//! db.insert("city", vec![Value::Text("bern".into()), Value::Int(134_000)]).unwrap();
//!
//! let rs = execute(&db, "SELECT name FROM city WHERE pop > 130000").unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! ```

pub mod ast;
pub mod compare;
pub mod compile;
pub mod error;
pub mod exec;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod render;
pub mod schema;
pub mod storage;
pub mod value;

pub use ast::{AggFunc, BinOp, Expr, Join, OrderKey, Projection, Select, SortDir, TableRef};
pub use compare::{
    compare_to_gold, compare_to_gold_prepared, execution_match, execution_match_prepared,
    results_equal, ExOutcome,
};
pub use compile::{
    compile, execute_prepared, execute_select_prepared, CompiledSelect, PreparedDb, PreparedStore,
};
pub use error::EngineError;
pub use exec::{
    execute, execute_select, execute_select_with, execute_with, ExecStrategy, ResultSet,
};
pub use intern::{Interner, Symbol};
pub use parser::parse_select;
pub use render::{render_expr, render_select};
pub use schema::{Collection, ColumnDef, DatabaseSchema, ForeignKey, TableSchema};
pub use storage::{Database, Store, Table};
pub use value::{DataType, Value};
