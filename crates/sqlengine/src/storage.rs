//! Row storage: populated tables and databases.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::EngineError;
use crate::schema::{DatabaseSchema, TableSchema};
use crate::value::{DataType, Value};

/// A populated table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub schema: TableSchema,
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Table { schema, rows: Vec::new() }
    }

    /// Insert a row, checking arity and (loosely) types: NULL fits any
    /// column, Int fits Float columns.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), EngineError> {
        if row.len() != self.schema.columns.len() {
            return Err(EngineError::Arity {
                table: self.schema.name.clone(),
                expected: self.schema.columns.len(),
                got: row.len(),
            });
        }
        for (v, col) in row.iter().zip(&self.schema.columns) {
            let ok = match (v.type_of(), col.ty) {
                (None, _) => true,
                (Some(DataType::Int), DataType::Float) => true,
                (Some(t), expected) => t == expected,
            };
            if !ok {
                return Err(EngineError::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty,
                });
            }
        }
        self.rows.push(row);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All non-null values of one column (used by joinability detection).
    pub fn column_values(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[idx]).filter(|v| !v.is_null())
    }
}

/// A populated database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    pub name: String,
    pub tables: BTreeMap<String, Table>,
}

impl Database {
    /// Create an empty database from a schema.
    pub fn from_schema(schema: &DatabaseSchema) -> Self {
        let tables =
            schema.tables.iter().map(|t| (t.name.clone(), Table::new(t.clone()))).collect();
        Database { name: schema.name.clone(), tables }
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        // Case-insensitive fallback keeps generated SQL robust.
        self.tables
            .get(name)
            .or_else(|| self.tables.values().find(|t| t.schema.name.eq_ignore_ascii_case(name)))
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        if self.tables.contains_key(name) {
            return self.tables.get_mut(name);
        }
        let key = self.tables.keys().find(|k| k.eq_ignore_ascii_case(name)).cloned()?;
        self.tables.get_mut(&key)
    }

    /// Insert a row into a named table.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), EngineError> {
        match self.table_mut(table) {
            Some(t) => t.insert(row),
            None => Err(EngineError::UnknownTable { table: table.to_string() }),
        }
    }

    /// Total number of rows across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// The schema view of this database.
    pub fn schema(&self) -> DatabaseSchema {
        let mut s = DatabaseSchema::new(self.name.clone());
        for t in self.tables.values() {
            s.tables.push(t.schema.clone());
        }
        s
    }
}

/// A populated collection of databases (content counterpart of
/// [`crate::schema::Collection`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Store {
    pub databases: BTreeMap<String, Database>,
}

impl Store {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, db: Database) {
        self.databases.insert(db.name.clone(), db);
    }

    pub fn database(&self, name: &str) -> Option<&Database> {
        self.databases.get(name)
    }

    pub fn database_mut(&mut self, name: &str) -> Option<&mut Database> {
        self.databases.get_mut(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn people() -> Table {
        Table::new(
            TableSchema::new("people")
                .column("id", DataType::Int)
                .column("name", DataType::Text)
                .column("height", DataType::Float),
        )
    }

    #[test]
    fn insert_checks_arity() {
        let mut t = people();
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, EngineError::Arity { expected: 3, got: 1, .. }));
    }

    #[test]
    fn insert_checks_types() {
        let mut t = people();
        let err = t
            .insert(vec![Value::Text("x".into()), Value::Text("a".into()), Value::Float(1.0)])
            .unwrap_err();
        assert!(matches!(err, EngineError::TypeMismatch { .. }));
    }

    #[test]
    fn int_widens_to_float_and_null_fits() {
        let mut t = people();
        t.insert(vec![Value::Int(1), Value::Null, Value::Int(180)]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn column_values_skips_nulls() {
        let mut t = people();
        t.insert(vec![Value::Int(1), Value::Null, Value::Float(1.5)]).unwrap();
        t.insert(vec![Value::Int(2), Value::Text("bo".into()), Value::Null]).unwrap();
        assert_eq!(t.column_values(1).count(), 1);
        assert_eq!(t.column_values(2).count(), 1);
    }

    #[test]
    fn database_case_insensitive_lookup() {
        let mut schema = DatabaseSchema::new("d");
        schema.add_table(TableSchema::new("Singer").column("id", DataType::Int));
        let db = Database::from_schema(&schema);
        assert!(db.table("singer").is_some());
        assert!(db.table("SINGER").is_some());
        assert!(db.table("nope").is_none());
    }
}
