//! Logical schema: columns, tables, databases, and collections of databases.
//!
//! The *collection* level models the paper's "massive databases" setting: a
//! single searchable space `D` of many databases, each with its own tables
//! (Table 1 notation).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::value::DataType;

/// A column definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    /// Optional human comment (the schema questioner consumes these).
    pub comment: Option<String>,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef { name: name.into(), ty, comment: None }
    }

    pub fn with_comment(mut self, comment: impl Into<String>) -> Self {
        self.comment = Some(comment.into());
        self
    }
}

/// A foreign-key constraint: `table.column → ref_table.ref_column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub column: String,
    pub ref_table: String,
    pub ref_column: String,
}

/// A table definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Index into `columns` of the primary key, if any.
    pub primary_key: Option<usize>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>) -> Self {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            foreign_keys: Vec::new(),
        }
    }

    pub fn column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.columns.push(ColumnDef::new(name, ty));
        self
    }

    pub fn primary(mut self, idx: usize) -> Self {
        assert!(idx < self.columns.len(), "primary key index out of range");
        self.primary_key = Some(idx);
        self
    }

    pub fn foreign(
        mut self,
        column: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> Self {
        self.foreign_keys.push(ForeignKey {
            column: column.into(),
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        });
        self
    }

    /// Position of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// "table(col1, col2, …)" — the flattened form used as retrieval-target
    /// text by the baselines and in prompts.
    pub fn flat_text(&self) -> String {
        let cols: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        format!("{}({})", self.name, cols.join(", "))
    }
}

/// A database definition: named set of tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatabaseSchema {
    pub name: String,
    /// Tables in insertion order; keyed map kept alongside for O(1) lookup.
    pub tables: Vec<TableSchema>,
}

impl DatabaseSchema {
    pub fn new(name: impl Into<String>) -> Self {
        DatabaseSchema { name: name.into(), tables: Vec::new() }
    }

    pub fn add_table(&mut self, table: TableSchema) {
        assert!(
            self.table(&table.name).is_none(),
            "duplicate table {:?} in database {:?}",
            table.name,
            self.name
        );
        self.tables.push(table);
    }

    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name.as_str()).collect()
    }
}

/// A collection of databases — the full routing space `D`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Collection {
    /// Databases keyed by name, iteration order deterministic.
    pub databases: BTreeMap<String, DatabaseSchema>,
}

impl Collection {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_database(&mut self, db: DatabaseSchema) {
        assert!(!self.databases.contains_key(&db.name), "duplicate database {:?}", db.name);
        self.databases.insert(db.name.clone(), db);
    }

    pub fn database(&self, name: &str) -> Option<&DatabaseSchema> {
        self.databases.get(name)
    }

    pub fn num_databases(&self) -> usize {
        self.databases.len()
    }

    pub fn num_tables(&self) -> usize {
        self.databases.values().map(|d| d.tables.len()).sum()
    }

    pub fn num_columns(&self) -> usize {
        self.databases.values().flat_map(|d| d.tables.iter()).map(|t| t.columns.len()).sum()
    }

    /// Iterate `(database, table)` pairs deterministically.
    pub fn tables(&self) -> impl Iterator<Item = (&DatabaseSchema, &TableSchema)> {
        self.databases.values().flat_map(|d| d.tables.iter().map(move |t| (d, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concert_db() -> DatabaseSchema {
        let mut db = DatabaseSchema::new("concert_singer");
        db.add_table(
            TableSchema::new("singer")
                .column("singer_id", DataType::Int)
                .column("name", DataType::Text)
                .primary(0),
        );
        db.add_table(
            TableSchema::new("concert")
                .column("concert_id", DataType::Int)
                .column("year", DataType::Int)
                .primary(0),
        );
        db.add_table(
            TableSchema::new("singer_in_concert")
                .column("singer_id", DataType::Int)
                .column("concert_id", DataType::Int)
                .foreign("singer_id", "singer", "singer_id")
                .foreign("concert_id", "concert", "concert_id"),
        );
        db
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = TableSchema::new("t").column("Name", DataType::Text);
        assert_eq!(t.column_index("name"), Some(0));
        assert_eq!(t.column_index("NAME"), Some(0));
        assert_eq!(t.column_index("missing"), None);
    }

    #[test]
    fn flat_text_format() {
        let t =
            TableSchema::new("singer").column("id", DataType::Int).column("name", DataType::Text);
        assert_eq!(t.flat_text(), "singer(id, name)");
    }

    #[test]
    fn collection_counts() {
        let mut c = Collection::new();
        c.add_database(concert_db());
        assert_eq!(c.num_databases(), 1);
        assert_eq!(c.num_tables(), 3);
        assert_eq!(c.num_columns(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_rejected() {
        let mut db = DatabaseSchema::new("d");
        db.add_table(TableSchema::new("t"));
        db.add_table(TableSchema::new("t"));
    }

    #[test]
    fn foreign_keys_recorded() {
        let db = concert_db();
        let jt = db.table("singer_in_concert").unwrap();
        assert_eq!(jt.foreign_keys.len(), 2);
        assert_eq!(jt.foreign_keys[0].ref_table, "singer");
    }
}
