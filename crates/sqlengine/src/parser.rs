//! Recursive-descent parser for the supported SQL subset.

use crate::ast::{AggFunc, BinOp, Expr, Join, OrderKey, Projection, Select, SortDir, TableRef};
use crate::error::EngineError;
use crate::lexer::{lex, Sym, Token};
use crate::value::Value;

/// Parse a single SELECT statement.
pub fn parse_select(sql: &str) -> Result<Select, EngineError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let sel = p.select()?;
    p.eat_symbol(Sym::Semicolon); // optional trailing semicolon
    if !p.at_end() {
        return Err(p.err(&format!("unexpected trailing tokens at {}", p.pos)));
    }
    Ok(sel)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: &str) -> EngineError {
        EngineError::Parse { message: message.to_string() }
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume a keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require a keyword.
    fn expect_keyword(&mut self, kw: &str) -> Result<(), EngineError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_symbol(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Sym) -> Result<(), EngineError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {sym:?}, found {:?}", self.peek())))
        }
    }

    /// Consume an identifier (quoted or bare, but not a reserved keyword).
    fn ident(&mut self) -> Result<String, EngineError> {
        match self.next() {
            Some(Token::Ident(s)) => {
                if is_reserved(&s) {
                    Err(self.err(&format!("unexpected keyword {s:?} where identifier expected")))
                } else {
                    Ok(s)
                }
            }
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(self.err(&format!("expected identifier, found {other:?}"))),
        }
    }

    fn select(&mut self) -> Result<Select, EngineError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projections = vec![self.projection()?];
        while self.eat_symbol(Sym::Comma) {
            projections.push(self.projection()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            // INNER JOIN / JOIN
            let saved = self.pos;
            let inner = self.eat_keyword("INNER");
            if self.eat_keyword("JOIN") {
                let table = self.table_ref()?;
                self.expect_keyword("ON")?;
                let on = self.expr()?;
                joins.push(Join { table, on });
            } else {
                if inner {
                    self.pos = saved;
                }
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(Sym::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let dir = if self.eat_keyword("DESC") {
                    SortDir::Desc
                } else {
                    self.eat_keyword("ASC");
                    SortDir::Asc
                };
                order_by.push(OrderKey { expr, dir });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(self.err(&format!("expected LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            projections,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn projection(&mut self) -> Result<Projection, EngineError> {
        if self.eat_symbol(Sym::Star) {
            return Ok(Projection::Wildcard);
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            // bare alias (not a keyword)
            if !is_reserved(s) {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            } else {
                None
            }
        } else {
            None
        };
        Ok(Projection::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, EngineError> {
        let first = self.ident()?;
        let (database, table) =
            if self.eat_symbol(Sym::Dot) { (Some(first), self.ident()?) } else { (None, first) };
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            if !is_reserved(s) {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            } else {
                None
            }
        } else {
            None
        };
        Ok(TableRef { database, table, alias })
    }

    fn expr(&mut self) -> Result<Expr, EngineError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, EngineError> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, EngineError> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] LIKE / IN / BETWEEN
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("LIKE") {
            match self.next() {
                Some(Token::Str(p)) => {
                    return Ok(Expr::Like { expr: Box::new(left), pattern: p, negated })
                }
                other => return Err(self.err(&format!("expected LIKE pattern, got {other:?}"))),
            }
        }
        if self.eat_keyword("IN") {
            self.expect_symbol(Sym::LParen)?;
            if self.at_keyword("SELECT") {
                let sub = self.select()?;
                self.expect_symbol(Sym::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Sym::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            let between =
                Expr::Between { expr: Box::new(left), low: Box::new(low), high: Box::new(high) };
            return Ok(if negated { Expr::Not(Box::new(between)) } else { between });
        }
        if negated {
            return Err(self.err("expected LIKE, IN or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::NotEq)) => Some(BinOp::NotEq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::LtEq)) => Some(BinOp::LtEq),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::GtEq)) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::bin(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.multiplicative()?;
        loop {
            if self.eat_symbol(Sym::Plus) {
                let r = self.multiplicative()?;
                left = Expr::bin(BinOp::Add, left, r);
            } else if self.eat_symbol(Sym::Minus) {
                let r = self.multiplicative()?;
                left = Expr::bin(BinOp::Sub, left, r);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.unary()?;
        loop {
            if self.eat_symbol(Sym::Star) {
                let r = self.unary()?;
                left = Expr::bin(BinOp::Mul, left, r);
            } else if self.eat_symbol(Sym::Slash) {
                let r = self.unary()?;
                left = Expr::bin(BinOp::Div, left, r);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, EngineError> {
        if self.eat_symbol(Sym::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, EngineError> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                if self.at_keyword("SELECT") {
                    let sub = self.select()?;
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sub)));
                }
                let inner = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                // NULL / TRUE / FALSE literals
                if name.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                // aggregate call?
                if let Some(func) = AggFunc::parse(&name) {
                    if matches!(self.peek2(), Some(Token::Symbol(Sym::LParen))) {
                        self.pos += 2; // name + lparen
                        if self.eat_symbol(Sym::Star) {
                            self.expect_symbol(Sym::RParen)?;
                            return Ok(Expr::Aggregate { func, arg: None, distinct: false });
                        }
                        let distinct = self.eat_keyword("DISTINCT");
                        let arg = self.expr()?;
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(Expr::Aggregate { func, arg: Some(Box::new(arg)), distinct });
                    }
                }
                if is_reserved(&name) {
                    return Err(self.err(&format!("unexpected keyword {name:?} in expression")));
                }
                self.pos += 1;
                // qualified column?
                if self.eat_symbol(Sym::Dot) {
                    if self.eat_symbol(Sym::Star) {
                        return Err(self.err("qualified wildcard t.* is not supported"));
                    }
                    let col = self.ident()?;
                    return Ok(Expr::Column { table: Some(name), column: col });
                }
                Ok(Expr::Column { table: None, column: name })
            }
            Some(Token::QuotedIdent(name)) => {
                self.pos += 1;
                if self.eat_symbol(Sym::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column { table: Some(name), column: col });
                }
                Ok(Expr::Column { table: None, column: name })
            }
            other => Err(self.err(&format!("unexpected token {other:?} in expression"))),
        }
    }
}

/// Keywords that cannot serve as bare identifiers/aliases.
fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER",
        "ON", "AS", "AND", "OR", "NOT", "IN", "LIKE", "BETWEEN", "IS", "NULL", "DISTINCT", "ASC",
        "DESC", "TRUE", "FALSE", "UNION", "LEFT", "RIGHT", "OUTER", "CASE", "WHEN", "THEN", "ELSE",
        "END",
    ];
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let s = parse_select("SELECT * FROM singer").unwrap();
        assert!(matches!(s.projections[0], Projection::Wildcard));
        assert_eq!(s.from.table, "singer");
    }

    #[test]
    fn parse_join_with_aliases() {
        let s = parse_select(
            "SELECT s.name FROM singer AS s JOIN singer_in_concert sic ON s.singer_id = sic.singer_id",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.from.alias.as_deref(), Some("s"));
        assert_eq!(s.joins[0].table.alias.as_deref(), Some("sic"));
    }

    #[test]
    fn parse_where_precedence() {
        let s = parse_select("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap();
        // AND binds tighter than OR
        match s.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn parse_group_having_order_limit() {
        let s = parse_select(
            "SELECT city, COUNT(*) AS n FROM t GROUP BY city HAVING COUNT(*) > 2 ORDER BY n DESC, city ASC LIMIT 5",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert_eq!(s.order_by[0].dir, SortDir::Desc);
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn parse_aggregates() {
        let s = parse_select("SELECT COUNT(*), MAX(pop), AVG(DISTINCT x) FROM t").unwrap();
        assert_eq!(s.projections.len(), 3);
        match &s.projections[2] {
            Projection::Expr { expr: Expr::Aggregate { distinct, .. }, .. } => assert!(distinct),
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn parse_in_subquery() {
        let s = parse_select(
            "SELECT river FROM river WHERE traverse IN (SELECT state FROM city WHERE pop = (SELECT MAX(pop) FROM city))",
        )
        .unwrap();
        match s.where_clause.unwrap() {
            Expr::InSubquery { subquery, .. } => {
                assert!(subquery.where_clause.is_some());
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn parse_db_qualified_table() {
        let s = parse_select("SELECT * FROM concert_singer.concert AS c").unwrap();
        assert_eq!(s.from.database.as_deref(), Some("concert_singer"));
        assert_eq!(s.from.table, "concert");
    }

    #[test]
    fn parse_between_and_like() {
        let s =
            parse_select("SELECT a FROM t WHERE y BETWEEN 1 AND 3 AND name LIKE '%ann%'").unwrap();
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parse_is_not_null() {
        let s = parse_select("SELECT a FROM t WHERE b IS NOT NULL").unwrap();
        match s.where_clause.unwrap() {
            Expr::IsNull { negated, .. } => assert!(negated),
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn parse_arithmetic_precedence() {
        let s = parse_select("SELECT a + b * c FROM t").unwrap();
        match &s.projections[0] {
            Projection::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn reject_trailing_garbage() {
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t extra stuff here").is_err());
    }

    #[test]
    fn reject_unsupported_union() {
        assert!(parse_select("SELECT a FROM t UNION SELECT b FROM u").is_err());
    }

    #[test]
    fn parse_not_in_list() {
        let s = parse_select("SELECT a FROM t WHERE x NOT IN (1, 2, 3)").unwrap();
        match s.where_clause.unwrap() {
            Expr::InList { negated, list, .. } => {
                assert!(negated);
                assert_eq!(list.len(), 3);
            }
            other => panic!("wrong: {other:?}"),
        }
    }
}
