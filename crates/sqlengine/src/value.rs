//! Runtime values and their SQL comparison semantics.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Text,
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "REAL"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A runtime SQL value.
///
/// `PartialEq` is strict structural equality (NULL == NULL, no numeric
/// coercion) — use [`Value::sql_cmp`] for SQL comparison semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
}

impl Value {
    pub fn type_of(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to floats); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// SQL equality: NULL equals nothing (including NULL); numeric types
    /// compare by value across Int/Float.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }

    /// SQL ordering; `None` when either side is NULL or types are
    /// incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }

    /// Total ordering used for ORDER BY and result canonicalization:
    /// NULL < Bool < numbers < Text.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            _ => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.partial_cmp(&b).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// Equality for execution-accuracy comparison: like [`Value::sql_eq`] but
    /// NULL == NULL and floats compare with a small tolerance.
    pub fn result_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => {
                    let tol = 1e-6 * a.abs().max(b.abs()).max(1.0);
                    (a - b).abs() <= tol
                }
                _ => false,
            },
        }
    }

    /// Truthiness of a WHERE predicate result; NULL and non-bool are false.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_equals_nothing_in_sql() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(0)));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).sql_eq(&Value::Float(3.5)));
    }

    #[test]
    fn null_equals_null_in_results() {
        assert!(Value::Null.result_eq(&Value::Null));
        assert!(!Value::Null.result_eq(&Value::Int(0)));
    }

    #[test]
    fn float_tolerance_in_results() {
        assert!(Value::Float(1.0).result_eq(&Value::Float(1.0 + 1e-9)));
        assert!(!Value::Float(1.0).result_eq(&Value::Float(1.1)));
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vals = [
            Value::Text("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert!(matches!(vals[1], Value::Bool(_)));
        assert!(matches!(vals.last(), Some(Value::Text(_))));
    }

    #[test]
    fn sql_cmp_null_is_none() {
        assert!(Value::Null.sql_cmp(&Value::Int(1)).is_none());
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(2.0)), Some(Ordering::Less));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(Value::Int(2).is_truthy());
    }
}
