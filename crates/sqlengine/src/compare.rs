//! Execution-accuracy (EX) comparison of query results.
//!
//! Following the paper (§4.1.4) and the standard Spider/Bird evaluation
//! practice, two queries match when their result *multisets* are equal —
//! row order is ignored (ORDER BY exists mostly for LIMIT determinism),
//! column names are ignored, and floats compare with a small tolerance.

use crate::compile::{execute_prepared, PreparedDb};
use crate::error::EngineError;
use crate::exec::{execute, ResultSet};
use crate::storage::Database;

/// Outcome of comparing a predicted query against a gold query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExOutcome {
    /// Both executed and the result multisets match.
    Match,
    /// Both executed but results differ.
    Mismatch,
    /// The predicted query failed to parse or execute.
    PredictedError(String),
    /// The gold query failed (indicates a corpus bug, counted as mismatch).
    GoldError(String),
}

impl ExOutcome {
    pub fn is_match(&self) -> bool {
        matches!(self, ExOutcome::Match)
    }
}

/// Compare two result sets as multisets of rows.
pub fn results_equal(a: &ResultSet, b: &ResultSet) -> bool {
    if a.rows.len() != b.rows.len() {
        return false;
    }
    if a.rows.is_empty() {
        return a.columns.len() == b.columns.len();
    }
    if a.rows[0].len() != b.rows[0].len() {
        return false;
    }
    // Multiset compare via sorted index permutations over borrowed rows —
    // no row clones (this runs once per candidate per repair round).
    let perm = |rs: &ResultSet| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..rs.rows.len()).collect();
        idx.sort_by(|&x, &y| {
            for (a, b) in rs.rows[x].iter().zip(rs.rows[y].iter()) {
                let o = a.total_cmp(b);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        idx
    };
    let (pa, pb) = (perm(a), perm(b));
    pa.iter()
        .zip(pb.iter())
        .all(|(&x, &y)| a.rows[x].iter().zip(b.rows[y].iter()).all(|(va, vb)| va.result_eq(vb)))
}

/// Execute both queries against `db` and compare (execution accuracy).
pub fn execution_match(db: &Database, gold_sql: &str, predicted_sql: &str) -> ExOutcome {
    let gold = match execute(db, gold_sql) {
        Ok(rs) => rs,
        Err(e) => return ExOutcome::GoldError(e.to_string()),
    };
    compare_to_gold(db, &gold, predicted_sql)
}

/// Compare a predicted query against an already-executed gold result.
pub fn compare_to_gold(db: &Database, gold: &ResultSet, predicted_sql: &str) -> ExOutcome {
    match execute(db, predicted_sql) {
        Ok(rs) => {
            if results_equal(gold, &rs) {
                ExOutcome::Match
            } else {
                ExOutcome::Mismatch
            }
        }
        Err(e) => ExOutcome::PredictedError(e.to_string()),
    }
}

/// Gold execution, reusable across multiple predictions.
pub fn execute_gold(db: &Database, gold_sql: &str) -> Result<ResultSet, EngineError> {
    execute(db, gold_sql)
}

/// [`compare_to_gold`] against an already-prepared database — the hot path
/// for eval loops and repair rounds, which execute many queries per
/// database and shouldn't re-intern tables per query.
pub fn compare_to_gold_prepared(
    pdb: &PreparedDb,
    gold: &ResultSet,
    predicted_sql: &str,
) -> ExOutcome {
    match execute_prepared(pdb, predicted_sql) {
        Ok(rs) => {
            if results_equal(gold, &rs) {
                ExOutcome::Match
            } else {
                ExOutcome::Mismatch
            }
        }
        Err(e) => ExOutcome::PredictedError(e.to_string()),
    }
}

/// [`execution_match`] against an already-prepared database.
pub fn execution_match_prepared(
    pdb: &PreparedDb,
    gold_sql: &str,
    predicted_sql: &str,
) -> ExOutcome {
    let gold = match execute_prepared(pdb, gold_sql) {
        Ok(rs) => rs,
        Err(e) => return ExOutcome::GoldError(e.to_string()),
    };
    compare_to_gold_prepared(pdb, &gold, predicted_sql)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DatabaseSchema, TableSchema};
    use crate::value::{DataType, Value};

    fn tiny_db() -> Database {
        let mut schema = DatabaseSchema::new("d");
        schema.add_table(
            TableSchema::new("t").column("a", DataType::Int).column("b", DataType::Text),
        );
        let mut db = Database::from_schema(&schema);
        for (a, b) in [(1, "x"), (2, "y"), (3, "x")] {
            db.insert("t", vec![Value::Int(a), Value::Text(b.into())]).unwrap();
        }
        db
    }

    #[test]
    fn identical_queries_match() {
        let db = tiny_db();
        assert!(execution_match(&db, "SELECT a FROM t", "SELECT a FROM t").is_match());
    }

    #[test]
    fn order_is_ignored() {
        let db = tiny_db();
        assert!(execution_match(
            &db,
            "SELECT a FROM t ORDER BY a ASC",
            "SELECT a FROM t ORDER BY a DESC"
        )
        .is_match());
    }

    #[test]
    fn different_filters_mismatch() {
        let db = tiny_db();
        assert_eq!(
            execution_match(&db, "SELECT a FROM t WHERE a > 1", "SELECT a FROM t"),
            ExOutcome::Mismatch
        );
    }

    #[test]
    fn duplicates_matter() {
        let db = tiny_db();
        // b has 'x' twice; DISTINCT changes the multiset
        assert_eq!(
            execution_match(&db, "SELECT b FROM t", "SELECT DISTINCT b FROM t"),
            ExOutcome::Mismatch
        );
    }

    #[test]
    fn predicted_error_reported() {
        let db = tiny_db();
        assert!(matches!(
            execution_match(&db, "SELECT a FROM t", "SELECT nope FROM t"),
            ExOutcome::PredictedError(_)
        ));
    }

    #[test]
    fn gold_error_reported() {
        let db = tiny_db();
        assert!(matches!(
            execution_match(&db, "SELECT nope FROM t", "SELECT a FROM t"),
            ExOutcome::GoldError(_)
        ));
    }

    #[test]
    fn column_name_differences_ignored() {
        let db = tiny_db();
        assert!(execution_match(&db, "SELECT a FROM t", "SELECT a AS z FROM t").is_match());
    }

    #[test]
    fn int_float_equivalence() {
        let db = tiny_db();
        assert!(execution_match(&db, "SELECT a * 1 FROM t", "SELECT a * 1.0 FROM t").is_match());
    }
}
