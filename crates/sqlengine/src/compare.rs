//! Execution-accuracy (EX) comparison of query results.
//!
//! Following the paper (§4.1.4) and the standard Spider/Bird evaluation
//! practice, two queries match when their result *multisets* are equal —
//! row order is ignored (ORDER BY exists mostly for LIMIT determinism),
//! column names are ignored, and floats compare with a small tolerance.

use crate::error::EngineError;
use crate::exec::{execute, ResultSet};
use crate::storage::Database;

/// Outcome of comparing a predicted query against a gold query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExOutcome {
    /// Both executed and the result multisets match.
    Match,
    /// Both executed but results differ.
    Mismatch,
    /// The predicted query failed to parse or execute.
    PredictedError(String),
    /// The gold query failed (indicates a corpus bug, counted as mismatch).
    GoldError(String),
}

impl ExOutcome {
    pub fn is_match(&self) -> bool {
        matches!(self, ExOutcome::Match)
    }
}

/// Compare two result sets as multisets of rows.
pub fn results_equal(a: &ResultSet, b: &ResultSet) -> bool {
    if a.rows.len() != b.rows.len() {
        return false;
    }
    if a.rows.is_empty() {
        return a.columns.len() == b.columns.len();
    }
    if a.rows[0].len() != b.rows[0].len() {
        return false;
    }
    // Multiset compare via canonical sort on both sides.
    let canon = |rs: &ResultSet| -> Vec<Vec<crate::value::Value>> {
        let mut rows = rs.rows.clone();
        rows.sort_by(|x, y| {
            for (a, b) in x.iter().zip(y.iter()) {
                let o = a.total_cmp(b);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    };
    let (ra, rb) = (canon(a), canon(b));
    ra.iter().zip(rb.iter()).all(|(x, y)| x.iter().zip(y.iter()).all(|(va, vb)| va.result_eq(vb)))
}

/// Execute both queries against `db` and compare (execution accuracy).
pub fn execution_match(db: &Database, gold_sql: &str, predicted_sql: &str) -> ExOutcome {
    let gold = match execute(db, gold_sql) {
        Ok(rs) => rs,
        Err(e) => return ExOutcome::GoldError(e.to_string()),
    };
    compare_to_gold(db, &gold, predicted_sql)
}

/// Compare a predicted query against an already-executed gold result.
pub fn compare_to_gold(db: &Database, gold: &ResultSet, predicted_sql: &str) -> ExOutcome {
    match execute(db, predicted_sql) {
        Ok(rs) => {
            if results_equal(gold, &rs) {
                ExOutcome::Match
            } else {
                ExOutcome::Mismatch
            }
        }
        Err(e) => ExOutcome::PredictedError(e.to_string()),
    }
}

/// Gold execution, reusable across multiple predictions.
pub fn execute_gold(db: &Database, gold_sql: &str) -> Result<ResultSet, EngineError> {
    execute(db, gold_sql)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DatabaseSchema, TableSchema};
    use crate::value::{DataType, Value};

    fn tiny_db() -> Database {
        let mut schema = DatabaseSchema::new("d");
        schema.add_table(
            TableSchema::new("t").column("a", DataType::Int).column("b", DataType::Text),
        );
        let mut db = Database::from_schema(&schema);
        for (a, b) in [(1, "x"), (2, "y"), (3, "x")] {
            db.insert("t", vec![Value::Int(a), Value::Text(b.into())]).unwrap();
        }
        db
    }

    #[test]
    fn identical_queries_match() {
        let db = tiny_db();
        assert!(execution_match(&db, "SELECT a FROM t", "SELECT a FROM t").is_match());
    }

    #[test]
    fn order_is_ignored() {
        let db = tiny_db();
        assert!(execution_match(
            &db,
            "SELECT a FROM t ORDER BY a ASC",
            "SELECT a FROM t ORDER BY a DESC"
        )
        .is_match());
    }

    #[test]
    fn different_filters_mismatch() {
        let db = tiny_db();
        assert_eq!(
            execution_match(&db, "SELECT a FROM t WHERE a > 1", "SELECT a FROM t"),
            ExOutcome::Mismatch
        );
    }

    #[test]
    fn duplicates_matter() {
        let db = tiny_db();
        // b has 'x' twice; DISTINCT changes the multiset
        assert_eq!(
            execution_match(&db, "SELECT b FROM t", "SELECT DISTINCT b FROM t"),
            ExOutcome::Mismatch
        );
    }

    #[test]
    fn predicted_error_reported() {
        let db = tiny_db();
        assert!(matches!(
            execution_match(&db, "SELECT a FROM t", "SELECT nope FROM t"),
            ExOutcome::PredictedError(_)
        ));
    }

    #[test]
    fn gold_error_reported() {
        let db = tiny_db();
        assert!(matches!(
            execution_match(&db, "SELECT nope FROM t", "SELECT a FROM t"),
            ExOutcome::GoldError(_)
        ));
    }

    #[test]
    fn column_name_differences_ignored() {
        let db = tiny_db();
        assert!(execution_match(&db, "SELECT a FROM t", "SELECT a AS z FROM t").is_match());
    }

    #[test]
    fn int_float_equivalence() {
        let db = tiny_db();
        assert!(execution_match(&db, "SELECT a * 1 FROM t", "SELECT a * 1.0 FROM t").is_match());
    }
}
