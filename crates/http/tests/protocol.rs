//! Protocol-conformance battery over a real socket: keep-alive reuse,
//! pipelined sequential requests, truncation, limit breaches, malformed
//! inputs, the status-code mapping, and a garbage-bytes property test.

mod common;

use std::io::Read;
use std::net::Shutdown;
use std::sync::OnceLock;
use std::time::Duration;

use common::serve;
use dbcopilot_http::{HttpClient, HttpConfig, HttpServer};
use proptest::next_state;
use proptest::prelude::*;
use serde::Value;

fn ask_body(question: &str) -> String {
    format!("{{\"question\":\"{question}\"}}")
}

/// `error.<field>` of a structured error body.
fn error_field(body: &str, field: &str) -> Option<Value> {
    let v: Value = serde_json::from_str(body).ok()?;
    v.get("error")?.get(field).cloned()
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = serve(HttpConfig::new().workers(2));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for i in 0..5 {
        let response = client.post("/ask", &ask_body(&format!("q{i}"))).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        assert!(response.keep_alive, "server should offer keep-alive");
        assert!(response.body.contains(&format!("SELECT 'q{i}'")), "{}", response.body);
    }
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let stats = server.stats();
    assert_eq!(stats.accepted, 1, "all six requests rode one connection");
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.responses_with(200), 6);
}

#[test]
fn pipelined_sequential_requests_answer_in_order() {
    let server = serve(HttpConfig::new().workers(1));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let body = ask_body("pipelined");
    let two = format!(
        "GET /healthz HTTP/1.1\r\n\r\nPOST /ask HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    client.send_raw(two.as_bytes()).unwrap();
    let first = client.read_response().unwrap();
    assert_eq!(first.status, 200);
    assert!(first.body.contains("\"status\":\"ok\""), "{}", first.body);
    let second = client.read_response().unwrap();
    assert_eq!(second.status, 200);
    assert!(second.body.contains("SELECT 'pipelined'"), "{}", second.body);
    assert_eq!(server.stats().accepted, 1);
}

#[test]
fn truncated_request_line_closes_without_a_response() {
    let server = serve(HttpConfig::new().workers(1).read_timeout(Duration::from_millis(200)));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    client.send_raw(b"GET /hea").unwrap();
    client.stream().shutdown(Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    client.stream().try_clone().unwrap().read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "mid-request EOF gets no response, got {rest:?}");
    // ...and the server is still serving.
    let mut next = HttpClient::connect(server.addr()).unwrap();
    assert_eq!(next.get("/healthz").unwrap().status, 200);
}

#[test]
fn oversized_head_answers_431() {
    let server = serve(HttpConfig::new().workers(1).max_head_bytes(256));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let huge = format!("GET /healthz HTTP/1.1\r\nx-pad: {}\r\n\r\n", "y".repeat(1000));
    client.send_raw(huge.as_bytes()).unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 431);
    assert!(!response.keep_alive, "protocol errors close the connection");
    assert_eq!(error_field(&response.body, "stage"), Some(Value::String("protocol".into())));
}

#[test]
fn too_many_headers_answer_431() {
    let server = serve(HttpConfig::new().workers(1).max_headers(4));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let mut request = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..10 {
        request.push_str(&format!("x-h{i}: {i}\r\n"));
    }
    request.push_str("\r\n");
    client.send_raw(request.as_bytes()).unwrap();
    assert_eq!(client.read_response().unwrap().status, 431);
}

#[test]
fn oversized_declared_body_answers_413_without_reading_it() {
    let server = serve(HttpConfig::new().workers(1).max_body_bytes(64));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    // Head only — the 1000-byte body is never sent; the server must reject
    // from the declaration alone instead of waiting for bytes.
    client.send_raw(b"POST /ask HTTP/1.1\r\ncontent-length: 1000\r\n\r\n").unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 413);
    let v: Value = serde_json::from_str(&response.body).unwrap();
    let declared = v.get("error").and_then(|e| e.get("declared")).cloned();
    assert_eq!(declared, Some(Value::Int(1000)));
}

#[test]
fn wrong_methods_and_unknown_paths_get_405_and_404() {
    let server = serve(HttpConfig::new().workers(1));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let response = client.get("/ask").unwrap();
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("POST"));
    let response = client.post("/healthz", "{}").unwrap();
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("GET"));
    let response = client.get("/no/such/endpoint").unwrap();
    assert_eq!(response.status, 404);
    // all of the above are well-formed requests: the connection stays open
    assert_eq!(server.stats().accepted, 1);
}

#[test]
fn malformed_json_answers_400_with_structured_body_and_keeps_the_connection() {
    let server = serve(HttpConfig::new().workers(1));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let response = client.post("/ask", "{oops").unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(error_field(&response.body, "stage"), Some(Value::String("protocol".into())));
    assert_eq!(error_field(&response.body, "status"), Some(Value::Int(400)));
    // a body-level 400 is the client's fault, not the connection's
    assert_eq!(client.post("/ask", &ask_body("still here")).unwrap().status, 200);
    let response = client.post("/ask", "{\"question\": 17}").unwrap();
    assert_eq!(response.status, 400, "non-string question");
}

#[test]
fn unsupported_version_transfer_encoding_and_bad_method_map_precisely() {
    let server = serve(HttpConfig::new().workers(1));
    let cases: &[(&str, u16)] = &[
        ("GET /healthz HTTP/2.0\r\n\r\n", 505),
        ("POST /ask HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 501),
        ("get /healthz HTTP/1.1\r\n\r\n", 400),
        ("GET healthz HTTP/1.1\r\n\r\n", 400),
    ];
    for (request, expected) in cases {
        let mut client = HttpClient::connect(server.addr()).unwrap();
        client.send_raw(request.as_bytes()).unwrap();
        let response = client.read_response().unwrap();
        assert_eq!(response.status, *expected, "{request:?}");
        assert!(!response.keep_alive, "{request:?} must close");
    }
}

#[test]
fn pipeline_failures_map_to_their_status_over_the_wire() {
    let server = serve(HttpConfig::new().workers(1));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let response = client.post("/ask", &ask_body("missing db")).unwrap();
    assert_eq!(response.status, 404);
    assert_eq!(error_field(&response.body, "stage"), Some(Value::String("routing".into())));
}

#[test]
fn handler_panic_answers_500_and_closes_only_that_connection() {
    let server = serve(HttpConfig::new().workers(2));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let response = client.post("/ask", &ask_body("panic now")).unwrap();
    assert_eq!(response.status, 500);
    assert_eq!(error_field(&response.body, "stage"), Some(Value::String("panic".into())));
    assert!(!response.keep_alive, "a panicked connection is not reused");
    // the listener and other workers are unaffected
    let mut next = HttpClient::connect(server.addr()).unwrap();
    assert_eq!(next.post("/ask", &ask_body("fine")).unwrap().status, 200);
}

#[test]
fn publish_without_a_publisher_answers_409() {
    let server = serve(HttpConfig::new().workers(1));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let response = client.post("/admin/publish", "{\"tag\":\"v2\"}").unwrap();
    assert_eq!(response.status, 409);
    assert_eq!(error_field(&response.body, "stage"), Some(Value::String("admin".into())));
}

#[test]
fn stats_endpoint_reports_edge_counters() {
    let server = serve(HttpConfig::new().workers(1));
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for _ in 0..3 {
        assert_eq!(client.post("/ask", &ask_body("count me")).unwrap().status, 200);
    }
    let response = client.get("/stats").unwrap();
    assert_eq!(response.status, 200);
    let v = response.json().unwrap();
    let edge = v.get("server").expect("server section");
    assert_eq!(edge.get("accepted"), Some(&Value::Int(1)));
    assert_eq!(edge.get("shed"), Some(&Value::Int(0)));
    let latency = edge.get("latency_us").expect("latency section");
    assert_eq!(latency.get("count"), Some(&Value::Int(3)), "3 handler samples before /stats");
    assert!(v.get("services").is_some(), "services section present (empty for a bare backend)");
}

/// The shared server the garbage property test hammers.
fn garbage_target() -> &'static HttpServer {
    static SERVER: OnceLock<HttpServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        serve(
            HttpConfig::new()
                .workers(2)
                .read_timeout(Duration::from_millis(200))
                .idle_timeout(Duration::from_millis(200)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary byte garbage never panics the server: every connection
    /// ends in a clean close or an `HTTP/1.1` error response, and the
    /// server keeps serving afterwards.
    #[test]
    fn arbitrary_garbage_never_kills_the_server(seed in 0u64..u64::MAX) {
        let server = garbage_target();
        let mut state = seed;
        let len = (next_state(&mut state) % 300) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (next_state(&mut state) & 0xff) as u8).collect();

        let mut client = HttpClient::connect(server.addr()).unwrap();
        // Ignore write failures: the server may legitimately slam the door
        // mid-write (e.g. garbage that parses as an oversized head).
        let _ = client.send_raw(&bytes);
        let _ = client.stream().shutdown(Shutdown::Write);
        let mut answer = Vec::new();
        let _ = client.stream().try_clone().unwrap().read_to_end(&mut answer);
        prop_assert!(
            answer.is_empty() || answer.starts_with(b"HTTP/1.1 "),
            "garbage got a non-HTTP reply: {:?} -> {:?}",
            &bytes[..bytes.len().min(40)],
            &answer[..answer.len().min(40)]
        );

        let mut probe = HttpClient::connect(server.addr()).unwrap();
        prop_assert!(probe.get("/healthz").unwrap().status == 200, "server died");
    }
}
