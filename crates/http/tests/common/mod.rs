//! Shared fixtures for the protocol/overload suites: a scriptable
//! in-process backend and a canned successful report.
#![allow(dead_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dbcopilot_graph::QuerySchema;
use dbcopilot_http::{Dispatcher, HttpConfig, HttpServer};
use dbcopilot_serve::{Answer, AskError, AskOutcome, AskReport, RoutingError, StageTimings};
use dbcopilot_sqlengine::ResultSet;

/// A minimal successful pipeline outcome echoing the question.
pub fn ok_report(question: &str) -> AskReport {
    AskReport {
        question: question.to_string(),
        answer: Answer {
            schema: QuerySchema::new("testdb", vec!["t".into()]),
            sql: format!("SELECT '{question}'"),
            result: ResultSet {
                columns: vec!["echo".into()],
                rows: vec![vec![dbcopilot_sqlengine::Value::Text(question.to_string())]],
            },
            recovered_errors: Vec::new(),
        },
        candidates: Vec::new(),
        chosen: 0,
        attempts: Vec::new(),
        timings: StageTimings::default(),
    }
}

/// Scriptable backend: echoes questions, optionally sleeping per request.
/// Questions starting with `"missing"` fail the routing stage (→ 404 on
/// the wire); questions starting with `"panic"` panic in the handler.
pub struct EchoBackend {
    pub delay: Duration,
    pub asked: AtomicU64,
}

impl EchoBackend {
    pub fn fast() -> Self {
        EchoBackend { delay: Duration::ZERO, asked: AtomicU64::new(0) }
    }

    pub fn slow(delay: Duration) -> Self {
        EchoBackend { delay, asked: AtomicU64::new(0) }
    }
}

impl Dispatcher for EchoBackend {
    fn ask(&self, question: &str) -> Arc<AskOutcome> {
        self.asked.fetch_add(1, Ordering::Relaxed);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        if question.starts_with("panic") {
            panic!("scripted handler panic");
        }
        if question.starts_with("missing") {
            return Arc::new(Err(AskError::Routing(RoutingError {
                question: question.to_string(),
            })));
        }
        Arc::new(Ok(ok_report(question)))
    }
}

/// Bind an [`EchoBackend`]-backed server on an ephemeral port.
pub fn serve(cfg: HttpConfig) -> HttpServer {
    HttpServer::bind("127.0.0.1:0", EchoBackend::fast(), cfg).expect("bind ephemeral port")
}
