//! Overload and lifecycle battery: admission-control shedding under
//! saturation, graceful drain with zero dropped in-flight requests,
//! slow-loris eviction with slot reuse, and hot swap driven over HTTP.

mod common;

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{ok_report, EchoBackend};
use dbcopilot_http::{HttpClient, HttpConfig, HttpServer, ServiceApp};
use dbcopilot_retrieval::{RoutingResult, SchemaRouter};
use dbcopilot_serve::{
    AskError, AskOptions, AskReport, AskService, QueryPipeline, RouterService, ServiceConfig,
};
use serde::Value;

fn ask_body(question: &str) -> String {
    format!("{{\"question\":\"{question}\"}}")
}

/// What one load client observed: a status, or transport breakage.
type ClientResult = Result<(u16, Option<String>), String>;

/// Fire `n` single-request clients at once; returns each client's status
/// and `Retry-After` header.
fn fire(addr: std::net::SocketAddr, n: usize, question: &str) -> Vec<ClientResult> {
    let mut results = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let body = ask_body(&format!("{question} {i}"));
                scope.spawn(move || -> ClientResult {
                    let mut client =
                        HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    let response =
                        client.post("/ask", &body).map_err(|e| format!("request: {e}"))?;
                    Ok((response.status, response.header("retry-after").map(String::from)))
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("client thread"));
        }
    });
    results
}

#[test]
fn saturation_sheds_429_with_retry_after_and_admitted_requests_complete() {
    let server = HttpServer::bind(
        "127.0.0.1:0",
        EchoBackend::slow(Duration::from_millis(150)),
        HttpConfig::new().workers(2).backlog(1).retry_after_secs(7),
    )
    .unwrap();

    // 12 simultaneous clients against capacity 3 (2 workers + 1 backlog):
    // the surplus must be shed, everything admitted must complete.
    let results = fire(server.addr(), 12, "overload");
    let mut ok = 0;
    let mut shed = 0;
    for result in &results {
        match result {
            Ok((200, _)) => ok += 1,
            Ok((429, retry_after)) => {
                shed += 1;
                assert_eq!(retry_after.as_deref(), Some("7"), "429 must carry Retry-After");
            }
            other => panic!("unexpected client outcome: {other:?}"),
        }
    }
    assert_eq!(ok + shed, 12, "every client got a definite answer");
    assert!(shed > 0, "12 clients against capacity 3 must shed");
    assert!(ok >= 3, "admitted requests all completed, got {ok}");

    let stats = server.stats();
    assert_eq!(stats.shed, shed as u64);
    assert_eq!(stats.responses_with(429), shed as u64);
    assert_eq!(stats.responses_with(200), ok as u64);
}

#[test]
fn graceful_shutdown_answers_every_admitted_request_and_releases_the_port() {
    let server = HttpServer::bind(
        "127.0.0.1:0",
        EchoBackend::slow(Duration::from_millis(100)),
        HttpConfig::new().workers(2).backlog(8),
    )
    .unwrap();
    let addr = server.addr();

    let clients = std::thread::spawn(move || fire(addr, 6, "draining"));
    // Wait until the accept loop has admitted all six (a finished TCP
    // handshake alone can still be sitting un-accepted in the kernel
    // backlog), then pull the plug with most of them still in flight.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().accepted < 6 {
        assert!(Instant::now() < deadline, "clients never got admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.shutdown();

    let results = clients.join().expect("client pack");
    let mut answered = 0;
    for result in results {
        match result {
            Ok((200, _)) | Ok((429, _)) => answered += 1,
            other => panic!("dropped in-flight request: {other:?}"),
        }
    }
    assert_eq!(answered, 6, "zero dropped across the drain");
    assert_eq!(stats.in_flight, 0, "drain leaves nothing in flight");

    // The port is actually released, not leaked to a lingering listener.
    TcpListener::bind(addr).expect("port rebindable after shutdown");
}

#[test]
fn slow_loris_client_is_evicted_with_408_and_the_slot_is_reused() {
    let server = HttpServer::bind(
        "127.0.0.1:0",
        EchoBackend::fast(),
        HttpConfig::new()
            .workers(1)
            .backlog(0)
            .read_timeout(Duration::from_millis(400))
            .idle_timeout(Duration::from_millis(2000)),
    )
    .unwrap();

    // The loris: opens the only slot and drips half a request line.
    let mut loris = HttpClient::connect(server.addr()).unwrap();
    loris.send_raw(b"GET /heal").unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // While the loris holds the slot, the next client is shed — the slot is
    // genuinely occupied.
    let mut crowded_out = HttpClient::connect(server.addr()).unwrap();
    let crowded_out = crowded_out.post("/ask", &ask_body("crowded")).unwrap();
    assert_eq!(crowded_out.status, 429, "single slot held by the stalled client");

    // The eviction: no progress before the read deadline → 408, close.
    let evicted = Instant::now();
    let response = loris.read_response().unwrap();
    assert_eq!(response.status, 408);
    assert!(!response.keep_alive);
    assert!(
        evicted.elapsed() < Duration::from_secs(2),
        "eviction must come from the read deadline, not a hang"
    );

    // Regression core: the freed slot serves the next client.
    let mut next = HttpClient::connect(server.addr()).unwrap();
    let response = next.post("/ask", &ask_body("after eviction")).unwrap();
    assert_eq!(response.status, 200, "slot reused after evicting the loris");
    assert_eq!(server.stats().responses_with(408), 1);
}

// ---------------------------------------------------------------------
// hot swap over HTTP
// ---------------------------------------------------------------------

/// A router whose answers are stamped with its version tag.
struct TaggedRouter {
    tag: String,
}

impl SchemaRouter for TaggedRouter {
    fn name(&self) -> &str {
        &self.tag
    }

    fn route(&self, _question: &str, _top_tables: usize) -> RoutingResult {
        RoutingResult {
            tables: vec![(self.tag.clone(), "t".into(), 1.0)],
            databases: vec![(self.tag.clone(), 1.0)],
        }
    }
}

/// A pipeline stub so the [`ServiceApp`] has an ask front too.
struct EchoPipeline;

impl QueryPipeline for EchoPipeline {
    fn ask_with(&self, question: &str, _opts: &AskOptions) -> Result<AskReport, AskError> {
        Ok(ok_report(question))
    }
}

#[test]
fn hot_swap_over_http_bumps_generation_and_stops_serving_stale_routes() {
    let app = ServiceApp::new(
        AskService::from_pipeline(EchoPipeline, AskOptions::new(), ServiceConfig::default()),
        RouterService::from_router(TaggedRouter { tag: "v1".into() }, ServiceConfig::default()),
    )
    .with_publisher(|spec: &Value| {
        let tag =
            spec.get("tag").and_then(Value::as_str).ok_or("publish spec needs a \"tag\" string")?;
        Ok(Arc::new(TaggedRouter { tag: tag.to_string() }))
    });
    let server = HttpServer::bind("127.0.0.1:0", app, HttpConfig::new().workers(2)).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // v1 serves and populates the route cache.
    for _ in 0..2 {
        let response = client.post("/route", &ask_body("which db?")).unwrap();
        assert_eq!(response.status, 200);
        assert!(response.body.contains("\"database\":\"v1\""), "{}", response.body);
    }
    let health = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(health.get("generation"), Some(&Value::Int(1)));

    // A malformed publish is rejected without swapping anything.
    let response = client.post("/admin/publish", "{\"nope\":1}").unwrap();
    assert_eq!(response.status, 409, "{}", response.body);

    // The real publish bumps the generation...
    let response = client.post("/admin/publish", "{\"tag\":\"v2\"}").unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(response.json().unwrap().get("generation"), Some(&Value::Int(2)));

    // ...which /stats reflects...
    let stats = client.get("/stats").unwrap().json().unwrap();
    let route_stats =
        stats.get("services").and_then(|s| s.get("route")).expect("route service stats");
    assert_eq!(route_stats.get("generation"), Some(&Value::Int(2)));

    // ...and stale v1 cache entries stop being served immediately.
    let response = client.post("/route", &ask_body("which db?")).unwrap();
    assert_eq!(response.status, 200);
    assert!(response.body.contains("\"database\":\"v2\""), "stale cache served: {}", response.body);
}
