//! The JSON wire format: request/response bodies for every endpoint, and
//! the mapping from the typed [`AskError`] taxonomy onto HTTP status codes.
//!
//! | pipeline stage failure  | status | meaning on the wire                     |
//! |-------------------------|--------|-----------------------------------------|
//! | [`AskError::Routing`]   | 404    | no candidate schema for the question     |
//! | [`AskError::Prompt`]    | 410    | routed candidates no longer resolve (stale router) |
//! | [`AskError::Generation`]| 422    | question could not be grounded into SQL  |
//! | [`AskError::Execution`] | 500    | every generated SQL failed to execute    |
//!
//! Every error body has one stable shape:
//! `{"error": {"stage": "...", "status": N, "message": "...", ...detail}}`
//! — protocol-level failures use stage `"protocol"`, admission-control
//! rejections stage `"admission"`, handler panics stage `"panic"`.
//!
//! All rendering goes through the vendored `serde_json`, so a body built
//! here is byte-identical to the body built anywhere else from the same
//! outcome — which is what lets `exp_table5` assert HTTP-served answers
//! equal direct `ask` results byte for byte.

use serde::Value;

use dbcopilot_retrieval::RoutingResult;
use dbcopilot_serve::{AskError, AskOutcome, AskReport, ServiceStats};

/// Shorthand: an object value from `(key, value)` pairs.
pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: impl Into<String>) -> Value {
    Value::String(text.into())
}

/// Serialize a wire value, degrading to a stable error body instead of
/// panicking: wire values are built from strings and integers only, so
/// failure is unreachable today — but a degraded-yet-valid response beats
/// killing the worker if that ever changes.
pub(crate) fn render(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| {
        concat!(
            "{\"error\":{\"stage\":\"wire\",\"status\":500,",
            "\"message\":\"response serialization failed\"}}"
        )
        .to_string()
    })
}

/// The request body for `POST /ask` and `POST /route`.
pub fn question_body(question: &str) -> String {
    render(&obj(vec![("question", s(question))]))
}

/// Extract the `"question"` string from a request body, or describe why it
/// is unusable (the message lands in a 400 response).
pub fn parse_question(body: &[u8]) -> Result<String, String> {
    let value: Value =
        serde_json::from_slice(body).map_err(|e| format!("body is not valid JSON: {e}"))?;
    match value.get("question") {
        Some(Value::String(q)) => Ok(q.clone()),
        Some(_) => Err("\"question\" must be a string".into()),
        None => Err("body must be a JSON object with a \"question\" field".into()),
    }
}

/// One stable error-body shape for every failure the edge reports.
pub fn error_body(stage: &str, status: u16, message: &str, detail: Vec<(&str, Value)>) -> String {
    let mut fields =
        vec![("stage", s(stage)), ("status", Value::UInt(status as u64)), ("message", s(message))];
    fields.extend(detail);
    render(&obj(vec![("error", obj(fields))]))
}

/// Status code for a typed pipeline failure.
pub fn ask_status(error: &AskError) -> u16 {
    match error {
        AskError::Routing(_) => 404,
        AskError::Prompt(_) => 410,
        AskError::Generation(_) => 422,
        AskError::Execution(_) => 500,
        _ => 500,
    }
}

fn sql_value(v: &dbcopilot_sqlengine::Value) -> Value {
    use dbcopilot_sqlengine::Value as V;
    match v {
        V::Null => Value::Null,
        V::Int(n) => Value::Int(*n),
        V::Float(f) => Value::Float(*f),
        V::Text(t) => s(t.clone()),
        V::Bool(b) => Value::Bool(*b),
    }
}

fn report_body(report: &AskReport) -> String {
    let answer = &report.answer;
    let schema = obj(vec![
        ("database", s(answer.schema.database.clone())),
        ("tables", Value::Array(answer.schema.tables.iter().map(|t| s(t.clone())).collect())),
    ]);
    let result = obj(vec![
        ("columns", Value::Array(answer.result.columns.iter().map(|c| s(c.clone())).collect())),
        (
            "rows",
            Value::Array(
                answer
                    .result
                    .rows
                    .iter()
                    .map(|row| Value::Array(row.iter().map(sql_value).collect()))
                    .collect(),
            ),
        ),
    ]);
    render(&obj(vec![
        ("question", s(report.question.clone())),
        ("schema", schema),
        ("sql", s(answer.sql.clone())),
        ("result", result),
        (
            "recovered_errors",
            Value::Array(answer.recovered_errors.iter().map(|e| s(e.to_string())).collect()),
        ),
        ("chosen", Value::UInt(report.chosen as u64)),
        ("candidates", Value::UInt(report.candidates.len() as u64)),
        ("recovered", Value::Bool(report.recovered())),
    ]))
}

fn ask_error_body(error: &AskError) -> String {
    let status = ask_status(error);
    let detail: Vec<(&str, Value)> = match error {
        AskError::Routing(e) => vec![("question", s(e.question.clone()))],
        AskError::Prompt(e) => vec![("candidates", Value::UInt(e.candidates as u64))],
        AskError::Generation(e) => vec![("candidates", Value::UInt(e.candidates as u64))],
        AskError::Execution(e) => vec![
            ("attempts", Value::UInt(e.attempts.len() as u64)),
            ("last_error", s(e.last.to_string())),
        ],
        _ => Vec::new(),
    };
    error_body(error.stage(), status, &error.to_string(), detail)
}

/// `(status, body)` for a `POST /ask` outcome. Timings are deliberately
/// excluded: the body is a pure function of the outcome, so served and
/// direct answers compare byte for byte.
pub fn ask_response(outcome: &AskOutcome) -> (u16, String) {
    match outcome {
        Ok(report) => (200, report_body(report)),
        Err(error) => (ask_status(error), ask_error_body(error)),
    }
}

/// `(status, body)` for a `POST /route` result.
pub fn route_response(question: &str, routing: &RoutingResult) -> (u16, String) {
    let databases = routing
        .databases
        .iter()
        .map(|(db, score)| {
            obj(vec![("database", s(db.clone())), ("score", Value::Float(*score as f64))])
        })
        .collect();
    let tables = routing
        .tables
        .iter()
        .map(|(db, table, score)| {
            obj(vec![
                ("database", s(db.clone())),
                ("table", s(table.clone())),
                ("score", Value::Float(*score as f64)),
            ])
        })
        .collect();
    let body = render(&obj(vec![
        ("question", s(question)),
        ("databases", Value::Array(databases)),
        ("tables", Value::Array(tables)),
    ]));
    (200, body)
}

/// Serving counters of one backing service, for `/stats`.
pub fn service_stats_value(stats: &ServiceStats) -> Value {
    let hits = stats.cache_hits as f64;
    let lookups = (stats.cache_hits + stats.cache_misses).max(1) as f64;
    obj(vec![
        ("cache_hits", Value::UInt(stats.cache_hits)),
        ("cache_misses", Value::UInt(stats.cache_misses)),
        ("cache_hit_rate", Value::Float(hits / lookups)),
        ("cached", Value::UInt(stats.cached as u64)),
        ("batches", Value::UInt(stats.batches)),
        ("computed", Value::UInt(stats.computed)),
        ("max_batch_observed", Value::UInt(stats.max_batch_observed)),
        ("queue_depth", Value::UInt(stats.queue_depth)),
        ("generation", Value::UInt(stats.generation)),
        (
            "shards",
            Value::Array(
                stats
                    .shards
                    .iter()
                    .map(|sh| {
                        obj(vec![
                            ("databases", Value::UInt(sh.databases as u64)),
                            ("loaded", Value::Bool(sh.loaded)),
                            ("routes", Value::UInt(sh.routes)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcopilot_graph::QuerySchema;
    use dbcopilot_serve::{
        Answer, ExecutionError, PromptError, RoutingError, ScoredCandidate, StageTimings,
    };
    use dbcopilot_sqlengine::{EngineError, ResultSet};

    fn report() -> AskReport {
        AskReport {
            question: "how many cities?".into(),
            answer: Answer {
                schema: QuerySchema::new("world", vec!["city".into()]),
                sql: "SELECT COUNT(*) FROM city".into(),
                result: ResultSet {
                    columns: vec!["COUNT(*)".into()],
                    rows: vec![vec![dbcopilot_sqlengine::Value::Int(7)]],
                },
                recovered_errors: vec![EngineError::Parse { message: "earlier try".into() }],
            },
            candidates: vec![ScoredCandidate {
                schema: QuerySchema::new("world", vec!["city".into()]),
                logp: -0.25,
            }],
            chosen: 0,
            attempts: Vec::new(),
            timings: StageTimings::default(),
        }
    }

    #[test]
    fn ask_success_body_is_stable_and_complete() {
        let (status, body) = ask_response(&Ok(report()));
        assert_eq!(status, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.get("sql").and_then(Value::as_str), Some("SELECT COUNT(*) FROM city"));
        assert_eq!(
            v.get("schema").and_then(|s| s.get("database")).and_then(Value::as_str),
            Some("world")
        );
        let rows = v.get("result").and_then(|r| r.get("rows")).and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(body.contains("\"recovered_errors\":[\"parse error: earlier try\"]"), "{body}");
        // byte-stable: the same outcome renders identically every time
        assert_eq!(body, ask_response(&Ok(report())).1);
    }

    #[test]
    fn ask_errors_map_stage_to_status() {
        let cases: Vec<(AskError, u16)> = vec![
            (AskError::Routing(RoutingError { question: "q".into() }), 404),
            (AskError::Prompt(PromptError { candidates: 3 }), 410),
            (
                AskError::Execution(ExecutionError {
                    attempts: Vec::new(),
                    last: EngineError::Eval { message: "div by zero".into() },
                }),
                500,
            ),
        ];
        for (error, expected) in cases {
            let (status, body) = ask_response(&Err(error.clone()));
            assert_eq!(status, expected, "{error}");
            let v: Value = serde_json::from_str(&body).unwrap();
            let e = v.get("error").expect("structured error body");
            assert_eq!(e.get("stage").and_then(Value::as_str), Some(error.stage()));
            // The parser reads non-negative numbers back as Int.
            let status_value = e.get("status").expect("status field");
            assert!(
                matches!(status_value, Value::Int(n) if *n == expected as i64),
                "status {status_value:?}"
            );
        }
    }

    #[test]
    fn question_bodies_round_trip_and_reject_junk() {
        let body = question_body("what's \"up\"?\n");
        assert_eq!(parse_question(body.as_bytes()).unwrap(), "what's \"up\"?\n");
        assert!(parse_question(b"{").unwrap_err().contains("not valid JSON"));
        assert!(parse_question(b"{\"q\":1}").unwrap_err().contains("question"));
        assert!(parse_question(b"{\"question\":42}").unwrap_err().contains("string"));
    }
}
