//! HTTP/1.1 protocol plumbing: a buffered connection reader with strict
//! limits and per-phase read deadlines, request parsing, and response
//! writing.
//!
//! The parser is deliberately small and strict — it accepts the subset of
//! HTTP/1.1 the DBCopilot edge speaks (`Content-Length` bodies, keep-alive,
//! no chunked transfer coding) and answers everything else with a precise
//! status code instead of guessing:
//!
//! | breach                                   | outcome                  |
//! |------------------------------------------|--------------------------|
//! | head (request line + headers) over budget| [`RequestError::HeadTooLarge`] → 431 |
//! | more than `max_headers` header lines     | [`RequestError::HeadTooLarge`] → 431 |
//! | declared body over budget                | [`RequestError::BodyTooLarge`] → 413 |
//! | malformed request line / header / length | [`RequestError::Bad`] → 400 |
//! | `Transfer-Encoding` present              | [`RequestError::Unsupported`] → 501 |
//! | HTTP version other than 1.0/1.1          | [`RequestError::Version`] → 505 |
//! | no progress before the read deadline     | [`RequestError::Stalled`] → 408 (slow-loris eviction) |
//!
//! Reads go through [`Conn`], which keeps leftover bytes across requests so
//! keep-alive and pipelined-ish sequential requests on one socket parse
//! correctly. Every read phase sets an explicit deadline on the transport
//! ([`Transport::set_read_deadline`]) — a client that connects and then
//! stalls mid-request is evicted when the deadline lapses, never held
//! forever.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A byte stream the protocol layer can read with deadlines. Implemented
/// by [`TcpStream`] (via `set_read_timeout`) and by in-memory streams for
/// tests and benches.
pub trait Transport: Read + Write {
    /// Apply a deadline to subsequent reads (`None` clears it). A read that
    /// makes no progress before the deadline fails with `WouldBlock` or
    /// `TimedOut`.
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// In-memory transport for parser tests and benches: reads from a fixed
/// input, collects writes, ignores deadlines.
pub struct ByteStream {
    input: io::Cursor<Vec<u8>>,
    /// Everything written to the stream (the would-be wire output).
    pub output: Vec<u8>,
}

impl ByteStream {
    pub fn new(input: impl Into<Vec<u8>>) -> Self {
        ByteStream { input: io::Cursor::new(input.into()), output: Vec::new() }
    }
}

impl Read for ByteStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for ByteStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Transport for ByteStream {
    fn set_read_deadline(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }
}

/// Hard ceilings the parser enforces while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Request line + all header lines, bytes.
    pub max_head_bytes: usize,
    /// Header line count.
    pub max_headers: usize,
    /// Declared `Content-Length`, bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_head_bytes: 16 * 1024, max_headers: 64, max_body_bytes: 1024 * 1024 }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`; HTTP/1.0 opt-in).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why [`read_request`] produced no request.
#[derive(Debug)]
pub enum RequestError {
    /// Clean close: the peer disconnected between requests (no bytes of a
    /// new request had arrived). Not an error — the keep-alive loop ends.
    Closed,
    /// No first byte arrived inside the idle window. The caller decides
    /// whether to keep waiting (still inside the keep-alive idle budget) or
    /// close the connection.
    Idle,
    /// The peer disconnected mid-request; there is nothing to respond to.
    Disconnected,
    /// Bytes of a request arrived but the peer stopped making progress
    /// before the read deadline — the slow-loris shape. Respond 408, close.
    Stalled,
    /// Request line + headers exceeded [`Limits::max_head_bytes`] or
    /// [`Limits::max_headers`] → 431.
    HeadTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`] → 413.
    BodyTooLarge { declared: u64 },
    /// Structurally invalid request → 400.
    Bad(String),
    /// `Transfer-Encoding` (chunked uploads) is outside the spoken subset → 501.
    Unsupported(String),
    /// Not HTTP/1.0 or HTTP/1.1 → 505.
    Version(String),
    /// Transport-level failure; close without a response.
    Io(io::Error),
}

/// Buffered reader over a [`Transport`], retaining leftover bytes between
/// requests (keep-alive reuse, pipelined sequential requests).
pub struct Conn<T: Transport> {
    transport: T,
    buf: Vec<u8>,
    start: usize,
}

impl<T: Transport> Conn<T> {
    pub fn new(transport: T) -> Self {
        Conn { transport, buf: Vec::with_capacity(4096), start: 0 }
    }

    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Bytes buffered but not yet consumed.
    fn buffered(&self) -> &[u8] {
        // dbc-lint: allow(panic-free-serving): `start <= buf.len()` is the
        // consume() invariant (debug-asserted there).
        &self.buf[self.start..]
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.buf.len());
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
    }

    /// Read more bytes with a deadline. `Ok(0)` is EOF; a lapsed deadline
    /// surfaces as `WouldBlock`/`TimedOut`.
    fn fill(&mut self, timeout: Duration) -> io::Result<usize> {
        // A zero timeout would mean "no deadline" to the OS; clamp to the
        // smallest representable one so a lapsed budget still times out.
        self.transport.set_read_deadline(Some(timeout.max(Duration::from_millis(1))))?;
        if self.start > 0 && self.buf.len() + 4096 > self.buf.capacity() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.transport.read(&mut chunk) {
                Ok(n) => {
                    // dbc-lint: allow(panic-free-serving): `read` returns
                    // at most the buffer's length.
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Write a full response and flush it.
    pub fn write_response(&mut self, response: &Response, keep_alive: bool) -> io::Result<()> {
        let bytes = response.to_bytes(keep_alive);
        self.transport.write_all(&bytes)?;
        self.transport.flush()
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Locate the end of the header block in `bytes`: the byte index just past
/// the first `\r\n\r\n` (or lenient `\n\n`).
pub(crate) fn find_head_end(bytes: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < bytes.len() {
        // dbc-lint: allow(panic-free-serving): `i < bytes.len()` is the
        // loop condition.
        match bytes[i] {
            b'\n' if bytes.get(i + 1) == Some(&b'\n') => return Some(i + 2),
            b'\n' if bytes.get(i + 1) == Some(&b'\r') && bytes.get(i + 2) == Some(&b'\n') => {
                return Some(i + 3)
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Read and parse one request.
///
/// `idle_timeout` bounds the wait for the request's first byte (keep-alive
/// idling); `read_timeout` is the progress deadline for the rest of the
/// request — once any byte has arrived, the whole head and body must
/// complete before it lapses, or the read fails with
/// [`RequestError::Stalled`].
pub fn read_request<T: Transport>(
    conn: &mut Conn<T>,
    limits: &Limits,
    idle_timeout: Duration,
    read_timeout: Duration,
) -> Result<Request, RequestError> {
    // Phase 1: first byte (or reuse bytes a previous request left over).
    if conn.buffered().is_empty() {
        match conn.fill(idle_timeout) {
            Ok(0) => return Err(RequestError::Closed),
            Ok(_) => {}
            Err(e) if is_timeout(&e) => return Err(RequestError::Idle),
            // A reset between requests is a close, not a protocol error.
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {
                return Err(RequestError::Closed)
            }
            Err(e) => return Err(RequestError::Io(e)),
        }
    }

    // Leading blank lines before the request line are tolerated (RFC 9112
    // §2.2): consume them before framing the head, so they never count
    // toward the head budget or frame an empty head.
    let blank = conn.buffered().iter().take_while(|&&b| b == b'\r' || b == b'\n').count();
    if blank > 0 {
        conn.consume(blank);
        if conn.buffered().is_empty() {
            // Only blank bytes so far; let the caller's idle budget decide
            // how long to keep waiting for a real request line.
            return Err(RequestError::Idle);
        }
    }

    // Phase 2: the head, under one rolling deadline from here on.
    let deadline = Instant::now() + read_timeout;
    let head_end = loop {
        if let Some(end) = find_head_end(conn.buffered()) {
            if end > limits.max_head_bytes {
                return Err(RequestError::HeadTooLarge);
            }
            break end;
        }
        if conn.buffered().len() > limits.max_head_bytes {
            return Err(RequestError::HeadTooLarge);
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(RequestError::Stalled);
        }
        match conn.fill(remaining) {
            Ok(0) => return Err(RequestError::Disconnected),
            Ok(_) => {}
            Err(e) if is_timeout(&e) => return Err(RequestError::Stalled),
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {
                return Err(RequestError::Disconnected)
            }
            Err(e) => return Err(RequestError::Io(e)),
        }
    };

    // dbc-lint: allow(panic-free-serving): `head_end` was returned by
    // find_head_end over this same buffer, so the slice is in bounds.
    let head = conn.buffered()[..head_end].to_vec();
    conn.consume(head_end);
    let head =
        std::str::from_utf8(&head).map_err(|_| RequestError::Bad("head is not UTF-8".into()))?;

    // Leading blank lines before the request line are tolerated (RFC 9112
    // §2.2); everything else must be well-formed.
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = loop {
        match lines.next() {
            Some("") => continue,
            Some(line) => break line,
            None => return Err(RequestError::Bad("empty request head".into())),
        }
    };

    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(RequestError::Bad(format!("malformed request line {request_line:?}"))),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) || method.len() > 16 {
        return Err(RequestError::Bad(format!("malformed method {method:?}")));
    }
    if !path.starts_with('/') {
        return Err(RequestError::Bad(format!("request target {path:?} is not origin-form")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(RequestError::Version(v.to_string())),
        v => return Err(RequestError::Bad(format!("malformed version {v:?}"))),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        if headers.len() >= limits.max_headers {
            return Err(RequestError::HeadTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Bad(format!("bad header {line:?}")))?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(RequestError::Bad(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
        keep_alive: http11,
    };
    let mut request = request;
    if let Some(connection) = request.header("connection") {
        let token = connection.to_ascii_lowercase();
        if token.contains("close") {
            request.keep_alive = false;
        } else if token.contains("keep-alive") {
            request.keep_alive = true;
        }
    }
    if let Some(te) = request.header("transfer-encoding") {
        return Err(RequestError::Unsupported(format!("transfer-encoding: {te}")));
    }

    // Phase 3: the Content-Length body, under the same deadline.
    let declared: u64 = match request.header("content-length") {
        None => 0,
        Some(v) => {
            v.parse().map_err(|_| RequestError::Bad(format!("malformed content-length {v:?}")))?
        }
    };
    if declared > limits.max_body_bytes as u64 {
        return Err(RequestError::BodyTooLarge { declared });
    }
    let declared = declared as usize;
    while conn.buffered().len() < declared {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(RequestError::Stalled);
        }
        match conn.fill(remaining) {
            Ok(0) => return Err(RequestError::Disconnected),
            Ok(_) => {}
            Err(e) if is_timeout(&e) => return Err(RequestError::Stalled),
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {
                return Err(RequestError::Disconnected)
            }
            Err(e) => return Err(RequestError::Io(e)),
        }
    }
    // dbc-lint: allow(panic-free-serving): the read loop above only exits
    // once the buffer holds at least `declared` bytes.
    request.body = conn.buffered()[..declared].to_vec();
    conn.consume(declared);
    Ok(request)
}

// ---------------------------------------------------------------------
// responses
// ---------------------------------------------------------------------

/// A response about to be written: status, extra headers, JSON body.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    /// Extra headers beyond the automatic `Content-Type`,
    /// `Content-Length` and `Connection`.
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response { status, headers: Vec::new(), body }
    }

    pub fn header(mut self, name: &str, value: impl std::fmt::Display) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize to wire bytes, with `Connection: keep-alive`/`close`
    /// reflecting what the server will actually do.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = String::with_capacity(128 + self.body.len());
        out.push_str("HTTP/1.1 ");
        out.push_str(&self.status.to_string());
        out.push(' ');
        out.push_str(reason(self.status));
        out.push_str("\r\n");
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        if !self.body.is_empty() {
            out.push_str("content-type: application/json\r\n");
        }
        out.push_str("content-length: ");
        out.push_str(&self.body.len().to_string());
        out.push_str("\r\n");
        out.push_str(if keep_alive {
            "connection: keep-alive\r\n"
        } else {
            "connection: close\r\n"
        });
        out.push_str("\r\n");
        out.push_str(&self.body);
        out.into_bytes()
    }
}

/// Reason phrase for every status the edge emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(input: &str) -> Result<Request, RequestError> {
        let mut conn = Conn::new(ByteStream::new(input.as_bytes().to_vec()));
        read_request(&mut conn, &Limits::default(), Duration::from_secs(1), Duration::from_secs(1))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /ask HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/ask");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let req = parse("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive, "HTTP/1.0 opts in explicitly");
    }

    #[test]
    fn leading_blank_lines_are_tolerated() {
        let req = parse("\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let two = "GET /healthz HTTP/1.1\r\n\r\nPOST /ask HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let mut conn = Conn::new(ByteStream::new(two.as_bytes().to_vec()));
        let limits = Limits::default();
        let first =
            read_request(&mut conn, &limits, Duration::from_secs(1), Duration::from_secs(1))
                .unwrap();
        assert_eq!(first.path, "/healthz");
        let second =
            read_request(&mut conn, &limits, Duration::from_secs(1), Duration::from_secs(1))
                .unwrap();
        assert_eq!((second.path.as_str(), second.body.as_slice()), ("/ask", b"{}".as_slice()));
    }

    #[test]
    fn limits_map_to_the_right_errors() {
        let limits = Limits { max_head_bytes: 64, max_headers: 2, max_body_bytes: 8 };
        let run = |input: &str| {
            let mut conn = Conn::new(ByteStream::new(input.as_bytes().to_vec()));
            read_request(&mut conn, &limits, Duration::from_secs(1), Duration::from_secs(1))
        };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert!(matches!(run(&long), Err(RequestError::HeadTooLarge)), "oversized head");
        let many = "GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert!(matches!(run(many), Err(RequestError::HeadTooLarge)), "too many headers");
        let body = "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert!(
            matches!(run(body), Err(RequestError::BodyTooLarge { declared: 9 })),
            "oversized body is rejected from the declared length, before reading it"
        );
    }

    #[test]
    fn malformed_inputs_are_bad_requests() {
        for input in [
            "GET\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET noslash HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "GET / FTP/9\r\n\r\n",
        ] {
            assert!(matches!(parse(input), Err(RequestError::Bad(_))), "{input:?}");
        }
        assert!(matches!(parse("GET / HTTP/2.0\r\n\r\n"), Err(RequestError::Version(_))));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::Unsupported(_))
        ));
    }

    #[test]
    fn eof_shapes_are_distinguished() {
        assert!(matches!(parse(""), Err(RequestError::Closed)), "clean close between requests");
        assert!(
            matches!(parse("GET /truncat"), Err(RequestError::Disconnected)),
            "mid-request EOF"
        );
    }

    #[test]
    fn response_bytes_have_framing_headers() {
        let resp = Response::json(200, "{\"ok\":true}".into()).header("retry-after", 2);
        let text = String::from_utf8(resp.to_bytes(true)).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let text = String::from_utf8(Response::json(429, String::new()).to_bytes(false)).unwrap();
        assert!(text.contains("connection: close\r\n"));
        assert!(!text.contains("content-type"), "empty bodies carry no content type");
    }
}
