//! A load generator for the HTTP edge: closed- or open-loop arrivals,
//! skewed key popularity, per-request latency capture.
//!
//! * **Closed loop** — each client issues its next request as soon as the
//!   previous response lands: throughput self-limits to what the server
//!   sustains, so this measures capacity.
//! * **Open loop** — each client issues requests on a fixed schedule
//!   regardless of completions (arrivals don't slow down when the server
//!   does), which is what exposes admission control: past saturation the
//!   server must shed, and the report counts exactly how much.
//!
//! Question selection is skewed toward low indices (configurable
//! exponent), exercising the serving cache the way a natural-language
//! workload would: a hot head of repeated questions over a long tail.
//! Selection is derived per-request from [`split_seed`], so a given
//! `(seed, clients, requests)` triple replays the same request sequence on
//! every run regardless of scheduling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dbcopilot_runtime::split_seed;

use crate::client::HttpClient;
use crate::histogram::Histogram;
use crate::wire;

/// How requests arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Next request right after the previous response (capacity probe).
    Closed,
    /// Fixed schedule at this many requests/second across all clients,
    /// regardless of completions (overload probe).
    Open { rate_per_sec: f64 },
}

/// Load-generator knobs, builder-style.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    pub arrival: Arrival,
    /// Popularity skew: question index = `⌊n · u^skew⌋` for uniform `u` —
    /// 1.0 is uniform, larger concentrates traffic on a hot head.
    pub skew: f64,
    /// Base seed for the deterministic request sequence.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            requests_per_client: 64,
            arrival: Arrival::Closed,
            skew: 2.0,
            seed: 0xdbc0,
        }
    }
}

impl LoadConfig {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n.max(1);
        self
    }

    pub fn requests_per_client(mut self, n: usize) -> Self {
        self.requests_per_client = n;
        self
    }

    pub fn arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    pub fn skew(mut self, skew: f64) -> Self {
        self.skew = skew.max(0.01);
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What a load run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests put on the wire.
    pub issued: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 429 responses (admission-control sheds).
    pub shed: u64,
    /// Non-2xx, non-429 responses (typed pipeline failures etc.).
    pub failed: u64,
    /// Transport-level breakage: unparseable response, unexpected close,
    /// refused reconnect. Zero on a healthy run.
    pub protocol_errors: u64,
    pub elapsed: Duration,
    /// Latency of completed (non-shed) requests, µs.
    pub p50_us: u64,
    pub p95_us: u64,
}

impl LoadReport {
    /// Completed requests (any status) per second of wall clock.
    pub fn achieved_qps(&self) -> f64 {
        let done = (self.ok + self.failed) as f64;
        done / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of issued requests shed with 429.
    pub fn shed_rate(&self) -> f64 {
        self.shed as f64 / (self.issued as f64).max(1.0)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "issued {} | ok {} | shed {} ({:.1}%) | failed {} | protocol errors {} | {:.0} qps | p50 {}µs p95 {}µs",
            self.issued,
            self.ok,
            self.shed,
            self.shed_rate() * 100.0,
            self.failed,
            self.protocol_errors,
            self.achieved_qps(),
            self.p50_us,
            self.p95_us,
        )
    }
}

/// Uniform `u` in [0, 1) from a SplitMix64 draw.
fn unit(seed: u64, stream: u64) -> f64 {
    (split_seed(seed, stream) >> 11) as f64 / (1u64 << 53) as f64
}

/// Skewed question index for request `stream` of the run.
fn pick(n: usize, skew: f64, seed: u64, stream: u64) -> usize {
    let u = unit(seed, stream);
    ((n as f64 * u.powf(skew)) as usize).min(n - 1)
}

/// Drive `POST /ask` at `addr` with `questions`, per `cfg`.
///
/// Clients reconnect transparently when the server closes a connection
/// (shed 429s and error responses close it); every configured request is
/// issued unless the transport breaks.
pub fn run_load(addr: std::net::SocketAddr, questions: &[String], cfg: &LoadConfig) -> LoadReport {
    // dbc-lint: allow(panic-free-serving): precondition on the *test
    // driver's* own arguments, checked before any connection exists.
    assert!(!questions.is_empty(), "load generator needs at least one question");
    let issued = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let protocol_errors = AtomicU64::new(0);
    let latency = Histogram::new();
    let started = Instant::now();

    std::thread::scope(|scope| {
        for client_id in 0..cfg.clients {
            let (issued, ok, shed, failed, protocol_errors, latency) =
                (&issued, &ok, &shed, &failed, &protocol_errors, &latency);
            let cfg = cfg.clone();
            // dbc-lint: allow(no-raw-spawn): load clients must be
            // independent OS threads — pooling them would serialize the
            // concurrency the generator exists to produce.
            scope.spawn(move || {
                let mut client: Option<HttpClient> = None;
                // Open-loop schedule: this client's slice of the global rate.
                let interval = match cfg.arrival {
                    Arrival::Closed => None,
                    Arrival::Open { rate_per_sec } => {
                        Some(Duration::from_secs_f64(cfg.clients as f64 / rate_per_sec.max(1e-6)))
                    }
                };
                let schedule_start = Instant::now();
                for request_no in 0..cfg.requests_per_client {
                    if let Some(interval) = interval {
                        // Arrivals stay on schedule even when responses lag —
                        // never sleep off time the server already consumed.
                        let due = schedule_start + interval * request_no as u32;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                    }
                    let stream = (client_id * cfg.requests_per_client + request_no) as u64;
                    // dbc-lint: allow(panic-free-serving): pick() clamps
                    // with .min(n - 1) and n > 0 was asserted above.
                    let question = &questions[pick(questions.len(), cfg.skew, cfg.seed, stream)];
                    let body = wire::question_body(question);

                    let conn = match client.take() {
                        Some(conn) => conn,
                        None => match HttpClient::connect(addr) {
                            Ok(conn) => conn,
                            Err(_) => {
                                protocol_errors.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        },
                    };
                    let mut conn = conn;
                    issued.fetch_add(1, Ordering::Relaxed);
                    let sent = Instant::now();
                    match conn.post("/ask", &body) {
                        Ok(response) => {
                            match response.status {
                                200..=299 => {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                    latency.record_us(sent.elapsed().as_micros() as u64);
                                }
                                429 => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                    latency.record_us(sent.elapsed().as_micros() as u64);
                                }
                            }
                            if response.keep_alive {
                                client = Some(conn);
                            }
                        }
                        Err(_) => {
                            protocol_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    LoadReport {
        issued: issued.into_inner(),
        ok: ok.into_inner(),
        shed: shed.into_inner(),
        failed: failed.into_inner(),
        protocol_errors: protocol_errors.into_inner(),
        elapsed: started.elapsed(),
        p50_us: latency.p50_us(),
        p95_us: latency.p95_us(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_picks_concentrate_on_the_head_and_replay() {
        let n = 100;
        let head: usize = (0..1000).filter(|&i| pick(n, 3.0, 7, i) < n / 10).count();
        assert!(head > 300, "skew 3.0 should put >30% of traffic on the top decile, got {head}");
        let a: Vec<usize> = (0..50).map(|i| pick(n, 2.0, 42, i)).collect();
        let b: Vec<usize> = (0..50).map(|i| pick(n, 2.0, 42, i)).collect();
        assert_eq!(a, b, "same seed replays the same sequence");
        assert!((0..1000).all(|i| pick(1, 5.0, 1, i) == 0), "single question always index 0");
    }
}
