//! A fixed-bucket, lock-free latency histogram for the `/stats` endpoint
//! and the load generator.
//!
//! Buckets are log-spaced with 4 sub-steps per power of two (≤ ~25%
//! relative error on reported quantiles), covering 1 µs to ~an hour, with
//! a saturating catch-all above that.
//! Recording is one atomic increment; quantiles are nearest-rank over the
//! cumulative counts, reported as the matched bucket's upper bound.

use std::sync::atomic::{AtomicU64, Ordering};

/// 4 sub-buckets per octave over 2^0..2^31 µs.
const OCTAVES: usize = 32;
const SUBS: usize = 4;
const BUCKETS: usize = OCTAVES * SUBS;

/// Concurrent fixed-bucket histogram over microsecond samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a microsecond sample.
///
/// 0–3 µs map to indices 0–3 exactly; from there each octave `o ≥ 2`
/// contributes 4 equal sub-buckets at indices `(o-1)·4 .. (o-1)·4+3`, so
/// the layout is contiguous: `[4,5)[5,6)[6,7)[7,8)[8,10)[10,12)…`.
fn index(us: u64) -> usize {
    if us < SUBS as u64 {
        return us as usize;
    }
    let octave = 63 - us.leading_zeros() as usize; // ≥ 2 here
    if octave >= OCTAVES {
        // Beyond the covered range: everything lands in the final,
        // saturating bucket.
        return BUCKETS - 1;
    }
    let sub = ((us >> (octave - 2)) & 0b11) as usize;
    (octave - 1) * SUBS + sub
}

/// Inclusive upper bound (µs) of a bucket.
fn upper_bound(index: usize) -> u64 {
    if index == BUCKETS - 1 {
        return u64::MAX; // the saturating catch-all
    }
    if index < SUBS {
        return index as u64;
    }
    let (octave, sub) = (index / SUBS + 1, index % SUBS);
    // Sub-bucket `sub` covers [2^o · (1 + sub/4), 2^o · (1 + (sub+1)/4)).
    (1u64 << octave) + ((sub as u64 + 1) << octave) / SUBS as u64 - 1
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
        }
    }

    /// Record one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        // dbc-lint: allow(panic-free-serving): index() saturates into the
        // final bucket, so it is always < BUCKETS.
        self.buckets[index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile (`q` in 0..=1), as the upper bound (µs) of the
    /// bucket holding that rank. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return upper_bound(i);
            }
        }
        upper_bound(BUCKETS - 1)
    }

    /// p50, shorthand for the `/stats` payload.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// p95, shorthand for the `/stats` payload.
    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_the_sample() {
        let mut last = 0;
        for i in 1..BUCKETS {
            let ub = upper_bound(i);
            assert!(ub > last, "bucket {i} upper bound {ub} not past {last}");
            last = ub;
        }
        // every sample lands in a bucket whose bound is >= the sample and
        // within ~25% of it
        for us in [0u64, 1, 3, 4, 5, 17, 100, 1000, 12_345, 1_000_000, u64::MAX / 2] {
            let ub = upper_bound(index(us));
            assert!(ub >= us, "{us} put above its bucket bound {ub}");
            if (4..(1 << 31)).contains(&us) {
                assert!(ub as f64 <= us as f64 * 1.25 + 1.0, "{us} bound {ub} too loose");
            }
        }
    }

    #[test]
    fn quantiles_are_nearest_rank_over_buckets() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram reports 0");
        for us in [100u64; 50] {
            h.record_us(us);
        }
        for us in [10_000u64; 50] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50_us();
        assert!((100..=127).contains(&p50), "p50 {p50} should sit in the 100µs bucket");
        let p95 = h.p95_us();
        assert!((10_000..=12_500).contains(&p95), "p95 {p95} should sit in the 10ms bucket");
    }
}
