//! The HTTP/1.1 edge: accept loop, bounded admission, connection workers
//! on the runtime [`WorkerPool`], request routing, and graceful drain.
//!
//! ```text
//! socket ──► accept thread ──► bounded admission ──► WorkerPool conn thread
//!                                │ (over budget:           │ keep-alive loop
//!                                ▼  429 + Retry-After)     ▼
//!                              shed                  Dispatcher (AskService /
//!                                                    RouterService micro-batcher)
//! ```
//!
//! Admission control is a hard bound on connections in flight
//! ([`HttpConfig::workers`] executing + [`HttpConfig::backlog`] queued):
//! the accept thread sheds everything beyond it with an immediate
//! `429 Too Many Requests` carrying `Retry-After`, so overload degrades
//! into fast, explicit rejections instead of unbounded queueing.
//!
//! Shutdown is a graceful drain: stop accepting, answer everything already
//! admitted (in-progress requests finish; queued connections get one
//! grace window to submit a request, answered with `Connection: close`),
//! then join every thread and release the port. Each request handler runs
//! under `catch_unwind`, so one poisoned request answers 500 and closes
//! its own connection — the listener and the other workers never notice.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dbcopilot_retrieval::RoutingResult;
use dbcopilot_runtime::{lock_rank, OrderedMutex, WorkerPool};
use dbcopilot_serve::{AskOutcome, AskService, QueryPipeline, RouterService, ServiceStats};
use serde::Value;

use crate::histogram::Histogram;
use crate::proto::{self, Conn, Limits, Request, RequestError, Response};
use crate::wire;

/// Tuning knobs for [`HttpServer`], builder-style like the other service
/// configs in the workspace.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct HttpConfig {
    /// Connection worker threads (each runs one connection's keep-alive
    /// loop at a time).
    pub workers: usize,
    /// Admitted connections allowed to queue beyond the busy workers
    /// before the accept thread starts shedding 429s.
    pub backlog: usize,
    /// Request line + headers budget, bytes (breach → 431).
    pub max_head_bytes: usize,
    /// Header count budget (breach → 431).
    pub max_headers: usize,
    /// Body budget, bytes (breach → 413).
    pub max_body_bytes: usize,
    /// Progress deadline for reading one request once its first byte has
    /// arrived — the slow-loris bound (lapse → 408, connection evicted).
    pub read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// `Retry-After` seconds on 429 shed responses.
    pub retry_after_secs: u32,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            workers: 8,
            backlog: 32,
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(5),
            retry_after_secs: 1,
        }
    }
}

impl HttpConfig {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    pub fn backlog(mut self, n: usize) -> Self {
        self.backlog = n;
        self
    }

    pub fn max_head_bytes(mut self, n: usize) -> Self {
        self.max_head_bytes = n;
        self
    }

    pub fn max_headers(mut self, n: usize) -> Self {
        self.max_headers = n;
        self
    }

    pub fn max_body_bytes(mut self, n: usize) -> Self {
        self.max_body_bytes = n;
        self
    }

    pub fn read_timeout(mut self, d: Duration) -> Self {
        self.read_timeout = d;
        self
    }

    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.idle_timeout = d;
        self
    }

    pub fn retry_after_secs(mut self, secs: u32) -> Self {
        self.retry_after_secs = secs;
        self
    }

    fn limits(&self) -> Limits {
        Limits {
            max_head_bytes: self.max_head_bytes,
            max_headers: self.max_headers,
            max_body_bytes: self.max_body_bytes,
        }
    }
}

/// What the edge serves. Implemented by [`ServiceApp`] over the real
/// serving stack; tests implement it directly with mock backends.
pub trait Dispatcher: Send + Sync + 'static {
    /// Answer `POST /ask`.
    fn ask(&self, question: &str) -> Arc<AskOutcome>;

    /// Answer `POST /route`; `None` means this deployment has no routing
    /// front (the endpoint answers 501).
    fn route(&self, question: &str) -> Option<Arc<RoutingResult>> {
        let _ = question;
        None
    }

    /// Backing-service counters surfaced under `"services"` in `/stats`.
    fn stats(&self) -> Vec<(&'static str, ServiceStats)> {
        Vec::new()
    }

    /// The published router generation (0 when nothing is swappable).
    fn generation(&self) -> u64 {
        0
    }

    /// Handle `POST /admin/publish`: stage-specific spec in, new
    /// generation out. The default deployment has nothing to publish.
    fn publish(&self, spec: &Value) -> Result<u64, String> {
        let _ = spec;
        Err("this deployment has no publishable router".into())
    }
}

/// The standard deployment: an [`AskService`] fronting the full pipeline,
/// a [`RouterService`] fronting routing, and an optional publisher hook
/// that turns an `/admin/publish` body into the next router generation.
pub struct ServiceApp<P, R>
where
    P: QueryPipeline + 'static,
    R: dbcopilot_retrieval::SchemaRouter + Send + Sync + 'static,
{
    pub ask: AskService<P>,
    pub route: RouterService<R>,
    /// Builds the next router from the `/admin/publish` request body.
    /// `None` → the endpoint answers 409.
    #[allow(clippy::type_complexity)]
    pub publisher: Option<Box<dyn Fn(&Value) -> Result<Arc<R>, String> + Send + Sync>>,
}

impl<P, R> ServiceApp<P, R>
where
    P: QueryPipeline + 'static,
    R: dbcopilot_retrieval::SchemaRouter + Send + Sync + 'static,
{
    pub fn new(ask: AskService<P>, route: RouterService<R>) -> Self {
        ServiceApp { ask, route, publisher: None }
    }

    pub fn with_publisher(
        mut self,
        publisher: impl Fn(&Value) -> Result<Arc<R>, String> + Send + Sync + 'static,
    ) -> Self {
        self.publisher = Some(Box::new(publisher));
        self
    }
}

impl<P, R> Dispatcher for ServiceApp<P, R>
where
    P: QueryPipeline + 'static,
    R: dbcopilot_retrieval::SchemaRouter + Send + Sync + 'static,
{
    fn ask(&self, question: &str) -> Arc<AskOutcome> {
        self.ask.ask(question)
    }

    fn route(&self, question: &str) -> Option<Arc<RoutingResult>> {
        Some(self.route.route(question))
    }

    fn stats(&self) -> Vec<(&'static str, ServiceStats)> {
        vec![("ask", self.ask.stats()), ("route", self.route.stats())]
    }

    fn generation(&self) -> u64 {
        self.route.generation()
    }

    fn publish(&self, spec: &Value) -> Result<u64, String> {
        let publisher = self.publisher.as_ref().ok_or("no publisher configured")?;
        let next = publisher(spec)?;
        Ok(self.route.publish(next))
    }
}

/// Edge-level counters, separate from the backing services' caches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted by the listener (admitted + shed).
    pub accepted: u64,
    /// Connections rejected with 429 by admission control.
    pub shed: u64,
    /// Requests parsed and routed to a handler.
    pub requests: u64,
    /// `(status, count)` over every response written, ascending status.
    pub responses: Vec<(u16, u64)>,
    /// Admitted connections currently open.
    pub in_flight: u64,
    /// Handler latency percentiles from the fixed-bucket histogram, µs.
    pub p50_us: u64,
    pub p95_us: u64,
    /// Samples in the latency histogram.
    pub latency_count: u64,
}

impl ServerStats {
    /// Count of responses with `status`.
    pub fn responses_with(&self, status: u16) -> u64 {
        self.responses.iter().find(|(s, _)| *s == status).map(|(_, n)| *n).unwrap_or(0)
    }
}

struct State {
    app: Box<dyn Dispatcher>,
    cfg: HttpConfig,
    shutdown: AtomicBool,
    accepted: AtomicU64,
    shed: AtomicU64,
    requests: AtomicU64,
    in_flight: AtomicU64,
    responses: OrderedMutex<std::collections::BTreeMap<u16, u64>>,
    latency: Histogram,
}

impl State {
    fn count_response(&self, status: u16) {
        *self.responses.lock().entry(status).or_insert(0) += 1;
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.lock().iter().map(|(&s, &n)| (s, n)).collect(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            p50_us: self.latency.p50_us(),
            p95_us: self.latency.p95_us(),
            latency_count: self.latency.count(),
        }
    }
}

/// Decrements the in-flight gauge when a connection ends, even if its
/// handler panicked out of the worker.
struct ConnSlot(Arc<State>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::Release);
    }
}

/// The running edge. Dropping it (or calling
/// [`shutdown`](HttpServer::shutdown)) drains gracefully.
pub struct HttpServer {
    state: Arc<State>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `app`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        app: impl Dispatcher,
        cfg: HttpConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let mut cfg = cfg;
        cfg.workers = cfg.workers.max(1);
        let pool = WorkerPool::new(cfg.workers);
        let state = Arc::new(State {
            app: Box::new(app),
            cfg,
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            responses: OrderedMutex::new(
                "responses",
                lock_rank::RESPONSES,
                std::collections::BTreeMap::new(),
            ),
            latency: Histogram::new(),
        });
        let accept = {
            let state = Arc::clone(&state);
            let pool_handle = pool.handle();
            std::thread::Builder::new()
                .name("dbc-http-accept".into())
                // dbc-lint: allow(no-raw-spawn): the accept loop blocks in
                // accept() for the server's lifetime — it must own a
                // dedicated thread, not occupy a pool worker.
                .spawn(move || accept_loop(&listener, &state, &pool_handle))?
        };
        Ok(HttpServer { state, addr, accept: Some(accept), pool: Some(pool) })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Edge counters.
    pub fn stats(&self) -> ServerStats {
        self.state.snapshot()
    }

    /// Graceful drain: stop accepting, answer every admitted request,
    /// join all threads, release the port. Returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.drain();
        self.state.snapshot()
    }

    fn drain(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Dropping the pool drains queued connections (each gets its grace
        // window under the shutdown flag) and joins the workers.
        drop(self.pool.take());
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.drain();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>, pool: &dbcopilot_runtime::PoolHandle) {
    let max_pending = (state.cfg.workers + state.cfg.backlog) as u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            break; // the wake connection (or anything racing it) is not served
        }
        state.accepted.fetch_add(1, Ordering::Relaxed);
        // Admission control: beyond the busy workers + backlog budget,
        // shed immediately rather than queue without bound.
        if state.in_flight.load(Ordering::Acquire) >= max_pending {
            shed(state, stream);
            continue;
        }
        state.in_flight.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(state);
        pool.execute(move || {
            let slot = ConnSlot(Arc::clone(&state));
            handle_connection(&state, stream);
            drop(slot);
        });
    }
}

/// Reject one connection with `429 Too Many Requests` + `Retry-After`,
/// without reading the request (the whole point is to spend nothing on it).
fn shed(state: &State, mut stream: TcpStream) {
    state.shed.fetch_add(1, Ordering::Relaxed);
    state.count_response(429);
    let body = wire::error_body(
        "admission",
        429,
        "server over capacity; retry after the indicated delay",
        vec![("retry_after_secs", Value::UInt(state.cfg.retry_after_secs as u64))],
    );
    let response = Response::json(429, body).header("retry-after", state.cfg.retry_after_secs);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(&response.to_bytes(false));
    let _ = stream.flush();
}

/// One connection's keep-alive loop.
fn handle_connection(state: &State, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(state.cfg.read_timeout));
    let mut conn = Conn::new(stream);
    let limits = state.cfg.limits();
    // Idle waits run in short slices so a drain never blocks on an idle
    // keep-alive connection for the full idle budget.
    let slice = Duration::from_millis(50).min(state.cfg.idle_timeout.max(Duration::from_millis(1)));
    let mut idled = Duration::ZERO;
    loop {
        let draining = state.shutdown.load(Ordering::SeqCst);
        let request = proto::read_request(&mut conn, &limits, slice, state.cfg.read_timeout);
        let request = match request {
            Ok(request) => request,
            Err(RequestError::Idle) => {
                idled += slice;
                // When draining, one grace slice is all a queued connection
                // gets to put a request on the wire.
                if draining || idled >= state.cfg.idle_timeout {
                    break;
                }
                continue;
            }
            Err(RequestError::Closed) | Err(RequestError::Disconnected) => break,
            Err(error) => {
                if let Some(response) = protocol_error_response(&error) {
                    state.count_response(response.status);
                    let _ = conn.write_response(&response, false);
                }
                break;
            }
        };
        idled = Duration::ZERO;
        state.requests.fetch_add(1, Ordering::Relaxed);

        let start = Instant::now();
        let handled = catch_unwind(AssertUnwindSafe(|| route_request(state, &request)));
        let (response, panicked) = match handled {
            Ok(response) => (response, false),
            Err(_) => {
                let body = wire::error_body(
                    "panic",
                    500,
                    "request handler panicked; connection closed",
                    Vec::new(),
                );
                (Response::json(500, body), true)
            }
        };
        state.latency.record_us(start.elapsed().as_micros() as u64);
        state.count_response(response.status);

        let draining = state.shutdown.load(Ordering::SeqCst);
        let keep_alive = request.keep_alive && !panicked && !draining;
        if conn.write_response(&response, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
}

/// The response for an unparseable request, or `None` to close silently.
fn protocol_error_response(error: &RequestError) -> Option<Response> {
    let mut detail: Vec<(&str, Value)> = Vec::new();
    let (status, message) = match error {
        RequestError::Stalled => {
            (408, "no progress on the request before the read deadline".to_string())
        }
        RequestError::HeadTooLarge => {
            (431, "request line + headers exceed the configured budget".to_string())
        }
        RequestError::BodyTooLarge { declared } => {
            detail.push(("declared", Value::UInt(*declared)));
            (413, format!("declared body of {declared} bytes exceeds the configured budget"))
        }
        RequestError::Bad(msg) => (400, msg.clone()),
        RequestError::Unsupported(what) => (501, format!("{what} is not supported")),
        RequestError::Version(v) => (505, format!("{v} is not supported; use HTTP/1.1")),
        RequestError::Closed
        | RequestError::Idle
        | RequestError::Disconnected
        | RequestError::Io(_) => return None,
    };
    Some(Response::json(status, wire::error_body("protocol", status, &message, detail)))
}

/// Route one parsed request to its handler.
fn route_request(state: &State, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = wire::render(&wire::obj(vec![
                ("status", Value::String("ok".into())),
                ("generation", Value::UInt(state.app.generation())),
            ]));
            Response::json(200, body)
        }
        ("GET", "/stats") => {
            let snapshot = state.snapshot();
            let services = state.app.stats();
            Response::json(200, stats_body(&snapshot, &services))
        }
        ("POST", "/ask") => match wire::parse_question(&request.body) {
            Ok(question) => {
                let outcome = state.app.ask(&question);
                let (status, body) = wire::ask_response(&outcome);
                Response::json(status, body)
            }
            Err(why) => bad_request(&why),
        },
        ("POST", "/route") => match wire::parse_question(&request.body) {
            Ok(question) => match state.app.route(&question) {
                Some(routing) => {
                    let (status, body) = wire::route_response(&question, &routing);
                    Response::json(status, body)
                }
                None => Response::json(
                    501,
                    wire::error_body(
                        "protocol",
                        501,
                        "this deployment has no routing front",
                        vec![],
                    ),
                ),
            },
            Err(why) => bad_request(&why),
        },
        ("POST", "/admin/publish") => {
            let spec = if request.body.is_empty() {
                Ok(Value::Object(Vec::new()))
            } else {
                serde_json::from_slice(&request.body)
                    .map_err(|e| format!("body is not valid JSON: {e}"))
            };
            match spec {
                Ok(spec) => match state.app.publish(&spec) {
                    Ok(generation) => {
                        let body =
                            wire::render(&wire::obj(vec![("generation", Value::UInt(generation))]));
                        Response::json(200, body)
                    }
                    Err(why) => {
                        Response::json(409, wire::error_body("admin", 409, &why, Vec::new()))
                    }
                },
                Err(why) => bad_request(&why),
            }
        }
        // Known paths with the wrong method answer 405 + Allow.
        (_, "/healthz") | (_, "/stats") => method_not_allowed("GET"),
        (_, "/ask") | (_, "/route") | (_, "/admin/publish") => method_not_allowed("POST"),
        (_, path) => Response::json(
            404,
            wire::error_body("protocol", 404, &format!("no such endpoint {path:?}"), Vec::new()),
        ),
    }
}

fn bad_request(why: &str) -> Response {
    Response::json(400, wire::error_body("protocol", 400, why, Vec::new()))
}

fn method_not_allowed(allow: &'static str) -> Response {
    Response::json(
        405,
        wire::error_body("protocol", 405, &format!("method not allowed; use {allow}"), Vec::new()),
    )
    .header("allow", allow)
}

/// The `/stats` payload: edge counters + per-service serving counters.
fn stats_body(server: &ServerStats, services: &[(&'static str, ServiceStats)]) -> String {
    let responses = server
        .responses
        .iter()
        .map(|(status, n)| (status.to_string(), Value::UInt(*n)))
        .collect::<Vec<_>>();
    let server_value = wire::obj(vec![
        ("accepted", Value::UInt(server.accepted)),
        ("shed", Value::UInt(server.shed)),
        ("requests", Value::UInt(server.requests)),
        ("in_flight", Value::UInt(server.in_flight)),
        (
            "latency_us",
            wire::obj(vec![
                ("p50", Value::UInt(server.p50_us)),
                ("p95", Value::UInt(server.p95_us)),
                ("count", Value::UInt(server.latency_count)),
            ]),
        ),
        ("responses", Value::Object(responses)),
    ]);
    let services = services
        .iter()
        .map(|(name, stats)| (name.to_string(), wire::service_stats_value(stats)))
        .collect::<Vec<_>>();
    wire::render(&wire::obj(vec![("server", server_value), ("services", Value::Object(services))]))
}
