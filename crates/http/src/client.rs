//! A minimal blocking HTTP/1.1 client: keep-alive connection reuse, JSON
//! request helpers, raw-byte access for protocol tests.
//!
//! This is the counterpart the test battery and the load generator drive
//! the edge with — it speaks exactly the subset the server speaks
//! (`Content-Length` framing, keep-alive) and exposes the raw socket so
//! conformance tests can write arbitrary garbage.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::Value;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: String,
    /// Whether the server announced it will keep the connection open.
    pub keep_alive: bool,
}

impl HttpResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<Value, String> {
        serde_json::from_str(&self.body).map_err(|e| format!("body is not valid JSON: {e}"))
    }
}

/// A blocking keep-alive connection to the edge.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
}

impl HttpClient {
    /// Connect with a 10 s read deadline (see
    /// [`connect_timeout`](HttpClient::connect_timeout) to pick another).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with an explicit read deadline for responses.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(HttpClient { stream, buf: Vec::with_capacity(4096), start: 0 })
    }

    /// The underlying socket, for tests that need to shutdown/linger/etc.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Write raw bytes on the socket — no framing, no response read. For
    /// protocol-conformance tests (garbage, truncation, slow-loris drips).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// `GET path` and read the response.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body and read the response.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", path, Some(body))
    }

    /// Issue one request and read its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        let mut head = String::with_capacity(96 + body.len());
        head.push_str(method);
        head.push(' ');
        head.push_str(path);
        head.push_str(" HTTP/1.1\r\nhost: dbcopilot\r\n");
        if !body.is_empty() {
            head.push_str("content-type: application/json\r\n");
        }
        head.push_str("content-length: ");
        head.push_str(&body.len().to_string());
        head.push_str("\r\n\r\n");
        head.push_str(body);
        self.send_raw(head.as_bytes())?;
        self.read_response()
    }

    /// Read one response off the socket (framed by `Content-Length`).
    /// Leftover bytes stay buffered for the next response.
    pub fn read_response(&mut self) -> io::Result<HttpResponse> {
        let head_end = loop {
            if let Some(end) = crate::proto::find_head_end(self.buffered()) {
                break end;
            }
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
        };
        // dbc-lint: allow(panic-free-serving): `head_end` was returned by
        // find_head_end over this same buffer, so the slice is in bounds.
        let head = self.buffered()[..head_end].to_vec();
        self.consume(head_end);
        let head = std::str::from_utf8(&head).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "response head is not UTF-8")
        })?;

        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
        let status_line = lines
            .next()
            .filter(|l| !l.is_empty())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response head"))?;
        let status: u16 =
            status_line.split(' ').nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        while self.buffered().len() < length {
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        // dbc-lint: allow(panic-free-serving): the fill loop above only
        // exits once `buffered()` holds at least `length` bytes.
        let body = String::from_utf8_lossy(&self.buffered()[..length]).into_owned();
        self.consume(length);
        let keep_alive = headers
            .iter()
            .find(|(n, _)| n == "connection")
            .is_some_and(|(_, v)| v.eq_ignore_ascii_case("keep-alive"));
        Ok(HttpResponse { status, headers, body, keep_alive })
    }

    fn buffered(&self) -> &[u8] {
        // dbc-lint: allow(panic-free-serving): `start <= buf.len()` is the
        // consume() invariant (it resets both to 0 at the boundary).
        &self.buf[self.start..]
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(n) => {
                    // dbc-lint: allow(panic-free-serving): `read` returns
                    // at most the buffer's length.
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}
