//! `dbcopilot-http` — the hand-rolled HTTP/1.1 serving edge.
//!
//! Turns the in-process serving layer (`dbcopilot-serve`'s [`AskService`]
//! and [`RouterService`]) into a network service, with no async runtime:
//! plain `std::net` sockets, connection threads on the shared
//! [`WorkerPool`](dbcopilot_runtime::WorkerPool), and a strict little
//! HTTP/1.1 parser.
//!
//! ```text
//! socket ──► accept thread ──► bounded admission ──► connection thread
//!                 │ shed 429 + Retry-After              │ keep-alive loop
//!                 ▼                                     ▼
//!            (over budget)                    AskService / RouterService
//!                                             (micro-batcher, LRU cache,
//!                                              sharded router, hot swap)
//! ```
//!
//! # Endpoints
//!
//! | endpoint              | body                        | answers |
//! |-----------------------|-----------------------------|---------|
//! | `POST /ask`           | `{"question": "..."}`       | 200 full answer; 404/410/422/500 typed pipeline failure |
//! | `POST /route`         | `{"question": "..."}`       | 200 ranked databases + tables |
//! | `GET /stats`          | —                           | edge counters, latency percentiles, per-service cache/shard stats |
//! | `GET /healthz`        | —                           | `{"status":"ok","generation":N}` |
//! | `POST /admin/publish` | deployment-defined spec     | 200 new generation; 409 when not publishable |
//!
//! Protocol breaches get precise statuses (400/408/413/431/501/505), and
//! admission control sheds overload with 429 + `Retry-After` — see
//! [`proto`] and [`server`] for the full tables.
//!
//! # Quick start
//!
//! ```no_run
//! use dbcopilot_http::{HttpClient, HttpConfig, HttpServer, ServiceApp};
//! use dbcopilot_serve::{AskOptions, AskService, RouterService, ServiceConfig};
//! # fn main() -> std::io::Result<()> {
//! # let copilot: std::sync::Arc<dbcopilot_http::doctest_support::NoPipeline> = unimplemented!();
//! # let router: dbcopilot_http::doctest_support::NoRouter = unimplemented!();
//! let app = ServiceApp::new(
//!     AskService::from_pipeline(copilot, AskOptions::new(), ServiceConfig::default()),
//!     RouterService::from_router(router, ServiceConfig::default()),
//! );
//! let server = HttpServer::bind("127.0.0.1:0", app, HttpConfig::new().workers(4))?;
//!
//! let mut client = HttpClient::connect(server.addr())?;
//! let response = client.post("/ask", "{\"question\":\"how many cities?\"}")?;
//! assert_eq!(response.status, 200);
//!
//! let stats = server.shutdown(); // graceful drain, port released
//! assert_eq!(stats.in_flight, 0);
//! # Ok(()) }
//! ```

pub mod client;
pub mod histogram;
pub mod load;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::{HttpClient, HttpResponse};
pub use histogram::Histogram;
pub use load::{run_load, Arrival, LoadConfig, LoadReport};
pub use proto::{Limits, Request, RequestError, Response};
pub use server::{Dispatcher, HttpConfig, HttpServer, ServerStats, ServiceApp};

#[cfg(doc)]
use dbcopilot_serve::{AskService, RouterService};

/// Placeholder types referenced by the crate-level doc example (which is
/// `no_run` and never constructs them). Not part of the API.
#[doc(hidden)]
pub mod doctest_support {
    use std::sync::Arc;

    use dbcopilot_retrieval::{RoutingResult, SchemaRouter};
    use dbcopilot_serve::{AskError, AskOptions, AskReport, QueryPipeline};

    pub struct NoPipeline;

    impl QueryPipeline for NoPipeline {
        fn ask_with(&self, _question: &str, _opts: &AskOptions) -> Result<AskReport, AskError> {
            // dbc-lint: allow(panic-free-serving): doctest-only type; never
            // constructed by a real deployment.
            unimplemented!("doc example placeholder")
        }
    }

    pub struct NoRouter;

    impl SchemaRouter for NoRouter {
        fn name(&self) -> &str {
            "doc example placeholder"
        }
        fn route(&self, _question: &str, _top_tables: usize) -> RoutingResult {
            // dbc-lint: allow(panic-free-serving): doctest-only type; never
            // constructed by a real deployment.
            unimplemented!("doc example placeholder")
        }
    }

    pub fn _assert_api(_: Arc<NoPipeline>) {}
}
