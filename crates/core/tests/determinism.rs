//! The determinism contract of data-parallel training: epoch losses, final
//! weights, and synthesized corpora are bit-identical at any `DBC_THREADS`
//! value. These tests pin the thread count with
//! [`dbcopilot_runtime::with_thread_count`] instead of the environment
//! variable so both sides run inside one process.

use dbcopilot_core::{
    synthesize_training_data, train_router, PieceVocab, RouterConfig, RouterModel,
    SerializationMode, TrainExample, TrainStats,
};
use dbcopilot_graph::{QuerySchema, SchemaGraph};
use dbcopilot_runtime::with_thread_count;
use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

fn collection() -> Collection {
    let mut c = Collection::new();
    for (db, tables) in [
        ("concert_singer", vec!["singer", "concert"]),
        ("world", vec!["country", "city"]),
        ("library", vec!["book", "author"]),
        ("cinema", vec!["movie", "director"]),
    ] {
        let mut d = DatabaseSchema::new(db);
        for t in tables {
            d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
        }
        c.add_database(d);
    }
    c
}

fn examples() -> Vec<TrainExample> {
    let mut out = Vec::new();
    for _ in 0..10 {
        out.push(TrainExample {
            question: "how many vocalists are there".into(),
            schema: QuerySchema::new("concert_singer", vec!["singer".into()]),
        });
        out.push(TrainExample {
            question: "list the names of all towns".into(),
            schema: QuerySchema::new("world", vec!["city".into()]),
        });
        out.push(TrainExample {
            question: "which writer published the most volumes".into(),
            schema: QuerySchema::new("library", vec!["book".into(), "author".into()]),
        });
        out.push(TrainExample {
            question: "who directed the longest film".into(),
            schema: QuerySchema::new("cinema", vec!["movie".into(), "director".into()]),
        });
    }
    out
}

/// Train one router at a pinned thread count; return the stats and every
/// parameter tensor as exact bit patterns.
fn train_at(threads: usize) -> (TrainStats, Vec<(String, Vec<u32>)>) {
    with_thread_count(threads, || {
        let g = SchemaGraph::build(&collection());
        let v = PieceVocab::build(&g);
        let mut model = RouterModel::new(RouterConfig::tiny(), v.len());
        let stats = train_router(&mut model, &g, &v, &examples(), SerializationMode::Dfs);
        let weights = model
            .store
            .describe()
            .into_iter()
            .map(|(name, _)| {
                let id = model.store.id_of(&name).unwrap();
                let bits: Vec<u32> =
                    model.store.value(id).as_slice().iter().map(|v| v.to_bits()).collect();
                (name, bits)
            })
            .collect();
        (stats, weights)
    })
}

#[test]
fn training_is_bit_identical_across_thread_counts() {
    let (stats1, weights1) = train_at(1);
    for threads in [2, 4] {
        let (stats_n, weights_n) = train_at(threads);
        let l1: Vec<u32> = stats1.epoch_losses.iter().map(|v| v.to_bits()).collect();
        let ln: Vec<u32> = stats_n.epoch_losses.iter().map(|v| v.to_bits()).collect();
        assert_eq!(l1, ln, "epoch losses differ between 1 and {threads} threads");
        assert_eq!(weights1.len(), weights_n.len());
        for ((name1, bits1), (name_n, bits_n)) in weights1.iter().zip(&weights_n) {
            assert_eq!(name1, name_n);
            assert_eq!(bits1, bits_n, "parameter {name1} differs between 1 and {threads} threads");
        }
    }
}

#[test]
fn training_loss_still_decreases_in_parallel() {
    let (stats, _) = train_at(4);
    let first = stats.epoch_losses[0];
    let last = *stats.epoch_losses.last().unwrap();
    assert!(last < first * 0.6, "loss should fall under 4 threads: {first} → {last}");
}

#[test]
fn synthesis_is_identical_across_thread_counts() {
    use dbcopilot_synth::{
        build_spider_like, questioner_pairs, CorpusSizes, Questioner, QuestionerConfig,
    };
    let corpus = build_spider_like(&CorpusSizes { num_databases: 4, train_n: 60, test_n: 5 }, 11);
    let graph = SchemaGraph::build(&corpus.collection);
    let questioner = Questioner::train(&questioner_pairs(&corpus), &QuestionerConfig::default());
    let synth = |threads: usize| {
        with_thread_count(threads, || {
            synthesize_training_data(&graph, &corpus.meta, &questioner, 120, 3)
        })
    };
    let a = synth(1);
    let b = synth(4);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.question, y.question);
        assert!(x.schema.same_as(&y.schema), "{} vs {}", x.schema, y.schema);
    }
}

#[test]
fn pooled_route_batch_is_bit_identical_across_thread_counts() {
    // The serving path: routing through the persistent worker pool
    // (`DbcRouter::route_batch` → `pooled_map`) must produce bit-identical
    // rankings and scores at any thread count, same as the scoped path.
    use dbcopilot_core::DbcRouter;

    let g = SchemaGraph::build(&collection());
    let mut cfg = RouterConfig::tiny();
    cfg.epochs = 4;
    let (router, _) = DbcRouter::fit(g, &examples(), cfg, SerializationMode::Dfs);
    let questions: Vec<String> = examples().iter().map(|e| e.question.clone()).take(12).collect();

    let route_at =
        |threads: usize| with_thread_count(threads, || router.route_batch(&questions, 10));
    let base = route_at(1);
    for threads in [2, 4] {
        let got = route_at(threads);
        assert_eq!(base.len(), got.len());
        for (i, (a, b)) in base.iter().zip(&got).enumerate() {
            assert_eq!(a.database_names(), b.database_names(), "question {i}, {threads} threads");
            let sa: Vec<u32> = a.tables.iter().map(|(_, _, s)| s.to_bits()).collect();
            let sb: Vec<u32> = b.tables.iter().map(|(_, _, s)| s.to_bits()).collect();
            assert_eq!(sa, sb, "table scores drifted at {threads} threads (question {i})");
        }
    }
}

#[test]
fn sharded_scatter_gather_is_bit_identical_across_thread_counts() {
    // A fixed shard count must produce bit-identical merged rankings at any
    // DBC_THREADS value: shards are scattered on the pool but merged in
    // shard-index order with a total-order tie-break, so neither scores nor
    // merge order may depend on scheduling.
    use dbcopilot_core::ShardedRouter;
    use dbcopilot_retrieval::SchemaRouter;

    let mut cfg = RouterConfig::tiny();
    cfg.epochs = 4;
    let (router, _) =
        ShardedRouter::fit(&collection(), &examples(), cfg, SerializationMode::Dfs, 4);
    let questions: Vec<String> = examples().iter().map(|e| e.question.clone()).take(12).collect();

    let route_at =
        |threads: usize| with_thread_count(threads, || router.route_batch(&questions, 10));
    let base = route_at(1);
    for threads in [2, 4] {
        let got = route_at(threads);
        assert_eq!(base.len(), got.len());
        for (i, (a, b)) in base.iter().zip(&got).enumerate() {
            assert_eq!(a.database_names(), b.database_names(), "question {i}, {threads} threads");
            let ta: Vec<(&str, &str, u32)> =
                a.tables.iter().map(|(d, t, s)| (d.as_str(), t.as_str(), s.to_bits())).collect();
            let tb: Vec<(&str, &str, u32)> =
                b.tables.iter().map(|(d, t, s)| (d.as_str(), t.as_str(), s.to_bits())).collect();
            assert_eq!(ta, tb, "merge order drifted at {threads} threads (question {i})");
        }
    }
    // Single-question scatter-gather agrees with the batch path bit for bit.
    let single = with_thread_count(2, || router.route(&questions[0], 10));
    assert_eq!(single.tables, base[0].tables);
}

#[test]
fn sharded_fit_is_bit_identical_across_thread_counts() {
    use dbcopilot_core::ShardedRouter;

    let mut cfg = RouterConfig::tiny();
    cfg.epochs = 3;
    let fit_at = |threads: usize| {
        with_thread_count(threads, || {
            ShardedRouter::fit(&collection(), &examples(), cfg.clone(), SerializationMode::Dfs, 4)
        })
    };
    let (base_router, base_stats) = fit_at(1);
    for threads in [2, 4] {
        let (router, stats) = fit_at(threads);
        for (s, (a, b)) in base_stats.iter().zip(&stats).enumerate() {
            assert_eq!(
                a.epoch_losses.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.epoch_losses.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "shard {s} losses differ between 1 and {threads} threads"
            );
        }
        for s in 0..router.num_shards() {
            match (base_router.shard_router(s), router.shard_router(s)) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_weights_identical(&a, &b, s),
                _ => panic!("shard {s} emptiness differs across thread counts"),
            }
        }
    }
}

/// Every parameter of two routers compared as exact bit patterns.
fn assert_weights_identical(
    a: &dbcopilot_core::DbcRouter,
    b: &dbcopilot_core::DbcRouter,
    shard: usize,
) {
    for ((an, av), (bn, bv)) in a.model.store.iter_values().zip(b.model.store.iter_values()) {
        assert_eq!(an, bn, "shard {shard} parameter order differs");
        let ab: Vec<u32> = av.as_slice().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = bv.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "shard {shard} parameter {an} drifted");
    }
}

#[test]
fn shard_local_extend_leaves_non_owning_shards_bit_identical() {
    // Adding one database must retrain only the owning shard: every other
    // shard's router is shared into the new tier (same Arc), and its
    // weights are bit-identical — not "approximately unchanged".
    use dbcopilot_core::{shard_of, ShardedRouter};

    let mut cfg = RouterConfig::tiny();
    cfg.epochs = 3;
    let (router, _) =
        ShardedRouter::fit(&collection(), &examples(), cfg, SerializationMode::Dfs, 4);

    let mut grown = collection();
    let mut extra = DatabaseSchema::new("aquarium");
    for t in ["tank", "fish"] {
        extra.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
    }
    grown.add_database(extra);
    let owner = shard_of("aquarium", 4);

    let meta = dbcopilot_synth::CorpusMeta::default();
    let questioner = dbcopilot_synth::Questioner::train(
        &[dbcopilot_synth::TrainPair {
            entities: vec!["fish".into()],
            attrs: vec![],
            question: "how many fish live in the tank".into(),
        }],
        &dbcopilot_synth::QuestionerConfig::default(),
    );
    let (extended, retrained) = router.extend(&grown, &meta, &questioner, 24, 2).unwrap();

    assert_eq!(retrained.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![owner]);
    for s in 0..4 {
        if s == owner {
            continue;
        }
        match (router.shard_router(s), extended.shard_router(s)) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert!(
                    std::sync::Arc::ptr_eq(&a, &b),
                    "non-owning shard {s} was rebuilt instead of shared"
                );
                assert_weights_identical(&a, &b, s);
            }
            _ => panic!("non-owning shard {s} changed emptiness"),
        }
    }
    // The owning shard took the new database into its graph (reachability
    // through routing is covered by the extend tests in `persist`).
    let owning = extended.shard_router(owner).expect("owner shard has a router");
    assert!(owning.graph.database_node("aquarium").is_some(), "aquarium missing from owner graph");
    assert!(extended.database_names().contains(&"aquarium".to_string()));
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Guards against per-instance iteration-order nondeterminism sneaking
    // back into the candidate path (the constrainer trie once used HashMap
    // children, which made two same-process runs drift in late epochs).
    let (s1, _) = train_at(1);
    let (s2, _) = train_at(1);
    assert_eq!(
        s1.epoch_losses.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        s2.epoch_losses.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "two identical runs diverged: {:?} vs {:?}",
        s1.epoch_losses,
        s2.epoch_losses
    );
}

#[test]
fn sparse_retrieval_is_bit_identical_across_instances() {
    // BM25 and CRUSH accumulate f32 scores in intermediate maps. Each
    // std HashMap instance gets its own random hasher state, so any path
    // where map iteration order reaches the scores (the bug class
    // dbc-lint's `hashmap-iter-order` rule guards) shows up as two
    // freshly built indexes disagreeing bit-for-bit. The sweep moved
    // those maps to BTreeMap; this pins the behavior.
    use dbcopilot_retrieval::{Bm25Index, Bm25Params, Crush, SchemaRouter, Target, TargetSet};

    let targets = TargetSet {
        targets: vec![
            Target {
                database: "world".into(),
                table: "country".into(),
                text: "country code name continent region population".into(),
            },
            Target {
                database: "world".into(),
                table: "city".into(),
                text: "city name countrycode district population".into(),
            },
            Target {
                database: "world".into(),
                table: "countrylanguage".into(),
                text: "countrylanguage countrycode language official percentage".into(),
            },
            Target {
                database: "concert_singer".into(),
                table: "singer".into(),
                text: "singer singer id name age country".into(),
            },
        ],
    };
    let questions =
        ["population of each country", "official language percentage", "age of singers by country"];

    type Fingerprint = Vec<(String, Vec<(String, String, u32)>)>;
    let fingerprint = |label: &str| -> Fingerprint {
        let bm25 = Bm25Index::build(targets.clone(), Bm25Params::default());
        let graph = SchemaGraph::build(&collection());
        let crush =
            Crush::new(Bm25Index::build(targets.clone(), Bm25Params::default()), graph, label);
        questions
            .iter()
            .flat_map(|q| {
                [
                    (bm25.route(q, 10), format!("bm25:{q}")),
                    (crush.route(q, 10), format!("crush:{q}")),
                ]
                .into_iter()
                .map(|(r, tag)| {
                    let rows = r
                        .tables
                        .iter()
                        .map(|(db, t, s)| (db.clone(), t.clone(), s.to_bits()))
                        .collect();
                    (tag, rows)
                })
            })
            .collect()
    };

    let a = fingerprint("A");
    let b = fingerprint("B");
    assert_eq!(a, b, "fresh retrieval instances diverged (hasher-state leak)");
}
