//! The determinism contract of data-parallel training: epoch losses, final
//! weights, and synthesized corpora are bit-identical at any `DBC_THREADS`
//! value. These tests pin the thread count with
//! [`dbcopilot_runtime::with_thread_count`] instead of the environment
//! variable so both sides run inside one process.

use dbcopilot_core::{
    synthesize_training_data, train_router, PieceVocab, RouterConfig, RouterModel,
    SerializationMode, TrainExample, TrainStats,
};
use dbcopilot_graph::{QuerySchema, SchemaGraph};
use dbcopilot_runtime::with_thread_count;
use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

fn collection() -> Collection {
    let mut c = Collection::new();
    for (db, tables) in [
        ("concert_singer", vec!["singer", "concert"]),
        ("world", vec!["country", "city"]),
        ("library", vec!["book", "author"]),
        ("cinema", vec!["movie", "director"]),
    ] {
        let mut d = DatabaseSchema::new(db);
        for t in tables {
            d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
        }
        c.add_database(d);
    }
    c
}

fn examples() -> Vec<TrainExample> {
    let mut out = Vec::new();
    for _ in 0..10 {
        out.push(TrainExample {
            question: "how many vocalists are there".into(),
            schema: QuerySchema::new("concert_singer", vec!["singer".into()]),
        });
        out.push(TrainExample {
            question: "list the names of all towns".into(),
            schema: QuerySchema::new("world", vec!["city".into()]),
        });
        out.push(TrainExample {
            question: "which writer published the most volumes".into(),
            schema: QuerySchema::new("library", vec!["book".into(), "author".into()]),
        });
        out.push(TrainExample {
            question: "who directed the longest film".into(),
            schema: QuerySchema::new("cinema", vec!["movie".into(), "director".into()]),
        });
    }
    out
}

/// Train one router at a pinned thread count; return the stats and every
/// parameter tensor as exact bit patterns.
fn train_at(threads: usize) -> (TrainStats, Vec<(String, Vec<u32>)>) {
    with_thread_count(threads, || {
        let g = SchemaGraph::build(&collection());
        let v = PieceVocab::build(&g);
        let mut model = RouterModel::new(RouterConfig::tiny(), v.len());
        let stats = train_router(&mut model, &g, &v, &examples(), SerializationMode::Dfs);
        let weights = model
            .store
            .describe()
            .into_iter()
            .map(|(name, _)| {
                let id = model.store.id_of(&name).unwrap();
                let bits: Vec<u32> =
                    model.store.value(id).as_slice().iter().map(|v| v.to_bits()).collect();
                (name, bits)
            })
            .collect();
        (stats, weights)
    })
}

#[test]
fn training_is_bit_identical_across_thread_counts() {
    let (stats1, weights1) = train_at(1);
    for threads in [2, 4] {
        let (stats_n, weights_n) = train_at(threads);
        let l1: Vec<u32> = stats1.epoch_losses.iter().map(|v| v.to_bits()).collect();
        let ln: Vec<u32> = stats_n.epoch_losses.iter().map(|v| v.to_bits()).collect();
        assert_eq!(l1, ln, "epoch losses differ between 1 and {threads} threads");
        assert_eq!(weights1.len(), weights_n.len());
        for ((name1, bits1), (name_n, bits_n)) in weights1.iter().zip(&weights_n) {
            assert_eq!(name1, name_n);
            assert_eq!(bits1, bits_n, "parameter {name1} differs between 1 and {threads} threads");
        }
    }
}

#[test]
fn training_loss_still_decreases_in_parallel() {
    let (stats, _) = train_at(4);
    let first = stats.epoch_losses[0];
    let last = *stats.epoch_losses.last().unwrap();
    assert!(last < first * 0.6, "loss should fall under 4 threads: {first} → {last}");
}

#[test]
fn synthesis_is_identical_across_thread_counts() {
    use dbcopilot_synth::{
        build_spider_like, questioner_pairs, CorpusSizes, Questioner, QuestionerConfig,
    };
    let corpus = build_spider_like(&CorpusSizes { num_databases: 4, train_n: 60, test_n: 5 }, 11);
    let graph = SchemaGraph::build(&corpus.collection);
    let questioner = Questioner::train(&questioner_pairs(&corpus), &QuestionerConfig::default());
    let synth = |threads: usize| {
        with_thread_count(threads, || {
            synthesize_training_data(&graph, &corpus.meta, &questioner, 120, 3)
        })
    };
    let a = synth(1);
    let b = synth(4);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.question, y.question);
        assert!(x.schema.same_as(&y.schema), "{} vs {}", x.schema, y.schema);
    }
}

#[test]
fn pooled_route_batch_is_bit_identical_across_thread_counts() {
    // The serving path: routing through the persistent worker pool
    // (`DbcRouter::route_batch` → `pooled_map`) must produce bit-identical
    // rankings and scores at any thread count, same as the scoped path.
    use dbcopilot_core::DbcRouter;

    let g = SchemaGraph::build(&collection());
    let mut cfg = RouterConfig::tiny();
    cfg.epochs = 4;
    let (router, _) = DbcRouter::fit(g, &examples(), cfg, SerializationMode::Dfs);
    let questions: Vec<String> = examples().iter().map(|e| e.question.clone()).take(12).collect();

    let route_at =
        |threads: usize| with_thread_count(threads, || router.route_batch(&questions, 10));
    let base = route_at(1);
    for threads in [2, 4] {
        let got = route_at(threads);
        assert_eq!(base.len(), got.len());
        for (i, (a, b)) in base.iter().zip(&got).enumerate() {
            assert_eq!(a.database_names(), b.database_names(), "question {i}, {threads} threads");
            let sa: Vec<u32> = a.tables.iter().map(|(_, _, s)| s.to_bits()).collect();
            let sb: Vec<u32> = b.tables.iter().map(|(_, _, s)| s.to_bits()).collect();
            assert_eq!(sa, sb, "table scores drifted at {threads} threads (question {i})");
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Guards against per-instance iteration-order nondeterminism sneaking
    // back into the candidate path (the constrainer trie once used HashMap
    // children, which made two same-process runs drift in late epochs).
    let (s1, _) = train_at(1);
    let (s2, _) = train_at(1);
    assert_eq!(
        s1.epoch_losses.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        s2.epoch_losses.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "two identical runs diverged: {:?} vs {:?}",
        s1.epoch_losses,
        s2.epoch_losses
    );
}
