//! The sharded routing tier end to end: 1-shard/monolith equivalence,
//! multi-shard `DBC1` bundles with lazy per-shard loading, back compat in
//! both directions, and raw-byte splicing on re-save.

use std::sync::Arc;

use dbcopilot_core::{
    load_router_slice, load_sharded_router_bytes, router_to_vec, sharded_router_to_vec, DbcRouter,
    PersistError, RouterConfig, SerializationMode, ShardedRouter, TrainExample,
};
use dbcopilot_graph::{QuerySchema, SchemaGraph};
use dbcopilot_retrieval::SchemaRouter;
use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

fn collection() -> Collection {
    let mut c = Collection::new();
    for (db, tables) in [
        ("concert_singer", vec!["singer", "concert"]),
        ("world", vec!["country", "city"]),
        ("library", vec!["book", "author"]),
        ("cinema", vec!["movie", "director"]),
    ] {
        let mut d = DatabaseSchema::new(db);
        for t in tables {
            d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
        }
        c.add_database(d);
    }
    c
}

fn examples() -> Vec<TrainExample> {
    let mut out = Vec::new();
    for _ in 0..10 {
        out.push(TrainExample {
            question: "how many vocalists are there".into(),
            schema: QuerySchema::new("concert_singer", vec!["singer".into()]),
        });
        out.push(TrainExample {
            question: "list the names of all towns".into(),
            schema: QuerySchema::new("world", vec!["city".into()]),
        });
        out.push(TrainExample {
            question: "which writer published the most volumes".into(),
            schema: QuerySchema::new("library", vec!["book".into()]),
        });
        out.push(TrainExample {
            question: "who directed the longest film".into(),
            schema: QuerySchema::new("cinema", vec!["movie".into()]),
        });
    }
    out
}

fn cfg() -> RouterConfig {
    let mut cfg = RouterConfig::tiny();
    cfg.epochs = 5;
    cfg
}

fn fit_sharded(num_shards: usize) -> ShardedRouter {
    ShardedRouter::fit(&collection(), &examples(), cfg(), SerializationMode::Dfs, num_shards).0
}

#[test]
fn one_shard_fit_is_bit_identical_to_monolith() {
    // The sharded tier at N=1 *is* the monolith: same graph, same examples,
    // same seed, so the weights must match bit for bit and routing must be
    // the same ranking (the tier re-sorts with the total-order tie-break).
    let sharded = fit_sharded(1);
    let (mono, _) = DbcRouter::fit(
        SchemaGraph::build(&collection()),
        &examples(),
        cfg(),
        SerializationMode::Dfs,
    );
    let shard = sharded.shard_router(0).expect("single shard");
    for ((an, av), (bn, bv)) in mono.model.store.iter_values().zip(shard.model.store.iter_values())
    {
        assert_eq!(an, bn);
        let ab: Vec<u32> = av.as_slice().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = bv.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "{an} drifted between monolith and 1-shard fit");
    }
    for q in ["how many vocalists are there", "who directed the longest film"] {
        let a = mono.route(q, 10);
        let b = sharded.route(q, 10);
        assert_eq!(a.database_names(), b.database_names(), "question {q:?}");
    }
}

#[test]
fn scatter_gather_routes_to_the_trained_database() {
    let sharded = fit_sharded(4);
    assert_eq!(sharded.num_shards(), 4);
    assert_eq!(sharded.num_databases(), 4);
    let r = sharded.route("how many vocalists are there", 10);
    assert_eq!(r.database_names()[0], "concert_singer");
    // Scatter-gather surfaces candidates from more than one shard.
    let shards_hit: std::collections::BTreeSet<usize> =
        r.databases.iter().map(|(db, _)| sharded.shard_of_db(db)).collect();
    assert!(shards_hit.len() > 1, "expected candidates from multiple shards: {r:?}");
}

#[test]
fn sharded_bundle_roundtrips_and_loads_lazily() {
    let sharded = fit_sharded(4);
    let before: Vec<_> = ["how many vocalists are there", "list the names of all towns"]
        .iter()
        .map(|q| sharded.route(q, 10))
        .collect();

    let bytes = sharded_router_to_vec(&sharded).unwrap();
    let loaded = load_sharded_router_bytes(bytes).unwrap();
    assert_eq!(loaded.num_shards(), 4);
    assert_eq!(loaded.database_names(), sharded.database_names());
    // Nothing is decoded until a request arrives.
    assert_eq!(loaded.loaded_shards(), 0, "load must be lazy");

    // Routing one shard decodes only that shard.
    let owner = loaded.shard_of_db("concert_singer");
    let one = loaded.route_shard(owner, "how many vocalists are there", 10);
    assert_eq!(one.database_names()[0], "concert_singer");
    assert_eq!(loaded.loaded_shards(), 1, "route_shard must touch exactly one shard");

    // A full scatter-gather decodes the rest and matches pre-save routing
    // bit for bit.
    for (q, want) in
        ["how many vocalists are there", "list the names of all towns"].iter().zip(&before)
    {
        let got = loaded.route(q, 10);
        assert_eq!(got.database_names(), want.database_names());
        assert_eq!(got.tables, want.tables, "question {q:?} drifted through the bundle");
    }
}

#[test]
fn legacy_monolithic_bundle_loads_as_one_shard_tier() {
    let (mono, _) = DbcRouter::fit(
        SchemaGraph::build(&collection()),
        &examples(),
        cfg(),
        SerializationMode::Dfs,
    );
    let want = mono.route("how many vocalists are there", 10);
    let legacy = router_to_vec(&mono).unwrap();

    let tier = load_sharded_router_bytes(legacy).unwrap();
    assert_eq!(tier.num_shards(), 1);
    assert_eq!(tier.num_databases(), 4);
    let got = tier.route("how many vocalists are there", 10);
    assert_eq!(got.database_names(), want.database_names());
}

#[test]
fn sharded_bundle_is_a_typed_error_in_the_monolithic_loader() {
    let bytes = sharded_router_to_vec(&fit_sharded(2)).unwrap();
    match load_router_slice(&bytes) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(msg.contains("sharded"), "error should name the artifact kind: {msg}");
            assert!(msg.contains("load_sharded_router"), "error should point at the loader: {msg}");
        }
        Ok(_) => panic!("monolithic loader must refuse a SHRD bundle"),
        Err(other) => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn resave_of_untouched_lazy_shards_splices_bytes_verbatim() {
    let bytes = sharded_router_to_vec(&fit_sharded(4)).unwrap();
    let loaded = load_sharded_router_bytes(bytes.clone()).unwrap();
    // Touch one shard only; the other three stay undecoded.
    let touched = loaded.shard_of_db("world");
    let _ = loaded.route_shard(touched, "list the names of all towns", 10);
    assert_eq!(loaded.loaded_shards(), 1);

    // Re-saving splices every lazily-loaded shard straight from the
    // original buffer (decoded routers are immutable, so the bytes stay
    // authoritative): the file round-trips byte for byte, and the untouched
    // shards stay undecoded throughout.
    let resaved = sharded_router_to_vec(&loaded).unwrap();
    assert_eq!(resaved, bytes, "re-save must be byte-identical");
    assert_eq!(loaded.loaded_shards(), 1, "re-save must not decode untouched shards");
}

#[test]
fn truncated_and_corrupted_sharded_bundles_fail_loudly() {
    let bytes = sharded_router_to_vec(&fit_sharded(2)).unwrap();
    for cut in [0, 3, 7, 64, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            load_sharded_router_bytes(bytes[..cut].to_vec()).is_err(),
            "prefix {cut} must fail"
        );
    }
    let mut bad = bytes.clone();
    bad[..4].copy_from_slice(b"ELF\x7f");
    assert!(matches!(load_sharded_router_bytes(bad), Err(PersistError::BadMagic { .. })));
}

#[test]
fn empty_shards_are_served_and_persisted() {
    // 8 shards over 4 databases: several shards are empty. They must fit,
    // route (contributing nothing), persist, and reload.
    let sharded = fit_sharded(8);
    assert_eq!(sharded.num_databases(), 4);
    assert!(sharded.shard_counters().iter().any(|c| c.databases == 0), "want an empty shard");
    let r = sharded.route("how many vocalists are there", 10);
    assert_eq!(r.database_names()[0], "concert_singer");

    let loaded = load_sharded_router_bytes(sharded_router_to_vec(&sharded).unwrap()).unwrap();
    assert_eq!(loaded.num_shards(), 8);
    let r2 = loaded.route("how many vocalists are there", 10);
    assert_eq!(r2.database_names(), r.database_names());
}

#[test]
fn shard_counters_track_databases_loading_and_traffic() {
    let sharded = fit_sharded(2);
    let fresh = sharded.shard_counters();
    assert_eq!(fresh.len(), 2);
    assert_eq!(fresh.iter().map(|c| c.databases).sum::<usize>(), 4);
    assert!(fresh.iter().all(|c| c.loaded), "eagerly-fit shards are resident");
    assert!(fresh.iter().all(|c| c.routes == 0));

    let _ = sharded.route("how many vocalists are there", 10);
    let after = sharded.shard_counters();
    let served: u64 = after.iter().map(|c| c.routes).sum();
    let non_empty = after.iter().filter(|c| c.databases > 0).count() as u64;
    assert_eq!(served, non_empty, "scatter-gather scores once per non-empty shard");

    // A monolithic router reports no shards through the same trait.
    let (mono, _) = DbcRouter::fit(
        SchemaGraph::build(&collection()),
        &examples(),
        cfg(),
        SerializationMode::Dfs,
    );
    assert!(mono.shard_counters().is_empty());
    assert_eq!(Arc::new(mono).shard_counters().len(), 0, "Arc forwarding");
}
