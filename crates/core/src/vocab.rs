//! Output vocabulary of the schema router: word pieces of schema-element
//! names plus special symbols.
//!
//! The router decodes schemata token-by-token (paper Figure 4): element
//! names are sequences of word pieces ("singer_in_concert" → `singer`,
//! `in`, `concert`), elements are separated by [`SEP`] and the sequence
//! terminates with [`EOS`].

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dbcopilot_graph::SchemaGraph;

/// Symbol id type (indexes the decoder embedding tables).
pub type Sym = u32;

/// Beginning-of-sequence (decoder's first input).
pub const BOS: Sym = 0;
/// Element separator.
pub const SEP: Sym = 1;
/// End of sequence.
pub const EOS: Sym = 2;
/// First piece id.
pub const FIRST_PIECE: Sym = 3;

/// Piece vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PieceVocab {
    pieces: Vec<String>,
    by_text: HashMap<String, Sym>,
}

/// Split a schema identifier into lowercase word pieces.
pub fn split_name(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in name.chars() {
        if c.is_alphanumeric() {
            cur.push(c.to_ascii_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl PieceVocab {
    /// Collect every piece of every database and table name in the graph.
    pub fn build(graph: &SchemaGraph) -> Self {
        let mut v = PieceVocab { pieces: Vec::new(), by_text: HashMap::new() };
        let add = |name: &str, v: &mut PieceVocab| {
            for p in split_name(name) {
                if !v.by_text.contains_key(&p) {
                    let id = FIRST_PIECE + v.pieces.len() as Sym;
                    v.by_text.insert(p.clone(), id);
                    v.pieces.push(p);
                }
            }
        };
        for db in graph.database_nodes() {
            add(graph.name(db), &mut v);
            for t in graph.tables_of(db) {
                add(graph.name(t), &mut v);
            }
        }
        v
    }

    /// Total symbol count including specials.
    pub fn len(&self) -> usize {
        FIRST_PIECE as usize + self.pieces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Piece id by text.
    pub fn id_of(&self, piece: &str) -> Option<Sym> {
        self.by_text.get(piece).copied()
    }

    /// Piece text of a symbol (None for specials).
    pub fn text_of(&self, sym: Sym) -> Option<&str> {
        if sym < FIRST_PIECE {
            return None;
        }
        self.pieces.get((sym - FIRST_PIECE) as usize).map(String::as_str)
    }

    /// Encode an element name into piece ids; `None` if any piece is
    /// out-of-vocabulary.
    pub fn encode_name(&self, name: &str) -> Option<Vec<Sym>> {
        split_name(name).iter().map(|p| self.id_of(p)).collect()
    }

    /// Human-readable rendering of a symbol sequence (diagnostics).
    pub fn render(&self, seq: &[Sym]) -> String {
        let mut out = String::new();
        for &s in seq {
            match s {
                BOS => out.push_str("<bos>"),
                SEP => out.push_str(" | "),
                EOS => out.push_str(" <eos>"),
                p => {
                    if !out.is_empty() && !out.ends_with("| ") {
                        out.push(' ');
                    }
                    out.push_str(self.text_of(p).unwrap_or("?"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

    fn graph() -> SchemaGraph {
        let mut c = Collection::new();
        let mut db = DatabaseSchema::new("concert_singer");
        db.add_table(TableSchema::new("singer").column("id", DataType::Int));
        db.add_table(TableSchema::new("singer_in_concert").column("id", DataType::Int));
        c.add_database(db);
        SchemaGraph::build(&c)
    }

    #[test]
    fn split_name_on_underscores() {
        assert_eq!(split_name("singer_in_concert"), vec!["singer", "in", "concert"]);
        assert_eq!(split_name("tv_show2"), vec!["tv", "show2"]);
    }

    #[test]
    fn build_collects_unique_pieces() {
        let v = PieceVocab::build(&graph());
        // pieces: concert, singer, in — deduplicated
        assert_eq!(v.len(), FIRST_PIECE as usize + 3);
        assert!(v.id_of("singer").is_some());
        assert!(v.id_of("in").is_some());
        assert!(v.id_of("zorgon").is_none());
    }

    #[test]
    fn encode_name_roundtrip() {
        let v = PieceVocab::build(&graph());
        let ids = v.encode_name("singer_in_concert").unwrap();
        assert_eq!(ids.len(), 3);
        let texts: Vec<&str> = ids.iter().map(|&i| v.text_of(i).unwrap()).collect();
        assert_eq!(texts, vec!["singer", "in", "concert"]);
        assert!(v.encode_name("unknown_table").is_none());
    }

    #[test]
    fn specials_have_no_text() {
        let v = PieceVocab::build(&graph());
        assert!(v.text_of(BOS).is_none());
        assert!(v.text_of(SEP).is_none());
        assert!(v.text_of(EOS).is_none());
    }

    #[test]
    fn render_readable() {
        let v = PieceVocab::build(&graph());
        let mut seq = v.encode_name("concert_singer").unwrap();
        seq.push(SEP);
        seq.extend(v.encode_name("singer").unwrap());
        seq.push(EOS);
        let s = v.render(&seq);
        assert!(s.contains("concert singer"));
        assert!(s.contains(" | "));
    }
}
