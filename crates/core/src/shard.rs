//! The sharded routing tier: scatter-gather over per-shard [`DbcRouter`]s.
//!
//! The paper's premise is routing over *massive* collections, and one
//! monolithic router stops scaling long before the collection does: every
//! schema change retrains the whole model, every bundle load decodes every
//! weight, and fit time grows with the full collection. [`ShardedRouter`]
//! partitions the collection into N shards by a stable hash of the database
//! name ([`shard_of`]) and keeps one independent `DbcRouter` per shard:
//!
//! * **`route` is scatter-gather** — fan out to every non-empty shard on the
//!   persistent worker pool, calibrate each shard's scores for cross-model
//!   comparability (see `calibrate_scores` — independently trained shard
//!   models do not share a score scale), then merge the per-shard rankings
//!   with a deterministic score-then-name tie-break. Results are
//!   bit-identical at any `DBC_THREADS` value (shards are merged in index
//!   order).
//! * **`extend` is shard-local** — adding or evicting a database retrains
//!   only the owning shard via [`crate::persist::extend_router`]; every
//!   other shard's weights are shared untouched (same `Arc`s, bit-identical).
//! * **Loading is lazy** — a multi-shard `DBC1` bundle (see
//!   [`crate::persist::load_sharded_router_bytes`]) decodes a shard's
//!   weights behind a [`OnceLock`] on first touch, so a 64-shard bundle
//!   serves its first request after loading one shard, not all of them.
//!
//! The partition depends only on database names — never on thread count,
//! machine, or load order — so a collection shards identically everywhere.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use dbcopilot_graph::SchemaGraph;
use dbcopilot_retrieval::{RoutingResult, SchemaRouter, ShardCounters};
use dbcopilot_sqlengine::Collection;
use dbcopilot_synth::{CorpusMeta, Questioner};

use crate::model::RouterConfig;
use crate::persist::{extend_router, load_router_slice, PersistError};
use crate::router::DbcRouter;
use crate::train::{synthesize_training_data, SerializationMode, TrainExample, TrainStats};

/// Stable shard assignment: FNV-1a over the database name, reduced mod
/// `num_shards`. Pure integer arithmetic over the name bytes — independent
/// of thread count, platform, and insertion order, so the same collection
/// partitions identically on every machine and every run.
///
/// # Panics
/// Panics if `num_shards` is zero.
pub fn shard_of(database: &str, num_shards: usize) -> usize {
    assert!(num_shards > 0, "a sharded router needs at least one shard");
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in database.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % num_shards as u64) as usize
}

/// The undecoded payload of a lazily-loaded shard: the whole bundle's bytes
/// (shared across slots) plus this shard's range inside the `SBDL` section.
pub(crate) struct LazyShard {
    pub(crate) bundle: Arc<Vec<u8>>,
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

/// One shard: its owned database names (known without decoding), the
/// decoded router behind a `OnceLock` (`None` inside = the shard owns no
/// databases), optional undecoded bytes, and a served-question counter.
pub(crate) struct ShardSlot {
    db_names: Vec<String>,
    lazy: Option<LazyShard>,
    router: OnceLock<Option<Arc<DbcRouter>>>,
    routes: AtomicU64,
    /// Per-database background scores (aligned with `db_names`): the mean
    /// name-walk log-probability over the tier's shared probe questions —
    /// each model's per-name bias under a common question distribution,
    /// subtracted out by the cross-shard score calibration. Computed once
    /// on first calibrated route.
    background: OnceLock<Vec<f32>>,
}

impl ShardSlot {
    /// A slot whose router is already in memory (fit, extend, legacy load).
    pub(crate) fn eager(db_names: Vec<String>, router: Option<Arc<DbcRouter>>) -> Self {
        let cell = OnceLock::new();
        cell.set(router).expect("fresh OnceLock");
        ShardSlot {
            db_names,
            lazy: None,
            router: cell,
            routes: AtomicU64::new(0),
            background: OnceLock::new(),
        }
    }

    /// A slot that decodes `bundle[offset..offset + len]` on first touch.
    pub(crate) fn lazy(
        db_names: Vec<String>,
        bundle: Arc<Vec<u8>>,
        offset: usize,
        len: usize,
    ) -> Self {
        ShardSlot {
            db_names,
            lazy: Some(LazyShard { bundle, offset, len }),
            router: OnceLock::new(),
            routes: AtomicU64::new(0),
            background: OnceLock::new(),
        }
    }

    /// The cached per-database background scores, computing them on first
    /// use: for each database, the mean full-vocabulary name-walk
    /// log-probability over `probes`. With no probes every background is
    /// zero and calibration degrades to the raw conditional walk.
    fn background(&self, router: &DbcRouter, probes: &[String]) -> &[f32] {
        self.background.get_or_init(|| {
            self.db_names
                .iter()
                .map(|db| {
                    if probes.is_empty() {
                        return 0.0;
                    }
                    let sum: f32 = probes
                        .iter()
                        .map(|q| router.name_logp_unconstrained(q, db).unwrap_or(0.0))
                        .sum();
                    sum / probes.len() as f32
                })
                .collect()
        })
    }

    /// The shard's router, decoding the lazy payload on first touch.
    ///
    /// # Panics
    /// Panics if the deferred payload fails to decode. The manifest framing
    /// and section offsets were validated eagerly at load time, so reaching
    /// this panic requires the bundle bytes to change underneath a live
    /// router.
    pub(crate) fn router(&self) -> Option<&Arc<DbcRouter>> {
        self.router
            .get_or_init(|| {
                let lazy = self.lazy.as_ref().expect("non-eager slot carries lazy bytes");
                if lazy.len == 0 {
                    return None;
                }
                let bytes = &lazy.bundle[lazy.offset..lazy.offset + lazy.len];
                let router = load_router_slice(bytes)
                    .unwrap_or_else(|e| panic!("lazy shard payload failed to decode: {e}"));
                Some(Arc::new(router))
            })
            .as_ref()
    }

    /// Whether the router is decoded and resident.
    pub(crate) fn is_loaded(&self) -> bool {
        self.router.get().is_some()
    }

    pub(crate) fn db_names(&self) -> &[String] {
        &self.db_names
    }

    /// The raw bundle bytes of a lazily-loaded shard — lets a re-save
    /// splice bytes verbatim instead of re-encoding. Valid whether or not
    /// the router has since been decoded: a loaded router is immutable
    /// (ingestion replaces the slot with an eager one), so the original
    /// bytes stay authoritative, and splicing keeps a load→save round trip
    /// byte-identical (re-encoding would reorder JSON map sections).
    pub(crate) fn raw_bytes(&self) -> Option<&[u8]> {
        self.lazy.as_ref().map(|lazy| &lazy.bundle[lazy.offset..lazy.offset + lazy.len])
    }
}

/// A schema router partitioned into independent per-database-name shards.
/// See the [module docs](self) for the partitioning, merge, and lifecycle
/// contracts.
pub struct ShardedRouter {
    shards: Vec<Arc<ShardSlot>>,
    cfg: RouterConfig,
    label: String,
    /// Shared probe questions for cross-shard score calibration: every
    /// shard estimates its databases' background scores over this *same*
    /// question set, so the calibrated scores live on one comparable scale.
    /// Captured at fit time, persisted in the bundle manifest, and carried
    /// unchanged through `extend` so retrained shards stay on the tier's
    /// original scale.
    probes: Arc<Vec<String>>,
}

/// How many probe questions the fit captures for score calibration. Enough
/// to average out per-question noise in the background estimate while
/// keeping first-route calibration and the bundle manifest cheap.
const CALIBRATION_PROBES: usize = 96;

impl ShardedRouter {
    /// Train a sharded router: partition `collection` and `examples` by
    /// [`shard_of`], then fit one `DbcRouter` per non-empty shard,
    /// data-parallel over the persistent worker pool. Each shard trains on
    /// its own sub-collection with the *unchanged* `cfg` (same seed), so a
    /// 1-shard fit is bit-identical to a monolithic [`DbcRouter::fit`] over
    /// the same graph.
    ///
    /// Returns the router and per-shard training stats (empty stats for
    /// empty shards). Examples whose database is absent from `collection`
    /// are dropped.
    pub fn fit(
        collection: &Collection,
        examples: &[TrainExample],
        cfg: RouterConfig,
        mode: SerializationMode,
        num_shards: usize,
    ) -> (Self, Vec<TrainStats>) {
        assert!(num_shards > 0, "a sharded router needs at least one shard");
        let mut subs: Vec<Collection> = (0..num_shards).map(|_| Collection::new()).collect();
        for (name, db) in &collection.databases {
            subs[shard_of(name, num_shards)].add_database(db.clone());
        }
        let mut parts: Vec<Vec<TrainExample>> = vec![Vec::new(); num_shards];
        for ex in examples {
            let s = shard_of(&ex.schema.database, num_shards);
            if subs[s].databases.contains_key(&ex.schema.database) {
                parts[s].push(ex.clone());
            }
        }
        let indices: Vec<usize> = (0..num_shards).collect();
        let fitted: Vec<(Option<Arc<DbcRouter>>, TrainStats)> =
            dbcopilot_runtime::pooled_map(&indices, |_, &s| {
                if subs[s].databases.is_empty() {
                    return (None, TrainStats { epoch_losses: Vec::new(), examples: 0 });
                }
                let graph = SchemaGraph::build(&subs[s]);
                let (mut router, stats) = DbcRouter::fit(graph, &parts[s], cfg.clone(), mode);
                router.set_label(&format!("DBCopilot[shard {s}]"));
                (Some(Arc::new(router)), stats)
            });
        let mut shards = Vec::with_capacity(num_shards);
        let mut all_stats = Vec::with_capacity(num_shards);
        for (s, (router, stats)) in fitted.into_iter().enumerate() {
            let db_names: Vec<String> = subs[s].databases.keys().cloned().collect();
            shards.push(Arc::new(ShardSlot::eager(db_names, router)));
            all_stats.push(stats);
        }
        // The shared calibration probes: a prefix of the training stream,
        // identical for every shard (deterministic — example order is the
        // caller's, never thread-count dependent).
        let probes: Vec<String> =
            examples.iter().take(CALIBRATION_PROBES).map(|ex| ex.question.clone()).collect();
        (
            ShardedRouter {
                shards,
                cfg,
                label: format!("DBCopilot (sharded x{num_shards})"),
                probes: Arc::new(probes),
            },
            all_stats,
        )
    }

    /// Wrap an existing monolithic router as a 1-shard tier (how
    /// pre-manifest `DBC1` bundles load).
    pub fn from_monolith(router: DbcRouter) -> Self {
        let db_names: Vec<String> = router
            .graph
            .database_nodes()
            .iter()
            .map(|&d| router.graph.name(d).to_string())
            .collect();
        let cfg = router.model.cfg.clone();
        let slot = ShardSlot::eager(db_names, Some(Arc::new(router)));
        ShardedRouter {
            shards: vec![Arc::new(slot)],
            cfg,
            label: "DBCopilot (sharded x1)".into(),
            probes: Arc::new(Vec::new()),
        }
    }

    /// Assemble from prepared slots (the persistence loader).
    pub(crate) fn from_parts(
        shards: Vec<Arc<ShardSlot>>,
        cfg: RouterConfig,
        probes: Vec<String>,
    ) -> Self {
        let n = shards.len();
        ShardedRouter {
            shards,
            cfg,
            label: format!("DBCopilot (sharded x{n})"),
            probes: Arc::new(probes),
        }
    }

    /// The shared calibration probe questions (persisted with the tier).
    pub(crate) fn probes(&self) -> &[String] {
        &self.probes
    }

    pub(crate) fn slots(&self) -> &[Arc<ShardSlot>] {
        &self.shards
    }

    pub(crate) fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    pub fn set_label(&mut self, label: &str) {
        self.label = label.to_string();
    }

    /// Number of shards (fixed at fit/load time).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns (or would own) `database`.
    pub fn shard_of_db(&self, database: &str) -> usize {
        shard_of(database, self.shards.len())
    }

    /// Shards whose router is currently decoded and resident.
    pub fn loaded_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.is_loaded()).count()
    }

    /// Total databases across all shards.
    pub fn num_databases(&self) -> usize {
        self.shards.iter().map(|s| s.db_names.len()).sum()
    }

    /// All database names, sorted (each shard stores its names sorted, and
    /// shards partition the name space).
    pub fn database_names(&self) -> Vec<String> {
        let mut out: Vec<String> =
            self.shards.iter().flat_map(|s| s.db_names.iter().cloned()).collect();
        out.sort();
        out
    }

    /// The decoded router of one shard, loading it on first touch; `None`
    /// for empty shards.
    pub fn shard_router(&self, shard: usize) -> Option<Arc<DbcRouter>> {
        self.shards[shard].router().cloned()
    }

    /// Route within a single shard, lazily loading only that shard. Empty
    /// shards answer with an empty result. This is the targeted entry point
    /// that keeps a cold multi-shard bundle's first request from decoding
    /// every shard.
    pub fn route_shard(&self, shard: usize, question: &str, top_tables: usize) -> RoutingResult {
        let slot = &self.shards[shard];
        match slot.router() {
            Some(router) => {
                slot.routes.fetch_add(1, Ordering::Relaxed);
                let mut r = router.route(question, top_tables);
                if self.shards.len() > 1 {
                    calibrate_scores(slot, router, &self.probes, question, &mut r);
                }
                sort_routing(&mut r, top_tables);
                r
            }
            None => RoutingResult::default(),
        }
    }

    /// Route a batch of questions, data-parallel over the worker pool.
    /// Results are in question order and bit-identical at any `DBC_THREADS`.
    pub fn route_batch<S: AsRef<str> + Sync>(
        &self,
        questions: &[S],
        top_tables: usize,
    ) -> Vec<RoutingResult> {
        dbcopilot_runtime::pooled_map(questions, |_, q| self.route(q.as_ref(), top_tables))
    }

    /// Shard-local ingestion: grow (or shrink) the collection and retrain
    /// *only* the shards owning changed databases via
    /// [`extend_router`]; every unaffected shard's router is shared into
    /// the returned tier untouched (same `Arc`, bit-identical weights).
    ///
    /// Previously-empty shards that gain databases are fit from scratch on
    /// synthesized questions for their new schemata. Returns the new tier
    /// plus `(shard, stats)` for each retrained shard.
    pub fn extend(
        &self,
        grown: &Collection,
        meta: &CorpusMeta,
        questioner: &Questioner,
        pairs_for_new: usize,
        epochs: usize,
    ) -> Result<(ShardedRouter, Vec<(usize, TrainStats)>), PersistError> {
        let n = self.shards.len();
        let old_names: BTreeSet<&str> =
            self.shards.iter().flat_map(|s| s.db_names.iter().map(String::as_str)).collect();
        let new_names: BTreeSet<&str> = grown.databases.keys().map(String::as_str).collect();
        let affected: BTreeSet<usize> =
            old_names.symmetric_difference(&new_names).map(|name| shard_of(name, n)).collect();

        let mut shards = Vec::with_capacity(n);
        let mut retrained = Vec::new();
        for (s, slot) in self.shards.iter().enumerate() {
            if !affected.contains(&s) {
                shards.push(Arc::clone(slot));
                continue;
            }
            let mut sub = Collection::new();
            for (name, db) in &grown.databases {
                if shard_of(name, n) == s {
                    sub.add_database(db.clone());
                }
            }
            let db_names: Vec<String> = sub.databases.keys().cloned().collect();
            let (router, stats) = match slot.router() {
                Some(old) if !sub.databases.is_empty() => {
                    let (r, stats) =
                        extend_router(old, &sub, meta, questioner, pairs_for_new, epochs)?;
                    (Some(r), stats)
                }
                Some(_) => {
                    // The shard lost every database: nothing to serve.
                    (None, TrainStats { epoch_losses: Vec::new(), examples: 0 })
                }
                None => {
                    // A previously-empty shard gained databases: fit from
                    // scratch on synthesized questions for its schemata.
                    // The seed is split per shard so distinct shards never
                    // share a sample stream.
                    let graph = SchemaGraph::build(&sub);
                    let mut cfg = self.cfg.clone();
                    cfg.epochs = epochs;
                    let seed = dbcopilot_runtime::split_seed(cfg.seed, s as u64);
                    let examples =
                        synthesize_training_data(&graph, meta, questioner, pairs_for_new, seed);
                    let (r, stats) = DbcRouter::fit(graph, &examples, cfg, SerializationMode::Dfs);
                    (Some(r), stats)
                }
            };
            let router = router.map(|mut r| {
                r.set_label(&format!("DBCopilot[shard {s}]"));
                Arc::new(r)
            });
            shards.push(Arc::new(ShardSlot::eager(db_names, router)));
            retrained.push((s, stats));
        }
        Ok((
            ShardedRouter {
                shards,
                cfg: self.cfg.clone(),
                label: self.label.clone(),
                probes: Arc::clone(&self.probes),
            },
            retrained,
        ))
    }
}

impl std::fmt::Debug for ShardedRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRouter")
            .field("label", &self.label)
            .field("shards", &self.shards.len())
            .field("loaded", &self.loaded_shards())
            .field("databases", &self.num_databases())
            .finish_non_exhaustive()
    }
}

impl SchemaRouter for ShardedRouter {
    fn name(&self) -> &str {
        &self.label
    }

    /// Scatter-gather: every non-empty shard routes the question on the
    /// worker pool, its native scores are calibrated for cross-shard
    /// comparability (see `calibrate_scores`), and the per-shard rankings
    /// are merged with the deterministic score-then-name tie-break (see
    /// `merge_routing`).
    fn route(&self, question: &str, top_tables: usize) -> RoutingResult {
        let calibrated = self.shards.len() > 1;
        let per: Vec<Option<RoutingResult>> =
            dbcopilot_runtime::pooled_map(&self.shards, |_, slot| {
                if slot.db_names.is_empty() {
                    return None;
                }
                let router = slot.router().expect("non-empty shard has a router");
                slot.routes.fetch_add(1, Ordering::Relaxed);
                let mut r = router.route(question, top_tables);
                if calibrated {
                    calibrate_scores(slot, router, &self.probes, question, &mut r);
                }
                Some(r)
            });
        merge_routing(per.into_iter().flatten(), top_tables)
    }

    fn shard_counters(&self) -> Vec<ShardCounters> {
        self.shards
            .iter()
            .map(|s| ShardCounters {
                databases: s.db_names.len(),
                loaded: s.is_loaded(),
                routes: s.routes.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Calibrate one shard's native routing scores for cross-shard merging.
///
/// Per-shard scores come from a softmax over the graph-*allowed* candidate
/// subset, which saturates as the shard shrinks: a one-database shard
/// assigns its database `logp ≈ 0` for any question, so raw scores from
/// independently trained shard models are not comparable. Each candidate
/// database is rescored to a background-centred full-vocabulary walk:
///
/// ```text
/// score(db) = logp_full(db | question) − mean over probe questions q of
///             logp_full(db | q)
/// ```
///
/// Both terms walk the database *name* over the **full** vocabulary
/// ([`DbcRouter::name_logp_unconstrained`]) — no graph constraint, so no
/// subset saturation. Subtracting the mean over the tier's *shared* probe
/// questions (the same questions for every shard, captured at fit and
/// persisted with the bundle) centres away each model's per-name bias
/// under one common question distribution — what remains is how much
/// *this* question raises the name above background, a quantity comparable
/// across independently trained models. This is the standard
/// centred-score merge from federated search, and empirically it not only
/// closes the shard-vs-monolith recall gap but beats the monolith (each
/// shard's within-shard discrimination is sharper than a 16-way softmax).
///
/// Table scores shift along with their database, so within-database table
/// rankings survive the merge untouched.
///
/// Skipped for 1-shard tiers: a single shard *is* the monolith, there is
/// no cross-model comparison to calibrate, and skipping keeps 1-shard
/// routing identical to [`DbcRouter::route`].
fn calibrate_scores(
    slot: &ShardSlot,
    router: &DbcRouter,
    probes: &[String],
    question: &str,
    r: &mut RoutingResult,
) {
    let background = slot.background(router, probes);
    for di in 0..r.databases.len() {
        let name = r.databases[di].0.clone();
        let Some(idx) = slot.db_names.iter().position(|n| *n == name) else { continue };
        let Some(cond) = router.name_logp_unconstrained(question, &name) else { continue };
        let centred = cond - background[idx];
        let shift = centred - r.databases[di].1;
        r.databases[di].1 = centred;
        for t in r.tables.iter_mut().filter(|t| t.0 == name) {
            t.2 += shift;
        }
    }
}

/// Merge per-shard rankings into one: concatenate, then order by score
/// descending with ties broken by name ascending (`total_cmp`, so the order
/// is total even in the presence of NaN scores and identical across thread
/// counts and shard visit order), truncating tables to `top_tables`.
/// Databases are unique across shards by construction (shards partition the
/// collection), so no deduplication is needed.
fn merge_routing(
    parts: impl IntoIterator<Item = RoutingResult>,
    top_tables: usize,
) -> RoutingResult {
    let mut merged = RoutingResult::default();
    for part in parts {
        merged.tables.extend(part.tables);
        merged.databases.extend(part.databases);
    }
    sort_routing(&mut merged, top_tables);
    merged
}

/// The shared ranking contract: score descending, then database name, then
/// table name — a total order, applied identically to merged and
/// single-shard results.
fn sort_routing(r: &mut RoutingResult, top_tables: usize) {
    r.tables.sort_by(|a, b| {
        b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)).then_with(|| a.1.cmp(&b.1))
    });
    r.tables.truncate(top_tables);
    r.databases.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for n in [1, 2, 4, 8, 64] {
            for name in ["concert_singer", "world", "library", "cinema", ""] {
                let s = shard_of(name, n);
                assert!(s < n);
                assert_eq!(s, shard_of(name, n), "must be deterministic");
            }
        }
        for name in ["a", "b", "c"] {
            assert_eq!(shard_of(name, 1), 0);
        }
    }

    #[test]
    fn merge_orders_by_score_then_name() {
        let a = RoutingResult {
            tables: vec![("db_b".into(), "t".into(), 1.0), ("db_b".into(), "u".into(), 0.5)],
            databases: vec![("db_b".into(), 1.0)],
        };
        let b = RoutingResult {
            tables: vec![("db_a".into(), "t".into(), 1.0)],
            databases: vec![("db_a".into(), 1.0)],
        };
        let m = merge_routing([a, b], 10);
        // equal scores: name ascending breaks the tie
        assert_eq!(m.tables[0].0, "db_a");
        assert_eq!(m.tables[1].0, "db_b");
        assert_eq!(m.database_names(), vec!["db_a", "db_b"]);
    }

    #[test]
    fn merge_truncates_tables_but_keeps_all_databases() {
        let part = RoutingResult {
            tables: vec![
                ("d".into(), "a".into(), 3.0),
                ("d".into(), "b".into(), 2.0),
                ("d".into(), "c".into(), 1.0),
            ],
            databases: vec![("d".into(), 3.0)],
        };
        let other = RoutingResult {
            tables: vec![("e".into(), "x".into(), 2.5)],
            databases: vec![("e".into(), 2.5)],
        };
        let m = merge_routing([part, other], 2);
        assert_eq!(m.tables.len(), 2);
        assert_eq!(m.tables[0].2, 3.0);
        assert_eq!(m.tables[1].2, 2.5);
        assert_eq!(m.databases.len(), 2);
    }
}
