//! Router training (paper §3.4–3.5).
//!
//! Training data comes from the reverse generation paradigm: valid schemata
//! are sampled by random walks over the schema graph, the schema questioner
//! generates a pseudo-question for each, and the router learns to map the
//! question to the DFS-serialized schema with teacher forcing. The softmax
//! at each step runs over a *candidate set* — the symbols admissible under
//! constrained decoding plus sampled negatives — a sampled softmax that
//! matches the constrained inference distribution.
//!
//! # Data parallelism
//!
//! Both heavy phases here run on the [`dbcopilot_runtime`] primitives and
//! are bit-for-bit reproducible at any `DBC_THREADS` value:
//!
//! * [`synthesize_training_data`] generates pseudo-questions in parallel,
//!   one derived RNG per example;
//! * [`train_router`] shards every minibatch across workers — each example
//!   gets a private tape, a private RNG derived from `(seed, epoch,
//!   example index)`, and its own backward pass; shard gradients are merged
//!   in fixed example order before the single `AdamW` step
//!   (`ParamStore::merge_grads`), so the updated weights never depend on
//!   the thread count.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dbcopilot_graph::{
    basic_serialize, dfs_serialize, IterOrder, QuerySchema, SchemaGraph, WalkConfig,
};
use dbcopilot_nn::{AdamW, GradShard, Tape};
use dbcopilot_synth::{CorpusMeta, Questioner};

use crate::decode::Constrainer;
use crate::model::RouterModel;
use crate::vocab::{PieceVocab, Sym, BOS, EOS, SEP};

/// How a schema is linearized for the decoder (Table 7 ablation "BS").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerializationMode {
    /// Relation-aware DFS order (Algorithm 2).
    Dfs,
    /// Unordered basic serialization.
    Basic,
}

/// A (question, schema) training example.
#[derive(Debug, Clone)]
pub struct TrainExample {
    pub question: String,
    pub schema: QuerySchema,
}

/// Synthesize `n` training examples: random-walk schemata + pseudo-questions
/// (paper Figure 2). Coverage of every database and table is guaranteed
/// first, as in the paper ("covering all (100%) databases and tables").
pub fn synthesize_training_data(
    graph: &SchemaGraph,
    meta: &CorpusMeta,
    questioner: &Questioner,
    n: usize,
    seed: u64,
) -> Vec<TrainExample> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let walk_cfg = WalkConfig::default();
    let schemata = dbcopilot_graph::sample_covering(graph, &walk_cfg, n, &mut rng);
    // Question generation is independent per schema: run it data-parallel
    // with one RNG per example derived from (seed, index), so the corpus is
    // identical at any thread count.
    dbcopilot_runtime::parallel_map(&schemata, |i, schema| {
        let mut schema = schema.clone();
        let mut rng = dbcopilot_runtime::derive_rng(seed, i as u64);
        // Junction-first role order, matching the convention of the
        // extracted training pairs (questions mention endpoints, the
        // junction table is implied).
        if let Some(dbm) = meta.per_db.get(&schema.database) {
            schema
                .tables
                .sort_by_key(|t| !dbm.tables.get(t).map(|tm| tm.is_junction).unwrap_or(false));
        }
        let (entities, attrs) = dbcopilot_synth::schema_tokens(meta, &schema);
        let question = questioner.generate(&entities, &attrs, &mut rng);
        TrainExample { question, schema }
    })
}

/// Convert original corpus instances into training examples (the "OD"/"MD"
/// ablations).
pub fn examples_from_instances(instances: &[dbcopilot_synth::Instance]) -> Vec<TrainExample> {
    instances
        .iter()
        .map(|i| TrainExample { question: i.question.clone(), schema: i.schema.clone() })
        .collect()
}

/// Per-epoch training statistics.
#[derive(Debug, Clone)]
pub struct TrainStats {
    pub epoch_losses: Vec<f32>,
    pub examples: usize,
}

/// Serialize a schema into decoder target symbols.
fn target_symbols(
    graph: &SchemaGraph,
    vocab: &PieceVocab,
    schema: &QuerySchema,
    mode: SerializationMode,
    rng: &mut SmallRng,
) -> Option<Vec<Sym>> {
    let nodes = match mode {
        SerializationMode::Dfs => dfs_serialize(graph, schema, IterOrder::Random(rng))?,
        SerializationMode::Basic => basic_serialize(graph, schema, rng)?,
    };
    let mut syms = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if i > 0 {
            syms.push(SEP);
        }
        syms.extend(vocab.encode_name(graph.name(*node))?);
    }
    syms.push(EOS);
    Some(syms)
}

/// Forward + backward for one training example on a private tape: the unit
/// of work of the data-parallel minibatch. Returns the example's mean
/// step loss and its gradients (full scale; the caller folds in the
/// `1/batch` factor when merging).
///
/// All randomness (target serialization order, sampled negatives) comes
/// from a private RNG derived from `(seed, stream)`, so the result depends
/// only on the example — never on which worker ran it.
#[allow(clippy::too_many_arguments)]
fn example_shard(
    model: &RouterModel,
    graph: &SchemaGraph,
    vocab: &PieceVocab,
    constrainer: &Constrainer<'_>,
    ex: &TrainExample,
    mode: SerializationMode,
    negatives: usize,
    seed: u64,
    stream: u64,
) -> Option<(f32, GradShard)> {
    let mut rng = dbcopilot_runtime::derive_rng(seed, stream);
    let vocab_len = vocab.len() as Sym;
    let targets = target_symbols(graph, vocab, &ex.schema, mode, &mut rng)?;
    let mut tape = Tape::new();
    let q = model.encode(&mut tape, &ex.question);
    let mut h = q;
    let mut state = constrainer.initial();
    let mut prev = BOS;
    let mut ex_losses = Vec::with_capacity(targets.len());
    for &gold in &targets {
        h = model.step(&mut tape, prev, q, h);
        let candidates = candidate_set(constrainer, &state, gold, vocab_len, negatives, &mut rng);
        let gold_idx = candidates.iter().position(|&c| c == gold).expect("gold in candidates");
        ex_losses.push(model.step_loss(&mut tape, h, &candidates, gold_idx));
        // advance the constraint state along the gold path; a
        // basic-serialized target can violate constraints, in
        // which case negatives fall back to random sampling
        state = constrainer.advance(&state, gold).unwrap_or(state);
        prev = gold;
    }
    if ex_losses.is_empty() {
        return None;
    }
    let total = tape.sum_scalars(&ex_losses);
    let mean = tape.scale(total, 1.0 / ex_losses.len() as f32);
    let loss = tape.value(mean).get(0, 0);
    tape.backward(mean);
    Some((loss, tape.take_grads()))
}

/// Train the router with teacher forcing.
///
/// Data-parallel and deterministic: every minibatch is sharded one example
/// per worker, shard gradients merge in fixed example
/// order, and a single `AdamW` step applies the batch-mean gradient — so
/// epoch losses and final weights are bit-identical at any `DBC_THREADS`
/// value (covered by the crate's determinism test suite).
pub fn train_router(
    model: &mut RouterModel,
    graph: &SchemaGraph,
    vocab: &PieceVocab,
    data: &[TrainExample],
    mode: SerializationMode,
) -> TrainStats {
    assert!(!data.is_empty(), "no training data");
    let cfg = model.cfg.clone();
    let constrainer = Constrainer::new(graph, vocab, cfg.max_tables.max(8));
    // The shuffle RNG runs serially between parallel sections; per-example
    // randomness is derived per (seed, epoch, index) inside the workers.
    let mut shuffle_rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(101));
    let mut opt = AdamW::new(cfg.lr);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut shuffle_rng);
        let mut epoch_loss = 0.0f32;
        let mut counted = 0usize;
        for chunk in order.chunks(cfg.batch) {
            let frozen: &RouterModel = model;
            let shards = dbcopilot_runtime::parallel_map(chunk, |_, &i| {
                let stream = epoch as u64 * data.len() as u64 + i as u64;
                example_shard(
                    frozen,
                    graph,
                    vocab,
                    &constrainer,
                    &data[i],
                    mode,
                    cfg.negatives,
                    cfg.seed,
                    stream,
                )
            });
            let live: Vec<(f32, GradShard)> = shards.into_iter().flatten().collect();
            if live.is_empty() {
                continue;
            }
            let n = live.len();
            counted += n;
            let inv = 1.0 / n as f32;
            let mut grads = Vec::with_capacity(n);
            for (loss, shard) in live {
                epoch_loss += loss;
                grads.push(shard);
            }
            model.store.merge_grads(grads, inv);
            model.store.clip_grad_norm(5.0);
            opt.step(&mut model.store);
        }
        epoch_losses.push(epoch_loss / counted.max(1) as f32);
    }
    TrainStats { epoch_losses, examples: data.len() }
}

/// The sampled-softmax candidate set for one step: constrained-admissible
/// symbols plus random negatives, gold guaranteed.
fn candidate_set(
    constrainer: &Constrainer<'_>,
    state: &crate::decode::DecodeState,
    gold: Sym,
    vocab_len: Sym,
    negatives: usize,
    rng: &mut SmallRng,
) -> Vec<Sym> {
    let mut cands = constrainer.allowed(state);
    const MAX_ALLOWED: usize = 96;
    if cands.len() > MAX_ALLOWED {
        cands.shuffle(rng);
        cands.truncate(MAX_ALLOWED);
    }
    if !cands.contains(&gold) {
        cands.push(gold);
    }
    for _ in 0..negatives {
        let s = rng.gen_range(1..vocab_len);
        if !cands.contains(&s) {
            cands.push(s);
        }
    }
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RouterConfig;
    use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

    fn collection() -> Collection {
        let mut c = Collection::new();
        for (db, tables) in [
            ("concert_singer", vec!["singer", "concert"]),
            ("world", vec!["country", "city"]),
            ("library", vec!["book", "author"]),
        ] {
            let mut d = DatabaseSchema::new(db);
            for t in tables {
                d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
            }
            c.add_database(d);
        }
        c
    }

    fn toy_examples() -> Vec<TrainExample> {
        let mut out = Vec::new();
        for _ in 0..12 {
            out.push(TrainExample {
                question: "how many vocalists are there".into(),
                schema: QuerySchema::new("concert_singer", vec!["singer".into()]),
            });
            out.push(TrainExample {
                question: "list the names of all towns".into(),
                schema: QuerySchema::new("world", vec!["city".into()]),
            });
            out.push(TrainExample {
                question: "which writer published the most volumes".into(),
                schema: QuerySchema::new("library", vec!["book".into(), "author".into()]),
            });
        }
        out
    }

    #[test]
    fn target_symbols_end_with_eos() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let mut rng = SmallRng::seed_from_u64(1);
        let syms = target_symbols(
            &g,
            &v,
            &QuerySchema::new("world", vec!["city".into()]),
            SerializationMode::Dfs,
            &mut rng,
        )
        .unwrap();
        assert_eq!(*syms.last().unwrap(), EOS);
        assert!(syms.contains(&SEP));
    }

    #[test]
    fn training_reduces_loss() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let mut model = RouterModel::new(RouterConfig::tiny(), v.len());
        let stats = train_router(&mut model, &g, &v, &toy_examples(), SerializationMode::Dfs);
        let first = stats.epoch_losses[0];
        let last = *stats.epoch_losses.last().unwrap();
        assert!(
            last < first * 0.6,
            "training should reduce loss: {first} → {last} ({:?})",
            stats.epoch_losses
        );
    }

    #[test]
    fn trained_router_routes_toy_questions() {
        use crate::decode::{beam_search, DecodeOptions};
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let mut cfg = RouterConfig::tiny();
        cfg.epochs = 25;
        let mut model = RouterModel::new(cfg, v.len());
        train_router(&mut model, &g, &v, &toy_examples(), SerializationMode::Dfs);
        let c = Constrainer::new(&g, &v, 3);
        let opts = DecodeOptions {
            beams: 4,
            groups: 4,
            diversity_penalty: 1.0,
            constrained: true,
            diverse: true,
            max_steps: 24,
        };
        let out = beam_search(&model, &c, v.len(), "how many vocalists are there", &opts);
        assert!(!out.is_empty());
        assert_eq!(out[0].schema.database, "concert_singer", "top-1: {:?}", out[0].schema);
        assert!(out[0].schema.tables.contains(&"singer".to_string()));
    }

    #[test]
    fn candidate_set_always_contains_gold() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let c = Constrainer::new(&g, &v, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let state = c.initial();
        for gold in [EOS, SEP, 5, 7] {
            let cands = candidate_set(&c, &state, gold, v.len() as Sym, 8, &mut rng);
            assert!(cands.contains(&gold));
        }
    }

    #[test]
    fn basic_serialization_trains_too() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let mut model = RouterModel::new(RouterConfig::tiny(), v.len());
        let stats = train_router(&mut model, &g, &v, &toy_examples(), SerializationMode::Basic);
        assert_eq!(stats.epoch_losses.len(), model.cfg.epochs);
    }
}
