//! `dbcopilot-core` — the paper's primary contribution: a compact
//! generative-retrieval ("differentiable search index") schema router with
//! graph-constrained diverse beam search.
//!
//! * [`vocab`] — word-piece output vocabulary over schema element names;
//! * [`model`] — the encoder–decoder network ([`model::RouterModel`]);
//! * [`decode`] — Figure 4: dynamic prefix-tree constrained decoding +
//!   diverse beam search, with candidate merging;
//! * [`train`] — Figure 2: random-walk schema sampling + reverse question
//!   generation + teacher-forced training (with the serialization and data
//!   ablations of Table 7);
//! * [`qmodel`] — the frozen i8 twin of the model backing the
//!   `RoutePrecision::I8` scoring path;
//! * [`router`] — the high-level [`router::DbcRouter`] API, implementing the
//!   shared `SchemaRouter` trait used by every method in the evaluation.
//!
//! ```
//! use dbcopilot_core::{DbcRouter, RouterConfig};
//! use dbcopilot_graph::SchemaGraph;
//! use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};
//!
//! let mut collection = Collection::new();
//! let mut db = DatabaseSchema::new("concert_singer");
//! db.add_table(TableSchema::new("singer").column("id", DataType::Int).primary(0));
//! collection.add_database(db);
//!
//! // Even an untrained router decodes only valid schemata — the graph
//! // constraint guarantees it ("fit" the real thing with DbcRouter::fit).
//! let router = DbcRouter::untrained(SchemaGraph::build(&collection), RouterConfig::tiny());
//! let candidates = router.route_schemata("how many singers are there");
//! assert!(!candidates.is_empty());
//! assert_eq!(candidates[0].schema.database, "concert_singer");
//! ```

pub mod decode;
pub mod model;
pub mod persist;
pub mod qmodel;
pub mod router;
pub mod shard;
pub mod train;
pub mod vocab;

pub use dbcopilot_retrieval::{PrecisionSwitch, RoutePrecision};

pub use decode::{beam_search, merge_candidates, Constrainer, DecodeOptions, DecodedSchema};
pub use model::{RouterConfig, RouterModel};
pub use persist::{
    extend_router, load_router, load_router_file, load_router_slice, load_sharded_router_bytes,
    load_sharded_router_file, router_disk_size, router_to_vec, save_router, save_router_as,
    save_router_file, save_router_file_as, save_sharded_router, save_sharded_router_file,
    sharded_router_to_vec, Format, PersistError,
};
pub use qmodel::QuantRouterModel;
pub use router::DbcRouter;
pub use shard::{shard_of, ShardedRouter};
pub use train::{
    examples_from_instances, synthesize_training_data, train_router, SerializationMode,
    TrainExample, TrainStats,
};
pub use vocab::{PieceVocab, Sym, BOS, EOS, SEP};
