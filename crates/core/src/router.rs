//! The public schema-router API: the paper's "copilot model".

use std::sync::Arc;

use dbcopilot_graph::{QuerySchema, SchemaGraph};
use dbcopilot_retrieval::{PrecisionSwitch, RoutePrecision, RoutingResult, SchemaRouter};

use crate::decode::{
    beam_search, beam_search_with, merge_candidates, Constrainer, DecodeOptions, DecodedSchema,
};
use crate::model::{RouterConfig, RouterModel};
use crate::qmodel::QuantScorer;
use crate::train::{train_router, SerializationMode, TrainExample, TrainStats};
use crate::vocab::{PieceVocab, Sym, BOS, SEP};

/// A trained DBCopilot schema router.
///
/// `Debug` prints a summary (label, vocabulary and graph sizes), not the
/// weights.
pub struct DbcRouter {
    pub model: RouterModel,
    pub vocab: PieceVocab,
    pub graph: SchemaGraph,
    pub decode_opts: DecodeOptions,
    pub(crate) label: String,
    /// Scoring precision of `sequences`/`route`; switched via
    /// [`PrecisionSwitch::set_precision`], which freezes quantized weights
    /// on first use.
    pub(crate) precision: RoutePrecision,
}

impl DbcRouter {
    /// Train a router over a schema graph from (question, schema) examples.
    pub fn fit(
        graph: SchemaGraph,
        data: &[TrainExample],
        cfg: RouterConfig,
        mode: SerializationMode,
    ) -> (Self, TrainStats) {
        let vocab = PieceVocab::build(&graph);
        let mut model = RouterModel::new(cfg, vocab.len());
        let stats = train_router(&mut model, &graph, &vocab, data, mode);
        let decode_opts = DecodeOptions::from_config(&model.cfg);
        (
            DbcRouter {
                model,
                vocab,
                graph,
                decode_opts,
                label: "DBCopilot".to_string(),
                precision: RoutePrecision::F32,
            },
            stats,
        )
    }

    /// Build an untrained router (tests, decoding benchmarks).
    pub fn untrained(graph: SchemaGraph, cfg: RouterConfig) -> Self {
        let vocab = PieceVocab::build(&graph);
        let model = RouterModel::new(cfg, vocab.len());
        let decode_opts = DecodeOptions::from_config(&model.cfg);
        DbcRouter {
            model,
            vocab,
            graph,
            decode_opts,
            label: "DBCopilot".to_string(),
            precision: RoutePrecision::F32,
        }
    }

    pub fn set_label(&mut self, label: &str) {
        self.label = label.to_string();
    }

    /// Raw candidate sequences (best first), scored at the selected
    /// precision.
    pub fn sequences(&self, question: &str) -> Vec<DecodedSchema> {
        let constrainer = Constrainer::new(&self.graph, &self.vocab, self.model.cfg.max_tables);
        match self.precision {
            RoutePrecision::F32 => beam_search(
                &self.model,
                &constrainer,
                self.vocab.len(),
                question,
                &self.decode_opts,
            ),
            RoutePrecision::I8 => {
                let qm = self.model.quant.as_ref().expect(
                    "RoutePrecision::I8 requires frozen quantized weights; \
                     set_precision freezes them — do not clear model.quant while I8 is selected",
                );
                let mut scorer = QuantScorer::new(&self.model, qm);
                beam_search_with(
                    &mut scorer,
                    &constrainer,
                    self.vocab.len(),
                    question,
                    &self.decode_opts,
                )
            }
        }
    }

    /// Candidate schemata with per-database table union (paper §3.5).
    pub fn route_schemata(&self, question: &str) -> Vec<DecodedSchema> {
        merge_candidates(&self.sequences(question))
    }

    /// The single best schema, if any sequence finished.
    pub fn best_schema(&self, question: &str) -> Option<QuerySchema> {
        self.sequences(question).into_iter().next().map(|d| d.schema)
    }

    /// Share this router read-only across threads (the serving entry
    /// point): all routing methods take `&self`, and the inference path is
    /// tape-free, so one trained router can serve any number of concurrent
    /// callers through the returned [`Arc`].
    pub fn into_shared(self) -> Arc<DbcRouter> {
        Arc::new(self)
    }

    /// Route a batch of questions, data-parallel over the persistent
    /// worker pool in `dbcopilot-runtime`. Results are in question order
    /// and bit-for-bit identical at any `DBC_THREADS` value (each question
    /// routes independently; no state is shared across items).
    ///
    /// Accepts any string-like slice (`&[&str]`, `&[String]`, …) so call
    /// sites don't have to allocate owned questions just to batch them.
    pub fn route_batch<S: AsRef<str> + Sync>(
        &self,
        questions: &[S],
        top_tables: usize,
    ) -> Vec<RoutingResult> {
        dbcopilot_runtime::pooled_map(questions, |_, q| self.route(q.as_ref(), top_tables))
    }

    /// Log-probability of `database`'s name pieces under the
    /// *full-vocabulary* softmax, conditioned on `question` (pass `""` for
    /// the null-question encoding). `None` if the name is not encodable in
    /// this router's vocabulary.
    ///
    /// Beam-search scores normalize over the graph-allowed candidate subset
    /// at every step, which is the right objective *within* one router but
    /// saturates as the subset shrinks — a router over a single database
    /// scores it at `logp ≈ 0` for any question. This walk keeps the whole
    /// vocabulary in the softmax, so the score reflects how strongly the
    /// question pulls probability mass onto the name against every
    /// alternative the model knows. The sharded tier uses the *difference*
    /// between the question-conditioned and null-conditioned walks as its
    /// cross-shard merge score (a PMI-style calibration that cancels each
    /// shard model's unconditional bias). Always scored at f32, independent
    /// of the routing precision — calibration deltas must not mix
    /// precisions across shards.
    pub fn name_logp_unconstrained(&self, question: &str, database: &str) -> Option<f32> {
        self.schema_logp_unconstrained(question, database, None)
    }

    /// Like [`Self::name_logp_unconstrained`], but scoring the decoder's
    /// full schema prefix `database pieces, SEP, table pieces` when a table
    /// is given — the same symbol sequence constrained decoding emits, so
    /// the walk measures the question's pull on the *schema*, not just the
    /// database label (questions usually mention table entities).
    pub fn schema_logp_unconstrained(
        &self,
        question: &str,
        database: &str,
        table: Option<&str>,
    ) -> Option<f32> {
        let mut pieces = self.vocab.encode_name(database)?;
        if let Some(table) = table {
            pieces.push(SEP);
            pieces.extend(self.vocab.encode_name(table)?);
        }
        let all: Vec<Sym> = (0..self.vocab.len() as Sym).collect();
        let q = self.model.encode_infer(question);
        // Mirrors beam-search initialization: hidden starts at the question
        // encoding, previous symbol at BOS.
        let mut h = q.clone();
        let mut prev = BOS;
        let mut logp = 0.0;
        for &sym in &pieces {
            h = self.model.step_infer(prev, &q, &h);
            logp += self.model.logprobs_infer(&h, &all)[sym as usize];
            prev = sym;
        }
        Some(logp)
    }

    /// On-disk size in bytes of the binary-serialized router bundle —
    /// weights, vocabulary, graph and config (Table 5 "Disk").
    ///
    /// # Panics
    /// Panics if the metadata fails to serialize, which cannot happen for a
    /// router constructed through this crate; use
    /// [`crate::persist::router_disk_size`] to handle the error instead.
    pub fn size_bytes(&self) -> usize {
        crate::persist::router_disk_size(self).expect("in-memory router must serialize")
    }
}

impl std::fmt::Debug for DbcRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbcRouter")
            .field("label", &self.label)
            .field("vocab_len", &self.vocab.len())
            .field("databases", &self.graph.database_nodes().len())
            .finish_non_exhaustive()
    }
}

impl PrecisionSwitch for DbcRouter {
    /// Select the scoring precision. Switching to I8 freezes the current
    /// f32 weights on first use (a no-op when a quantized store is already
    /// attached — e.g. loaded from a `QNT8` bundle section).
    fn set_precision(&mut self, precision: RoutePrecision) {
        if precision == RoutePrecision::I8 && self.model.quant.is_none() {
            self.model.freeze_quant();
        }
        self.precision = precision;
    }

    fn precision(&self) -> RoutePrecision {
        self.precision
    }
}

impl SchemaRouter for DbcRouter {
    fn name(&self) -> &str {
        &self.label
    }

    fn route(&self, question: &str, top_tables: usize) -> RoutingResult {
        let seqs = self.sequences(question);
        // Tables scored by the best sequence containing them; databases by
        // their best sequence.
        let mut tables: Vec<(String, String, f32)> = Vec::new();
        let mut databases: Vec<(String, f32)> = Vec::new();
        for d in &seqs {
            let db = &d.schema.database;
            match databases.iter_mut().find(|(name, _)| name == db) {
                Some((_, s)) => *s = s.max(d.logp),
                None => databases.push((db.clone(), d.logp)),
            }
            for t in &d.schema.tables {
                match tables.iter_mut().find(|(tdb, tt, _)| tdb == db && tt == t) {
                    Some((_, _, s)) => *s = s.max(d.logp),
                    None => tables.push((db.clone(), t.clone(), d.logp)),
                }
            }
        }
        tables.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        tables.truncate(top_tables);
        databases.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        RoutingResult { tables, databases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

    fn graph() -> SchemaGraph {
        let mut c = Collection::new();
        for (db, tables) in
            [("concert_singer", vec!["singer", "concert"]), ("world", vec!["country", "city"])]
        {
            let mut d = DatabaseSchema::new(db);
            for t in tables {
                d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
            }
            c.add_database(d);
        }
        SchemaGraph::build(&c)
    }

    fn examples() -> Vec<TrainExample> {
        let mut out = Vec::new();
        for _ in 0..10 {
            out.push(TrainExample {
                question: "how many vocalists".into(),
                schema: QuerySchema::new("concert_singer", vec!["singer".into()]),
            });
            out.push(TrainExample {
                question: "population of towns".into(),
                schema: QuerySchema::new("world", vec!["city".into()]),
            });
        }
        out
    }

    #[test]
    fn fit_and_route_end_to_end() {
        let mut cfg = RouterConfig::tiny();
        cfg.epochs = 20;
        let (router, stats) =
            super::DbcRouter::fit(graph(), &examples(), cfg, SerializationMode::Dfs);
        assert!(stats.epoch_losses.last().unwrap() < &stats.epoch_losses[0]);
        let result = router.route("how many vocalists", 10);
        assert!(!result.databases.is_empty());
        assert_eq!(result.database_names()[0], "concert_singer");
        let best = router.best_schema("population of towns").unwrap();
        assert_eq!(best.database, "world");
    }

    #[test]
    fn routing_result_tables_are_ranked() {
        let (router, _) =
            DbcRouter::fit(graph(), &examples(), RouterConfig::tiny(), SerializationMode::Dfs);
        let r = router.route("how many vocalists", 5);
        for w in r.tables.windows(2) {
            assert!(w[0].2 >= w[1].2, "tables must be sorted by score");
        }
    }

    #[test]
    fn untrained_router_still_produces_valid_output() {
        let router = DbcRouter::untrained(graph(), RouterConfig::tiny());
        let out = router.route_schemata("anything at all");
        assert!(!out.is_empty());
    }

    #[test]
    fn i8_precision_routes_like_f32_and_switches_back_exactly() {
        let mut cfg = RouterConfig::tiny();
        cfg.epochs = 20;
        let (mut router, _) = DbcRouter::fit(graph(), &examples(), cfg, SerializationMode::Dfs);
        let exact = router.route("how many vocalists", 10);

        router.set_precision(RoutePrecision::I8);
        assert_eq!(router.precision(), RoutePrecision::I8);
        assert!(router.model.quant.is_some(), "switching to I8 must freeze weights");
        let quant = router.route("how many vocalists", 10);
        assert_eq!(
            exact.database_names()[0],
            quant.database_names()[0],
            "trained top-1 database must survive quantization"
        );

        // Switching back is exact: the f32 weights were never touched.
        router.set_precision(RoutePrecision::F32);
        let back = router.route("how many vocalists", 10);
        assert_eq!(back.database_names(), exact.database_names());
        assert_eq!(back.tables, exact.tables);
    }

    #[test]
    fn router_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbcRouter>();

        let shared = DbcRouter::untrained(graph(), RouterConfig::tiny()).into_shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    let r = shared.route("how many vocalists", 10);
                    assert!(!r.databases.is_empty());
                });
            }
        });
    }

    #[test]
    fn route_batch_matches_per_question_routing() {
        let router = DbcRouter::untrained(graph(), RouterConfig::tiny());
        let questions: Vec<String> =
            ["how many vocalists", "population of towns", "how many vocalists"]
                .map(String::from)
                .to_vec();
        let batch = router.route_batch(&questions, 10);
        assert_eq!(batch.len(), 3);
        for (q, b) in questions.iter().zip(&batch) {
            let single = router.route(q, 10);
            assert_eq!(single.database_names(), b.database_names());
            assert_eq!(single.tables, b.tables);
        }
    }
}
