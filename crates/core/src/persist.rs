//! Router persistence and incremental schema update.
//!
//! The paper's §6 ("Dynamic Schema Update") notes that real collections
//! evolve and asks for cheaper adaptation than full retraining. This module
//! provides both halves:
//!
//! * [`save_router`]/[`load_router`] — persist a trained router (weights,
//!   vocabulary, graph, config) so it can serve without retraining;
//! * [`extend_router`] — register new databases and *fine-tune* on
//!   synthesized questions for the new schemata only, reusing the existing
//!   weights (new word pieces get fresh embedding rows).
//!
//! The default on-disk form is a `DBC1` binary container (see
//! [`dbcopilot_nn::codec`]): one section per bundle component, with the
//! weight section storing raw `f32` bits so a save→load round trip is
//! bit-exact. JSON remains available behind [`Format::Json`] for human
//! inspection, and [`load_router`] sniffs the format so either file kind
//! loads through the same entry point. Every load validates magic, version,
//! parameter names and tensor shapes against the config and fails with a
//! typed [`PersistError`] in release builds — corruption is never a
//! `debug_assert!`.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dbcopilot_graph::SchemaGraph;
use dbcopilot_nn::codec::{self, Section};
use dbcopilot_nn::serialize::{ensure_finite, sniff_format};
pub use dbcopilot_nn::serialize::{Format, PersistError};
use dbcopilot_nn::ParamStore;
use dbcopilot_nn::QuantizedStore;
use dbcopilot_nn::Tensor;
use dbcopilot_retrieval::RoutePrecision;
use dbcopilot_sqlengine::Collection;
use dbcopilot_synth::Questioner;

use crate::decode::DecodeOptions;
use crate::model::{RouterConfig, RouterModel};
use crate::router::DbcRouter;
use crate::shard::{ShardSlot, ShardedRouter};
use crate::train::{train_router, SerializationMode, TrainExample, TrainStats};
use crate::vocab::PieceVocab;

/// Router hyper-parameter section (JSON payload).
const SEC_CONFIG: [u8; 4] = *b"RCFG";
/// Piece-vocabulary section (JSON payload).
const SEC_VOCAB: [u8; 4] = *b"VOCB";
/// Schema-graph section (JSON payload).
const SEC_GRAPH: [u8; 4] = *b"GRPH";
/// Sharded-bundle manifest section: shard count, per-shard database names
/// and `(offset, len)` ranges into the `SBDL` payload.
const SEC_SHARDS: [u8; 4] = *b"SHRD";
/// Concatenated per-shard router bundles (each itself a full `DBC1`
/// container; empty shards contribute zero bytes).
const SEC_SHARD_BUNDLES: [u8; 4] = *b"SBDL";

/// On-disk router representation (the JSON escape hatch; the binary path
/// writes the same four components as `DBC1` sections).
#[derive(Serialize, Deserialize)]
struct SavedRouter {
    store: ParamStore,
    vocab: PieceVocab,
    graph: SchemaGraph,
    cfg: RouterConfig,
}

/// Borrowed mirror of [`SavedRouter`] for the JSON save path: serializes to
/// the identical object (same field names and order, so [`SavedRouter`]
/// deserializes it) without deep-copying the store, vocabulary, or graph.
/// Hand-implemented because the vendored derive does not support lifetimes.
struct SavedRouterRef<'a> {
    store: &'a ParamStore,
    vocab: &'a PieceVocab,
    graph: &'a SchemaGraph,
    cfg: &'a RouterConfig,
}

impl Serialize for SavedRouterRef<'_> {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("store".to_string(), self.store.serialize()),
            ("vocab".to_string(), self.vocab.serialize()),
            ("graph".to_string(), self.graph.serialize()),
            ("cfg".to_string(), self.cfg.serialize()),
        ])
    }
}

/// Encode a router as a `DBC1` binary bundle. Weight bits are preserved
/// exactly; the config/vocab/graph sections are JSON payloads (they hold no
/// weights and are dwarfed by the parameter section).
pub fn router_to_vec(router: &DbcRouter) -> Result<Vec<u8>, PersistError> {
    let mut sections = vec![
        Section::new(SEC_CONFIG, serde_json::to_vec(&router.model.cfg)?),
        Section::new(SEC_VOCAB, serde_json::to_vec(&router.vocab)?),
        Section::new(SEC_GRAPH, serde_json::to_vec(&router.graph)?),
        Section::new(codec::SEC_PARAMS, codec::encode_store_section(&router.model.store)),
    ];
    // Frozen quantized weights ride along in an optional `QNT8` section so
    // the loaded bundle serves at I8 with zero re-quantization. Pre-QNT8
    // readers skip unknown sections; pre-QNT8 bundles simply lack it.
    if let Some(qm) = &router.model.quant {
        sections.push(Section::new(codec::SEC_QUANT, codec::encode_quant_section(qm.store())));
    }
    Ok(codec::encode_container(&sections))
}

/// Serialize a trained router to a writer in the given format.
pub fn save_router_as<W: Write>(
    router: &DbcRouter,
    mut w: W,
    format: Format,
) -> Result<(), PersistError> {
    match format {
        Format::Binary => Ok(w.write_all(&router_to_vec(router)?)?),
        Format::Json => {
            ensure_finite(&router.model.store)?;
            let saved = SavedRouterRef {
                store: &router.model.store,
                vocab: &router.vocab,
                graph: &router.graph,
                cfg: &router.model.cfg,
            };
            serde_json::to_writer(w, &saved)?;
            Ok(())
        }
    }
}

/// Serialize a trained router to a writer (binary `DBC1`).
pub fn save_router<W: Write>(router: &DbcRouter, w: W) -> Result<(), PersistError> {
    save_router_as(router, w, Format::Binary)
}

/// Deserialize a router from a byte buffer, sniffing the format.
pub fn load_router_slice(bytes: &[u8]) -> Result<DbcRouter, PersistError> {
    let (saved, quant) = match sniff_format(bytes)? {
        Format::Binary => {
            let sections = codec::decode_container(bytes)?;
            // A sharded manifest is a different artifact kind, not a broken
            // monolithic bundle: refuse it with a pointer to the right
            // loader instead of failing on a "missing" VOCB section.
            if codec::find_section(&sections, SEC_SHARDS)?.is_some() {
                return Err(PersistError::Corrupt(
                    "sharded (SHRD) router bundle: load it with \
                     load_sharded_router_bytes / load_sharded_router_file"
                        .to_string(),
                ));
            }
            let cfg: RouterConfig =
                serde_json::from_slice(&codec::require_section(&sections, SEC_CONFIG)?.bytes)?;
            let vocab: PieceVocab =
                serde_json::from_slice(&codec::require_section(&sections, SEC_VOCAB)?.bytes)?;
            let graph: SchemaGraph =
                serde_json::from_slice(&codec::require_section(&sections, SEC_GRAPH)?.bytes)?;
            let store = codec::decode_store_section(
                &codec::require_section(&sections, codec::SEC_PARAMS)?.bytes,
            )?;
            // `QNT8` is optional: pre-quantization bundles load fine and
            // serve at F32 (I8 re-freezes from the f32 weights on demand).
            let quant = match codec::find_section(&sections, codec::SEC_QUANT)? {
                Some(sec) => Some(codec::decode_quant_section(&sec.bytes)?),
                None => None,
            };
            (SavedRouter { store, vocab, graph, cfg }, quant)
        }
        // The JSON escape hatch never carries quantized weights: it exists
        // for human inspection of the f32 bundle.
        Format::Json => (serde_json::from_slice(bytes)?, None),
    };
    assemble_router(saved, quant)
}

/// Deserialize a router from a reader, sniffing the format.
pub fn load_router<R: Read>(mut r: R) -> Result<DbcRouter, PersistError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    load_router_slice(&buf)
}

/// Save to a file in the given format.
pub fn save_router_file_as(
    router: &DbcRouter,
    path: impl AsRef<Path>,
    format: Format,
) -> Result<(), PersistError> {
    let f = std::fs::File::create(path)?;
    save_router_as(router, std::io::BufWriter::new(f), format)
}

/// Save to a file (binary `DBC1`).
pub fn save_router_file(router: &DbcRouter, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_router_file_as(router, path, Format::Binary)
}

/// Load from a file (either format).
pub fn load_router_file(path: impl AsRef<Path>) -> Result<DbcRouter, PersistError> {
    let f = std::fs::File::open(path)?;
    load_router(std::io::BufReader::new(f))
}

// ---------------------------------------------------------------------
// sharded bundles
// ---------------------------------------------------------------------

/// Encode a sharded router as one `DBC1` container: a `SHRD` manifest
/// (shard count, per-shard database names, per-shard byte ranges), the
/// tier's `RCFG` config, and an `SBDL` payload holding each shard's own
/// complete router bundle back to back.
///
/// Shards that were loaded lazily and never decoded are *spliced through as
/// raw bytes* — re-saving a 64-shard bundle after a one-shard
/// [`ShardedRouter::extend`] re-encodes only the shards that were actually
/// touched.
pub fn sharded_router_to_vec(router: &ShardedRouter) -> Result<Vec<u8>, PersistError> {
    let slots = router.slots();
    let mut blob: Vec<u8> = Vec::new();
    let mut manifest: Vec<u8> = Vec::new();
    manifest.extend_from_slice(&u32::try_from(slots.len()).expect("shard count").to_le_bytes());
    for slot in slots {
        let names = slot.db_names();
        manifest.extend_from_slice(&u32::try_from(names.len()).expect("db count").to_le_bytes());
        for name in names {
            manifest
                .extend_from_slice(&u32::try_from(name.len()).expect("name length").to_le_bytes());
            manifest.extend_from_slice(name.as_bytes());
        }
        let offset = blob.len() as u64;
        match slot.raw_bytes() {
            Some(raw) => blob.extend_from_slice(raw),
            None => {
                if let Some(shard_router) = slot.router() {
                    blob.extend_from_slice(&router_to_vec(shard_router)?);
                }
            }
        }
        manifest.extend_from_slice(&offset.to_le_bytes());
        manifest.extend_from_slice(&(blob.len() as u64 - offset).to_le_bytes());
    }
    // The tier's shared calibration probe questions. Persisted so that a
    // lazily-loaded or extended tier keeps scoring every shard against the
    // *same* background question distribution it was fit with.
    let probes = router.probes();
    manifest.extend_from_slice(&u32::try_from(probes.len()).expect("probe count").to_le_bytes());
    for q in probes {
        manifest.extend_from_slice(&u32::try_from(q.len()).expect("probe length").to_le_bytes());
        manifest.extend_from_slice(q.as_bytes());
    }
    let sections = vec![
        Section::new(SEC_SHARDS, manifest),
        Section::new(SEC_CONFIG, serde_json::to_vec(router.config())?),
        Section::new(SEC_SHARD_BUNDLES, blob),
    ];
    Ok(codec::encode_container(&sections))
}

/// Serialize a sharded router to a writer (binary `DBC1` with a `SHRD`
/// manifest).
pub fn save_sharded_router<W: Write>(router: &ShardedRouter, mut w: W) -> Result<(), PersistError> {
    w.write_all(&sharded_router_to_vec(router)?)?;
    Ok(())
}

/// Save a sharded router to a file.
pub fn save_sharded_router_file(
    router: &ShardedRouter,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let f = std::fs::File::create(path)?;
    save_sharded_router(router, std::io::BufWriter::new(f))
}

/// Manifest entry parsed eagerly at load time.
struct ShardManifestEntry {
    names: Vec<String>,
    offset: usize,
    len: usize,
}

/// Load a sharded router from an owned byte buffer.
///
/// The manifest, config, and every shard's container *framing* are
/// validated eagerly (magic, version, section table, byte ranges), but a
/// shard's weights are only decoded on first touch — the buffer is kept
/// alive behind an `Arc` and each shard holds its byte range into it, so a
/// 64-shard bundle starts serving after decoding exactly the shards the
/// traffic reaches.
///
/// Pre-manifest bundles — monolithic `DBC1` containers and the JSON escape
/// hatch — load as a 1-shard tier, so every artifact ever written by
/// [`save_router`] keeps loading here (back compat is covered both ways:
/// see also the `SHRD` rejection in [`load_router_slice`]).
pub fn load_sharded_router_bytes(bytes: Vec<u8>) -> Result<ShardedRouter, PersistError> {
    if matches!(sniff_format(&bytes)?, Format::Json) {
        return Ok(ShardedRouter::from_monolith(load_router_slice(&bytes)?));
    }
    let parsed: Option<(Vec<ShardManifestEntry>, RouterConfig, usize, Vec<String>)> = {
        let sections = codec::decode_container(&bytes)?;
        match codec::find_section(&sections, SEC_SHARDS)? {
            None => None,
            Some(manifest_sec) => {
                let cfg: RouterConfig =
                    serde_json::from_slice(&codec::require_section(&sections, SEC_CONFIG)?.bytes)?;
                let blob = &codec::require_section(&sections, SEC_SHARD_BUNDLES)?.bytes;
                // Section payloads are borrowed straight out of `bytes`, so
                // the blob's position inside the file is the pointer delta.
                let blob_base = blob.as_ptr() as usize - bytes.as_ptr() as usize;
                let mut r = codec::Reader::new(&manifest_sec.bytes);
                let count = r.take_u32("shard count")? as usize;
                if count == 0 {
                    return Err(PersistError::Corrupt(
                        "sharded bundle declares zero shards".to_string(),
                    ));
                }
                let mut entries = Vec::with_capacity(count);
                for shard in 0..count {
                    let n_names = r.take_u32("shard database count")? as usize;
                    let mut names = Vec::with_capacity(n_names);
                    for _ in 0..n_names {
                        let len = r.take_u32("database name length")? as usize;
                        let raw = r.take_bytes(len, "database name")?;
                        let name = std::str::from_utf8(raw).map_err(|_| {
                            PersistError::Corrupt(format!(
                                "shard {shard} database name is not UTF-8"
                            ))
                        })?;
                        names.push(name.to_string());
                    }
                    let offset = r.take_u64("shard offset")? as usize;
                    let len = r.take_u64("shard length")? as usize;
                    let end =
                        offset.checked_add(len).filter(|&e| e <= blob.len()).ok_or_else(|| {
                            PersistError::Corrupt(format!(
                                "shard {shard} range {offset}+{len} exceeds payload of {} bytes",
                                blob.len()
                            ))
                        })?;
                    if names.is_empty() != (len == 0) {
                        return Err(PersistError::Corrupt(format!(
                            "shard {shard} is inconsistent: {} databases, {len} payload bytes",
                            names.len()
                        )));
                    }
                    if len > 0 {
                        // Cheap eager check: the shard's own container must
                        // frame correctly (magic, version, section table).
                        // Weight decoding stays deferred.
                        codec::decode_container(&blob[offset..end])?;
                    }
                    entries.push(ShardManifestEntry { names, offset, len });
                }
                // Calibration probes: absent in manifests written before
                // the field existed, in which case calibration falls back
                // to uncentred conditional walks.
                let mut probes = Vec::new();
                if !r.at_end() {
                    let n_probes = r.take_u32("probe count")? as usize;
                    probes.reserve(n_probes);
                    for i in 0..n_probes {
                        let len = r.take_u32("probe length")? as usize;
                        let raw = r.take_bytes(len, "probe question")?;
                        let q = std::str::from_utf8(raw).map_err(|_| {
                            PersistError::Corrupt(format!("probe question {i} is not UTF-8"))
                        })?;
                        probes.push(q.to_string());
                    }
                }
                r.expect_end()?;
                Some((entries, cfg, blob_base, probes))
            }
        }
    };
    match parsed {
        None => Ok(ShardedRouter::from_monolith(load_router_slice(&bytes)?)),
        Some((entries, cfg, blob_base, probes)) => {
            let bundle = Arc::new(bytes);
            let slots = entries
                .into_iter()
                .map(|e| {
                    Arc::new(ShardSlot::lazy(
                        e.names,
                        Arc::clone(&bundle),
                        blob_base + e.offset,
                        e.len,
                    ))
                })
                .collect();
            Ok(ShardedRouter::from_parts(slots, cfg, probes))
        }
    }
}

/// Load a sharded router from a file (any bundle kind; see
/// [`load_sharded_router_bytes`]).
pub fn load_sharded_router_file(path: impl AsRef<Path>) -> Result<ShardedRouter, PersistError> {
    load_sharded_router_bytes(std::fs::read(path)?)
}

/// Exact on-disk size in bytes of the binary router bundle — the Table 5
/// "Disk" number for DBCopilot, measured over the full saved artifact
/// (weights + vocabulary + graph + config), not just the weights.
///
/// Only the three small JSON metadata sections are actually serialized;
/// the weight section's length is computed arithmetically, so no copy of
/// the weights is made. Consistency with [`save_router`]'s real output is
/// pinned by a test.
pub fn router_disk_size(router: &DbcRouter) -> Result<usize, PersistError> {
    let cfg = serde_json::to_vec(&router.model.cfg)?.len();
    let vocab = serde_json::to_vec(&router.vocab)?.len();
    let graph = serde_json::to_vec(&router.graph)?.len();
    let store = codec::store_section_len(&router.model.store);
    let mut lens = vec![cfg, vocab, graph, store];
    if let Some(qm) = &router.model.quant {
        lens.push(codec::quant_section_len(qm.store()));
    }
    Ok(codec::container_len(&lens))
}

/// Build a serving router from loaded components, verifying the loaded
/// parameters against the layout the config implies.
fn assemble_router(
    saved: SavedRouter,
    quant: Option<QuantizedStore>,
) -> Result<DbcRouter, PersistError> {
    let mut model = RouterModel::new(saved.cfg, saved.vocab.len());
    // The layer structs hold ParamIds bound during `RouterModel::new`; the
    // loaded store must present the same parameters, in the same order, with
    // the same shapes, or those ids would silently address the wrong
    // tensors. Corrupted or truncated files fail here with a typed error.
    validate_store_layout(&model.store, &saved.store)?;
    model.store = saved.store;
    if let Some(qs) = quant {
        // The quantized store is addressed by the same ParamIds, so it must
        // mirror the f32 layout entry for entry — including the transposed
        // orientation the scorer assumes for matvec weights.
        validate_quant_layout(&model.store, &qs)?;
        let attached = crate::qmodel::QuantRouterModel::attach(&model, qs);
        model.quant = Some(attached);
    }
    let decode_opts = DecodeOptions::from_config(&model.cfg);
    let mut router = DbcRouter {
        model,
        vocab: saved.vocab,
        graph: saved.graph,
        decode_opts,
        label: String::new(),
        precision: RoutePrecision::F32,
    };
    router.set_label("DBCopilot");
    Ok(router)
}

/// Verify that `loaded` matches the freshly-initialized `expected` layout:
/// same parameter count, names, registration order, shapes, and a
/// consistent name table.
fn validate_store_layout(expected: &ParamStore, loaded: &ParamStore) -> Result<(), PersistError> {
    if loaded.len() != expected.len() {
        return Err(PersistError::Corrupt(format!(
            "parameter count mismatch: file has {}, config implies {}",
            loaded.len(),
            expected.len()
        )));
    }
    for (i, ((ename, evalue), (lname, lvalue))) in
        expected.iter_values().zip(loaded.iter_values()).enumerate()
    {
        if ename != lname {
            return Err(PersistError::Corrupt(format!(
                "parameter {i} is {lname:?}, expected {ename:?}"
            )));
        }
        if evalue.shape() != lvalue.shape() {
            return Err(PersistError::Corrupt(format!(
                "parameter {lname:?} has shape {:?}, config implies {:?}",
                lvalue.shape(),
                evalue.shape()
            )));
        }
        if loaded.id_of(lname) != expected.id_of(ename) {
            return Err(PersistError::Corrupt(format!(
                "parameter name table is inconsistent for {lname:?}"
            )));
        }
    }
    Ok(())
}

/// Verify that a loaded `QNT8` store mirrors the f32 store: same entries in
/// the same order, each with the orientation the quant scorer assumes and
/// the shape that orientation implies.
fn validate_quant_layout(store: &ParamStore, qs: &QuantizedStore) -> Result<(), PersistError> {
    if qs.len() != store.len() {
        return Err(PersistError::Corrupt(format!(
            "quantized store has {} entries, f32 store has {}",
            qs.len(),
            store.len()
        )));
    }
    for ((name, value), entry) in store.iter_values().zip(qs.entries()) {
        if entry.name != name {
            return Err(PersistError::Corrupt(format!(
                "quantized entry {:?} out of order, expected {name:?}",
                entry.name
            )));
        }
        let want_t = crate::qmodel::stored_transposed(name);
        if entry.transposed != want_t {
            return Err(PersistError::Corrupt(format!(
                "quantized entry {name:?} transposed={}, scorer expects {want_t}",
                entry.transposed
            )));
        }
        let (rows, cols) = value.shape();
        let want = if want_t { (cols, rows) } else { (rows, cols) };
        if (entry.matrix.rows(), entry.matrix.cols()) != want {
            return Err(PersistError::Corrupt(format!(
                "quantized entry {name:?} has shape ({}, {}), expected {want:?}",
                entry.matrix.rows(),
                entry.matrix.cols()
            )));
        }
    }
    Ok(())
}

/// Rejection-sampling attempts allowed per requested example before
/// [`extend_router`] bails with whatever it has gathered. A new database
/// that is a `1/r` fraction of the graph needs ~`r` attempts per accepted
/// sample, so 64 covers realistic update batches while bounding the
/// pathological case (one tiny database added to a huge graph) to a finite,
/// fast scan instead of a near-forever spin.
const EXTEND_ATTEMPTS_PER_EXAMPLE: usize = 64;
/// Attempt floor so tiny requests still get a fair number of draws.
const EXTEND_MIN_ATTEMPTS: usize = 4096;

fn extend_attempt_budget(target: usize) -> usize {
    target.saturating_mul(EXTEND_ATTEMPTS_PER_EXAMPLE).max(EXTEND_MIN_ATTEMPTS)
}

/// Incrementally extend a trained router with new databases.
///
/// Rebuilds the graph/vocabulary over the grown collection, transplants the
/// existing weights (old pieces keep their embeddings; new pieces are
/// freshly initialized), synthesizes training questions for the *new*
/// schemata only, and fine-tunes for `epochs`.
///
/// Sampling is rejection-based over the whole grown graph and capped: if
/// the new (or old, for replay) databases are so rare that the attempt
/// budget runs out, fine-tuning proceeds with the examples gathered so far
/// rather than spinning indefinitely.
pub fn extend_router(
    router: &DbcRouter,
    grown: &Collection,
    meta: &dbcopilot_synth::CorpusMeta,
    questioner: &Questioner,
    pairs_for_new: usize,
    epochs: usize,
) -> Result<(DbcRouter, TrainStats), PersistError> {
    let new_graph = SchemaGraph::build(grown);
    let new_vocab = PieceVocab::build(&new_graph);
    let mut cfg = router.model.cfg.clone();
    cfg.epochs = epochs;

    let mut model = RouterModel::new(cfg.clone(), new_vocab.len());
    transplant(&router.model, &router.vocab, &mut model, &new_vocab);

    // Synthesize data only for databases absent from the old graph.
    let old_dbs: std::collections::HashSet<String> =
        router.graph.database_nodes().iter().map(|&d| router.graph.name(d).to_string()).collect();
    let new_db_names: Vec<String> =
        grown.databases.keys().filter(|d| !old_dbs.contains(*d)).cloned().collect();
    let mut examples: Vec<TrainExample> = Vec::new();
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed.wrapping_add(4242));
        let walk_cfg = dbcopilot_graph::WalkConfig::default();
        let mut attempts = extend_attempt_budget(pairs_for_new);
        while examples.len() < pairs_for_new && !new_db_names.is_empty() && attempts > 0 {
            attempts -= 1;
            let schema = dbcopilot_graph::sample_schema(&new_graph, &walk_cfg, &mut rng);
            if !new_db_names.contains(&schema.database) {
                continue;
            }
            let (entities, attrs) = dbcopilot_synth::schema_tokens(meta, &schema);
            let question = questioner.generate(&entities, &attrs, &mut rng);
            examples.push(TrainExample { question, schema });
        }
        // Replay: fine-tuning only on the new schemata catastrophically
        // forgets the old ones (the incremental-DSI problem the paper's §6
        // alludes to). Interleave an equal share of synthesized examples
        // for the existing databases.
        let replay_target = examples.len();
        let mut replayed = 0;
        let mut attempts = extend_attempt_budget(replay_target);
        while replayed < replay_target && attempts > 0 {
            attempts -= 1;
            let schema = dbcopilot_graph::sample_schema(&new_graph, &walk_cfg, &mut rng);
            if new_db_names.contains(&schema.database) {
                continue;
            }
            let (entities, attrs) = dbcopilot_synth::schema_tokens(meta, &schema);
            let question = questioner.generate(&entities, &attrs, &mut rng);
            examples.push(TrainExample { question, schema });
            replayed += 1;
        }
    }
    let stats = if examples.is_empty() {
        TrainStats { epoch_losses: Vec::new(), examples: 0 }
    } else {
        train_router(&mut model, &new_graph, &new_vocab, &examples, SerializationMode::Dfs)
    };
    let decode_opts = DecodeOptions::from_config(&model.cfg);
    let mut out = DbcRouter {
        model,
        vocab: new_vocab,
        graph: new_graph,
        decode_opts,
        label: String::new(),
        precision: RoutePrecision::F32,
    };
    out.set_label("DBCopilot");
    Ok((out, stats))
}

/// Copy weights from the old model into the new one: encoder verbatim,
/// decoder/output embedding rows mapped by piece text.
fn transplant(
    old: &RouterModel,
    old_vocab: &PieceVocab,
    new: &mut RouterModel,
    new_vocab: &PieceVocab,
) {
    // encoder tables share shapes (buckets/hidden unchanged)
    for name in [
        "q_emb.weight",
        "q_proj.w",
        "q_proj.b",
        "gru.wz",
        "gru.uz",
        "gru.bz",
        "gru.wr",
        "gru.ur",
        "gru.br",
        "gru.wh",
        "gru.uh",
        "gru.bh",
    ] {
        if let (Some(o), Some(n)) = (old.store.id_of(name), new.store.id_of(name)) {
            *new.store.value_mut(n) = old.store.value(o).clone();
        }
    }
    // specials + shared pieces of the decoder tables
    for (table, dim_src) in
        [("dec_emb.weight", old.dec_emb.weight), ("out_emb.weight", old.out_emb.weight)]
    {
        let Some(nid) = new.store.id_of(table) else { continue };
        let src = old.store.value(dim_src).clone();
        let cols = src.cols();
        let mut dst: Tensor = new.store.value(nid).clone();
        for sym in 0..crate::vocab::FIRST_PIECE {
            copy_row(&src, sym as usize, &mut dst, sym as usize, cols);
        }
        for new_sym in crate::vocab::FIRST_PIECE..(new_vocab.len() as u32) {
            if let Some(text) = new_vocab.text_of(new_sym) {
                if let Some(old_sym) = old_vocab.id_of(text) {
                    copy_row(&src, old_sym as usize, &mut dst, new_sym as usize, cols);
                }
            }
        }
        *new.store.value_mut(nid) = dst;
    }
}

fn copy_row(src: &Tensor, src_row: usize, dst: &mut Tensor, dst_row: usize, cols: usize) {
    let data = src.row(src_row).to_vec();
    let buf = dst.as_mut_slice();
    buf[dst_row * cols..(dst_row + 1) * cols].copy_from_slice(&data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RouterConfig;
    use crate::train::TrainExample;
    use dbcopilot_graph::QuerySchema;
    use dbcopilot_sqlengine::{DataType, DatabaseSchema, TableSchema};

    fn collection(extra: bool) -> Collection {
        let mut c = Collection::new();
        for (db, tables) in
            [("concert_singer", vec!["singer", "concert"]), ("world", vec!["country", "city"])]
        {
            let mut d = DatabaseSchema::new(db);
            for t in tables {
                d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
            }
            c.add_database(d);
        }
        if extra {
            let mut d = DatabaseSchema::new("library");
            for t in ["book", "author"] {
                d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
            }
            c.add_database(d);
        }
        c
    }

    fn examples() -> Vec<TrainExample> {
        (0..12)
            .flat_map(|_| {
                vec![
                    TrainExample {
                        question: "how many vocalists".into(),
                        schema: QuerySchema::new("concert_singer", vec!["singer".into()]),
                    },
                    TrainExample {
                        question: "population of towns".into(),
                        schema: QuerySchema::new("world", vec!["city".into()]),
                    },
                ]
            })
            .collect()
    }

    fn trained_router() -> DbcRouter {
        let graph = SchemaGraph::build(&collection(false));
        let mut cfg = RouterConfig::tiny();
        cfg.epochs = 15;
        let (router, _) = DbcRouter::fit(graph, &examples(), cfg, SerializationMode::Dfs);
        router
    }

    #[test]
    fn save_load_roundtrip_preserves_routing_and_bits() {
        let router = trained_router();
        let before = router.best_schema("how many vocalists").unwrap();

        let mut buf = Vec::new();
        save_router(&router, &mut buf).unwrap();
        assert_eq!(
            buf.len(),
            router_disk_size(&router).unwrap(),
            "size accounting must match bytes"
        );
        let loaded = load_router(buf.as_slice()).unwrap();
        let after = loaded.best_schema("how many vocalists").unwrap();
        assert!(before.same_as(&after), "{before} vs {after}");
        // bit-exact weights, not merely approximately equal
        for ((an, av), (bn, bv)) in
            router.model.store.iter_values().zip(loaded.model.store.iter_values())
        {
            assert_eq!(an, bn);
            for (x, y) in av.as_slice().iter().zip(bv.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{an} drifted");
            }
        }
    }

    #[test]
    fn quantized_bundle_roundtrips_bit_exactly_and_sizes_match() {
        use dbcopilot_retrieval::{PrecisionSwitch, RoutePrecision};
        let mut router = trained_router();
        router.set_precision(RoutePrecision::I8);
        let before = router.best_schema("how many vocalists").unwrap();

        let mut buf = Vec::new();
        save_router(&router, &mut buf).unwrap();
        assert_eq!(
            buf.len(),
            router_disk_size(&router).unwrap(),
            "size accounting must include the QNT8 section"
        );

        let mut loaded = load_router(buf.as_slice()).unwrap();
        let qm = loaded.model.quant.as_ref().expect("QNT8 section must load");
        let orig = router.model.quant.as_ref().unwrap();
        assert_eq!(qm.store(), orig.store(), "quantized weights must round-trip bit-exactly");

        // The loaded bundle serves at I8 with identical decisions — zero
        // re-quantization means zero drift.
        loaded.set_precision(RoutePrecision::I8);
        let after = loaded.best_schema("how many vocalists").unwrap();
        assert!(before.same_as(&after), "{before} vs {after}");
    }

    #[test]
    fn pre_qnt8_bundle_still_loads() {
        // A bundle saved before quantization existed has only the four
        // original sections; it must load and serve (forward compat), with
        // no quantized weights attached.
        let router = trained_router();
        assert!(router.model.quant.is_none());
        let mut buf = Vec::new();
        save_router(&router, &mut buf).unwrap();
        let loaded = load_router(buf.as_slice()).unwrap();
        assert!(loaded.model.quant.is_none());
        assert!(loaded.best_schema("how many vocalists").is_some());
    }

    #[test]
    fn qnt8_with_wrong_orientation_is_corrupt() {
        use dbcopilot_nn::QuantizedStore;
        let mut router = trained_router();
        router.model.freeze_quant();
        // Re-freeze with every entry untransposed: shapes stay valid f32
        // shapes but the matvec weights no longer match the scorer's layout.
        let bad = QuantizedStore::freeze(&router.model.store, |_| false);
        let sections = vec![
            Section::new(SEC_CONFIG, serde_json::to_vec(&router.model.cfg).unwrap()),
            Section::new(SEC_VOCAB, serde_json::to_vec(&router.vocab).unwrap()),
            Section::new(SEC_GRAPH, serde_json::to_vec(&router.graph).unwrap()),
            Section::new(codec::SEC_PARAMS, codec::encode_store_section(&router.model.store)),
            Section::new(codec::SEC_QUANT, codec::encode_quant_section(&bad)),
        ];
        let bytes = codec::encode_container(&sections);
        match load_router_slice(&bytes) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("transposed"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn json_escape_hatch_roundtrips_through_sniffer() {
        let router = trained_router();
        let before = router.best_schema("population of towns").unwrap();
        let mut buf = Vec::new();
        save_router_as(&router, &mut buf, Format::Json).unwrap();
        assert_eq!(buf[0], b'{');
        let loaded = load_router(buf.as_slice()).unwrap();
        let after = loaded.best_schema("population of towns").unwrap();
        assert!(before.same_as(&after), "{before} vs {after}");
    }

    #[test]
    fn binary_bundle_is_at_most_40_percent_of_json() {
        let router = trained_router();
        let mut json = Vec::new();
        save_router_as(&router, &mut json, Format::Json).unwrap();
        let bin = router_disk_size(&router).unwrap();
        assert!(
            bin * 100 <= json.len() * 40,
            "binary {bin} bytes should be ≤ 40% of JSON {} bytes",
            json.len()
        );
    }

    #[test]
    fn nan_weight_survives_binary_and_is_refused_by_json() {
        let mut router = trained_router();
        let id = router.model.store.id_of("q_proj.b").unwrap();
        let nan = f32::from_bits(0x7fc0_1234);
        router.model.store.value_mut(id).set(0, 0, nan);

        // regression: the JSON path used to write `null` silently
        let mut json = Vec::new();
        match save_router_as(&router, &mut json, Format::Json) {
            Err(PersistError::NonFinite { param }) => assert!(param.starts_with("q_proj.b")),
            other => panic!("expected NonFinite, got {other:?}"),
        }

        // the binary path preserves the exact NaN payload
        let mut bin = Vec::new();
        save_router(&router, &mut bin).unwrap();
        let loaded = load_router(bin.as_slice()).unwrap();
        let lid = loaded.model.store.id_of("q_proj.b").unwrap();
        assert_eq!(loaded.model.store.value(lid).get(0, 0).to_bits(), nan.to_bits());
    }

    #[test]
    fn truncated_and_corrupted_files_fail_loudly() {
        let router = trained_router();
        let mut buf = Vec::new();
        save_router(&router, &mut buf).unwrap();

        // every possible truncation point returns Err — no panic, and no
        // debug-only check (this test runs in release CI too)
        for cut in [0, 3, 7, 64, buf.len() / 2, buf.len() - 1] {
            assert!(load_router_slice(&buf[..cut]).is_err(), "prefix {cut} must fail");
        }
        // wrong magic
        let mut bad = buf.clone();
        bad[..4].copy_from_slice(b"ELF\x7f");
        assert!(matches!(load_router_slice(&bad), Err(PersistError::BadMagic { .. })));
        // wrong version
        let mut bad = buf.clone();
        bad[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            load_router_slice(&bad),
            Err(PersistError::UnsupportedVersion { found: 9, supported: 1 })
        ));
    }

    #[test]
    fn renamed_parameter_is_corrupt_not_debug_assert() {
        let router = trained_router();
        let mut json = Vec::new();
        save_router_as(&router, &mut json, Format::Json).unwrap();
        let text = String::from_utf8(json).unwrap();
        let tampered = text.replace("q_emb.weight", "q_emb.wrong0");
        match load_router_slice(tampered.as_bytes()) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("q_emb"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn wrong_shape_is_corrupt() {
        let router = trained_router();
        // craft a binary bundle whose store section holds a mis-shaped tensor
        let mut store = ParamStore::new();
        for (name, value) in router.model.store.iter_values() {
            if name == "q_proj.w" {
                store.add(name, Tensor::zeros(1, 1));
            } else {
                store.add(name, value.clone());
            }
        }
        let sections = vec![
            Section::new(SEC_CONFIG, serde_json::to_vec(&router.model.cfg).unwrap()),
            Section::new(SEC_VOCAB, serde_json::to_vec(&router.vocab).unwrap()),
            Section::new(SEC_GRAPH, serde_json::to_vec(&router.graph).unwrap()),
            Section::new(codec::SEC_PARAMS, codec::encode_store_section(&store)),
        ];
        let bytes = codec::encode_container(&sections);
        match load_router_slice(&bytes) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("q_proj.w"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn extend_preserves_old_knowledge_and_reaches_new_dbs() {
        let router = trained_router();

        // grow the collection with `library` and fine-tune on synthesized
        // questions for it only
        let grown = collection(true);
        let meta = dbcopilot_synth::CorpusMeta::default(); // no entity metadata: falls back to identifier splits
        let questioner = Questioner::train(
            &[dbcopilot_synth::TrainPair {
                entities: vec!["book".into()],
                attrs: vec![],
                question: "list the volumes".into(),
            }],
            &dbcopilot_synth::QuestionerConfig::default(),
        );
        let (extended, stats) = extend_router(&router, &grown, &meta, &questioner, 60, 10).unwrap();
        assert!(stats.examples > 0);
        // old knowledge survives transplantation + fine-tuning on new dbs
        let old = extended.best_schema("how many vocalists").unwrap();
        assert_eq!(old.database, "concert_singer", "old routing lost: {old}");
        // the new database is reachable (valid schemata decodable)
        let cands = extended.route_schemata("list the books volumes");
        assert!(
            cands.iter().any(|c| c.schema.database == "library"),
            "library unreachable: {cands:?}"
        );
    }

    #[test]
    fn extend_bails_instead_of_spinning_when_replay_is_unsatisfiable() {
        // The grown collection drops every old database, so the replay loop
        // can never accept a sample — before the attempt cap this spun
        // forever. Now it must return promptly with the examples gathered.
        let router = trained_router();
        let mut grown = Collection::new();
        let mut d = DatabaseSchema::new("library");
        for t in ["book", "author"] {
            d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
        }
        grown.add_database(d);

        let meta = dbcopilot_synth::CorpusMeta::default();
        let questioner = Questioner::train(
            &[dbcopilot_synth::TrainPair {
                entities: vec!["book".into()],
                attrs: vec![],
                question: "list the volumes".into(),
            }],
            &dbcopilot_synth::QuestionerConfig::default(),
        );
        let (extended, stats) = extend_router(&router, &grown, &meta, &questioner, 6, 1).unwrap();
        assert!(stats.examples >= 6, "new-db examples still gathered: {}", stats.examples);
        assert!(extended.graph.database_node("library").is_some());
    }
}
