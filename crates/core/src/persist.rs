//! Router persistence and incremental schema update.
//!
//! The paper's §6 ("Dynamic Schema Update") notes that real collections
//! evolve and asks for cheaper adaptation than full retraining. This module
//! provides both halves:
//!
//! * [`save_router`]/[`load_router`] — persist a trained router (weights,
//!   vocabulary, graph, config) so it can serve without retraining;
//! * [`extend_router`] — register new databases and *fine-tune* on
//!   synthesized questions for the new schemata only, reusing the existing
//!   weights (new word pieces get fresh embedding rows).

use std::io::{Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use dbcopilot_graph::SchemaGraph;
use dbcopilot_nn::serialize::PersistError;
use dbcopilot_nn::{ParamStore, Tensor};
use dbcopilot_sqlengine::Collection;
use dbcopilot_synth::Questioner;

use crate::decode::DecodeOptions;
use crate::model::{RouterConfig, RouterModel};
use crate::router::DbcRouter;
use crate::train::{train_router, SerializationMode, TrainExample, TrainStats};
use crate::vocab::PieceVocab;

/// On-disk router representation.
#[derive(Serialize, Deserialize)]
struct SavedRouter {
    store: ParamStore,
    vocab: PieceVocab,
    graph: SchemaGraph,
    cfg: RouterConfig,
}

/// Serialize a trained router to a writer.
pub fn save_router<W: Write>(router: &DbcRouter, w: W) -> Result<(), PersistError> {
    let saved = SavedRouter {
        store: clone_store(&router.model.store)?,
        vocab: router.vocab.clone(),
        graph: router.graph.clone(),
        cfg: router.model.cfg.clone(),
    };
    serde_json::to_writer(w, &saved)?;
    Ok(())
}

/// Deserialize a router from a reader.
pub fn load_router<R: Read>(r: R) -> Result<DbcRouter, PersistError> {
    let saved: SavedRouter = serde_json::from_reader(r)?;
    let mut model = RouterModel::new(saved.cfg, saved.vocab.len());
    model.store = saved.store;
    // Rebind layer parameter ids by name (layout is deterministic, but
    // verify to fail loudly on corrupted files).
    debug_assert!(model.store.id_of("q_emb.weight").is_some());
    let decode_opts = DecodeOptions::from_config(&model.cfg);
    let mut router = DbcRouter {
        model,
        vocab: saved.vocab,
        graph: saved.graph,
        decode_opts,
        label: String::new(),
    };
    router.set_label("DBCopilot");
    Ok(router)
}

/// Save to a file.
pub fn save_router_file(router: &DbcRouter, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let f = std::fs::File::create(path)?;
    save_router(router, std::io::BufWriter::new(f))
}

/// Load from a file.
pub fn load_router_file(path: impl AsRef<Path>) -> Result<DbcRouter, PersistError> {
    let f = std::fs::File::open(path)?;
    load_router(std::io::BufReader::new(f))
}

fn clone_store(store: &ParamStore) -> Result<ParamStore, PersistError> {
    let bytes = serde_json::to_vec(store)?;
    Ok(serde_json::from_slice(&bytes)?)
}

/// Incrementally extend a trained router with new databases.
///
/// Rebuilds the graph/vocabulary over the grown collection, transplants the
/// existing weights (old pieces keep their embeddings; new pieces are
/// freshly initialized), synthesizes training questions for the *new*
/// schemata only, and fine-tunes for `epochs`.
pub fn extend_router(
    router: &DbcRouter,
    grown: &Collection,
    meta: &dbcopilot_synth::CorpusMeta,
    questioner: &Questioner,
    pairs_for_new: usize,
    epochs: usize,
) -> Result<(DbcRouter, TrainStats), PersistError> {
    let new_graph = SchemaGraph::build(grown);
    let new_vocab = PieceVocab::build(&new_graph);
    let mut cfg = router.model.cfg.clone();
    cfg.epochs = epochs;

    let mut model = RouterModel::new(cfg.clone(), new_vocab.len());
    transplant(&router.model, &router.vocab, &mut model, &new_vocab);

    // Synthesize data only for databases absent from the old graph.
    let old_dbs: std::collections::HashSet<String> =
        router.graph.database_nodes().iter().map(|&d| router.graph.name(d).to_string()).collect();
    let new_db_names: Vec<String> =
        grown.databases.keys().filter(|d| !old_dbs.contains(*d)).cloned().collect();
    let mut examples: Vec<TrainExample> = Vec::new();
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed.wrapping_add(4242));
        let walk_cfg = dbcopilot_graph::WalkConfig::default();
        while examples.len() < pairs_for_new && !new_db_names.is_empty() {
            let schema = dbcopilot_graph::sample_schema(&new_graph, &walk_cfg, &mut rng);
            if !new_db_names.contains(&schema.database) {
                continue;
            }
            let (entities, attrs) = dbcopilot_synth::schema_tokens(meta, &schema);
            let question = questioner.generate(&entities, &attrs, &mut rng);
            examples.push(TrainExample { question, schema });
        }
        // Replay: fine-tuning only on the new schemata catastrophically
        // forgets the old ones (the incremental-DSI problem the paper's §6
        // alludes to). Interleave an equal share of synthesized examples
        // for the existing databases.
        let replay_target = examples.len();
        let mut replayed = 0;
        while replayed < replay_target {
            let schema = dbcopilot_graph::sample_schema(&new_graph, &walk_cfg, &mut rng);
            if new_db_names.contains(&schema.database) {
                continue;
            }
            let (entities, attrs) = dbcopilot_synth::schema_tokens(meta, &schema);
            let question = questioner.generate(&entities, &attrs, &mut rng);
            examples.push(TrainExample { question, schema });
            replayed += 1;
        }
    }
    let stats = if examples.is_empty() {
        TrainStats { epoch_losses: Vec::new(), examples: 0 }
    } else {
        train_router(&mut model, &new_graph, &new_vocab, &examples, SerializationMode::Dfs)
    };
    let decode_opts = DecodeOptions::from_config(&model.cfg);
    let mut out =
        DbcRouter { model, vocab: new_vocab, graph: new_graph, decode_opts, label: String::new() };
    out.set_label("DBCopilot");
    Ok((out, stats))
}

/// Copy weights from the old model into the new one: encoder verbatim,
/// decoder/output embedding rows mapped by piece text.
fn transplant(
    old: &RouterModel,
    old_vocab: &PieceVocab,
    new: &mut RouterModel,
    new_vocab: &PieceVocab,
) {
    // encoder tables share shapes (buckets/hidden unchanged)
    for name in [
        "q_emb.weight",
        "q_proj.w",
        "q_proj.b",
        "gru.wz",
        "gru.uz",
        "gru.bz",
        "gru.wr",
        "gru.ur",
        "gru.br",
        "gru.wh",
        "gru.uh",
        "gru.bh",
    ] {
        if let (Some(o), Some(n)) = (old.store.id_of(name), new.store.id_of(name)) {
            *new.store.value_mut(n) = old.store.value(o).clone();
        }
    }
    // specials + shared pieces of the decoder tables
    for (table, dim_src) in
        [("dec_emb.weight", old.dec_emb.weight), ("out_emb.weight", old.out_emb.weight)]
    {
        let Some(nid) = new.store.id_of(table) else { continue };
        let src = old.store.value(dim_src).clone();
        let cols = src.cols();
        let mut dst: Tensor = new.store.value(nid).clone();
        for sym in 0..crate::vocab::FIRST_PIECE {
            copy_row(&src, sym as usize, &mut dst, sym as usize, cols);
        }
        for new_sym in crate::vocab::FIRST_PIECE..(new_vocab.len() as u32) {
            if let Some(text) = new_vocab.text_of(new_sym) {
                if let Some(old_sym) = old_vocab.id_of(text) {
                    copy_row(&src, old_sym as usize, &mut dst, new_sym as usize, cols);
                }
            }
        }
        *new.store.value_mut(nid) = dst;
    }
}

fn copy_row(src: &Tensor, src_row: usize, dst: &mut Tensor, dst_row: usize, cols: usize) {
    let data = src.row(src_row).to_vec();
    let buf = dst.as_mut_slice();
    buf[dst_row * cols..(dst_row + 1) * cols].copy_from_slice(&data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RouterConfig;
    use crate::train::TrainExample;
    use dbcopilot_graph::QuerySchema;
    use dbcopilot_sqlengine::{DataType, DatabaseSchema, TableSchema};

    fn collection(extra: bool) -> Collection {
        let mut c = Collection::new();
        for (db, tables) in
            [("concert_singer", vec!["singer", "concert"]), ("world", vec!["country", "city"])]
        {
            let mut d = DatabaseSchema::new(db);
            for t in tables {
                d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
            }
            c.add_database(d);
        }
        if extra {
            let mut d = DatabaseSchema::new("library");
            for t in ["book", "author"] {
                d.add_table(TableSchema::new(t).column("id", DataType::Int).primary(0));
            }
            c.add_database(d);
        }
        c
    }

    fn examples() -> Vec<TrainExample> {
        (0..12)
            .flat_map(|_| {
                vec![
                    TrainExample {
                        question: "how many vocalists".into(),
                        schema: QuerySchema::new("concert_singer", vec!["singer".into()]),
                    },
                    TrainExample {
                        question: "population of towns".into(),
                        schema: QuerySchema::new("world", vec!["city".into()]),
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn save_load_roundtrip_preserves_routing() {
        let graph = SchemaGraph::build(&collection(false));
        let mut cfg = RouterConfig::tiny();
        cfg.epochs = 15;
        let (router, _) = DbcRouter::fit(graph, &examples(), cfg, SerializationMode::Dfs);
        let before = router.best_schema("how many vocalists").unwrap();

        let mut buf = Vec::new();
        save_router(&router, &mut buf).unwrap();
        let loaded = load_router(buf.as_slice()).unwrap();
        let after = loaded.best_schema("how many vocalists").unwrap();
        assert!(before.same_as(&after), "{before} vs {after}");
    }

    #[test]
    fn extend_preserves_old_knowledge_and_reaches_new_dbs() {
        let graph = SchemaGraph::build(&collection(false));
        let mut cfg = RouterConfig::tiny();
        cfg.epochs = 15;
        let (router, _) = DbcRouter::fit(graph, &examples(), cfg, SerializationMode::Dfs);

        // grow the collection with `library` and fine-tune on synthesized
        // questions for it only
        let grown = collection(true);
        let meta = dbcopilot_synth::CorpusMeta::default(); // no entity metadata: falls back to identifier splits
        let questioner = Questioner::train(
            &[dbcopilot_synth::TrainPair {
                entities: vec!["book".into()],
                attrs: vec![],
                question: "list the volumes".into(),
            }],
            &dbcopilot_synth::QuestionerConfig::default(),
        );
        let (extended, stats) = extend_router(&router, &grown, &meta, &questioner, 60, 10).unwrap();
        assert!(stats.examples > 0);
        // old knowledge survives transplantation + fine-tuning on new dbs
        let old = extended.best_schema("how many vocalists").unwrap();
        assert_eq!(old.database, "concert_singer", "old routing lost: {old}");
        // the new database is reachable (valid schemata decodable)
        let cands = extended.route_schemata("list the books volumes");
        assert!(
            cands.iter().any(|c| c.schema.database == "library"),
            "library unreachable: {cands:?}"
        );
    }
}
