//! The schema router network: a small encoder–decoder (the paper's
//! T5-base DSI, scaled to this reproduction's from-scratch substrate).
//!
//! * Encoder: hashed bag-of-words question embedding, projected and squashed
//!   to the decoder's initial hidden state (and re-fed at every step).
//! * Decoder: a GRU over output word-piece embeddings; logits come from an
//!   output embedding table, evaluated only over candidate symbols (the
//!   constrained-decoding sets at inference; gold + sampled negatives during
//!   training — a sampled softmax).

use serde::{Deserialize, Serialize};

use dbcopilot_nn::{Embedding, GruCell, Linear, ParamStore, Tape, Tensor, ValId};
use dbcopilot_synth::Lexicon;

use crate::vocab::Sym;

/// Router hyper-parameters (model + training + decoding).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Word-piece embedding width.
    pub dim: usize,
    /// GRU hidden width.
    pub hidden: usize,
    /// Question feature-hashing buckets.
    pub buckets: usize,
    /// AdamW learning rate.
    pub lr: f32,
    pub epochs: usize,
    pub batch: usize,
    /// Random negatives per training step (sampled softmax).
    pub negatives: usize,
    /// Beam count at inference.
    pub beams: usize,
    /// Diverse-beam groups (must divide `beams`).
    pub beam_groups: usize,
    /// Diversity penalty λ (paper: 2.0).
    pub diversity_penalty: f32,
    /// Maximum tables decoded per schema.
    pub max_tables: usize,
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            dim: 48,
            hidden: 64,
            buckets: 1 << 13,
            lr: 4e-3,
            epochs: 6,
            batch: 16,
            negatives: 32,
            beams: 10,
            beam_groups: 10,
            diversity_penalty: 2.0,
            max_tables: 4,
            seed: 0xdbc0,
        }
    }
}

impl RouterConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        RouterConfig {
            dim: 16,
            hidden: 24,
            buckets: 1 << 9,
            lr: 8e-3,
            epochs: 10,
            batch: 8,
            negatives: 12,
            beams: 4,
            beam_groups: 4,
            diversity_penalty: 1.0,
            max_tables: 3,
            seed: 7,
        }
    }
}

/// The router network parameters.
pub struct RouterModel {
    pub store: ParamStore,
    pub q_emb: Embedding,
    pub q_proj: Linear,
    pub dec_emb: Embedding,
    pub gru: GruCell,
    pub out_emb: Embedding,
    pub cfg: RouterConfig,
    /// Frozen i8 weights for the `RoutePrecision::I8` hot path; `None`
    /// until [`RouterModel::freeze_quant`] (or a `QNT8` codec load)
    /// attaches them.
    pub quant: Option<crate::qmodel::QuantRouterModel>,
    /// World knowledge of the pretrained backbone (T5 in the paper): used
    /// only to canonicalize question tokens into extra input features.
    lex: Lexicon,
}

impl RouterModel {
    pub fn new(cfg: RouterConfig, vocab_size: usize) -> Self {
        let mut store = ParamStore::new();
        let mut rng = dbcopilot_nn::init::seeded_rng(cfg.seed);
        let q_emb = Embedding::new(&mut store, "q_emb", cfg.buckets, cfg.dim, &mut rng);
        let q_proj = Linear::new(&mut store, "q_proj", cfg.dim, cfg.hidden, &mut rng);
        let dec_emb = Embedding::new(&mut store, "dec_emb", vocab_size, cfg.dim, &mut rng);
        let gru = GruCell::new(&mut store, "gru", cfg.dim + cfg.hidden, cfg.hidden, &mut rng);
        let out_emb = Embedding::new(&mut store, "out_emb", vocab_size, cfg.hidden, &mut rng);
        RouterModel {
            store,
            q_emb,
            q_proj,
            dec_emb,
            gru,
            out_emb,
            cfg,
            quant: None,
            lex: Lexicon::new(),
        }
    }

    /// Freeze the current f32 weights into the i8 store the
    /// `RoutePrecision::I8` hot path scores against. Re-freezing replaces
    /// any previous quantized weights (e.g. after fine-tuning).
    pub fn freeze_quant(&mut self) {
        let frozen = crate::qmodel::QuantRouterModel::freeze(self);
        self.quant = Some(frozen);
    }

    /// Question features: hashed bag of words plus canonicalized-concept
    /// features. The latter model the synonym knowledge a pretrained
    /// backbone brings ("vocalist" and "singer" share an input feature),
    /// exactly as the baselines receive the same knowledge through
    /// paraphrase pre-training (SXFMR/DTR) or hallucination (CRUSH).
    pub fn features(&self, question: &str) -> Vec<usize> {
        let tokens = dbcopilot_retrieval::text::tokenize(question);
        let mut words: Vec<String> = tokens.clone();
        for n in 1..=3usize {
            for w in tokens.windows(n) {
                let phrase = w.join(" ");
                let canon = self.lex.canonical_of(&phrase).or_else(|| {
                    if n == 1 {
                        self.lex.canonical_of(&dbcopilot_synth::lexicon::singularize(&phrase))
                    } else {
                        None
                    }
                });
                if let Some(c) = canon {
                    words.push(format!("c:{c}"));
                }
            }
        }
        dbcopilot_retrieval::text::hash_tokens(&words, self.cfg.buckets)
    }

    // ----- inference (no tape) -----

    /// Encode a question to the initial hidden state `[1, hidden]`.
    pub fn encode_infer(&self, question: &str) -> Tensor {
        let bag = self.q_emb.infer_bag(&self.store, &self.features(question));
        self.q_proj.infer(&self.store, &bag).tanh()
    }

    /// One decoder step: previous symbol + question vector + hidden → new
    /// hidden.
    pub fn step_infer(&self, prev: Sym, q: &Tensor, h: &Tensor) -> Tensor {
        let emb = self.dec_emb.infer(&self.store, &[prev as usize]);
        let x = emb.concat_cols(q);
        self.gru.infer(&self.store, &x, h)
    }

    /// Log-probabilities over `candidates` given hidden state `h`
    /// (softmax over the candidate subset).
    pub fn logprobs_infer(&self, h: &Tensor, candidates: &[Sym]) -> Vec<f32> {
        let idx: Vec<usize> = candidates.iter().map(|&c| c as usize).collect();
        let sub = self.out_emb.infer(&self.store, &idx); // [k, hidden]
        let logits = h.matmul(&sub.transpose()); // [1, k]
        dbcopilot_nn::tensor::log_softmax(logits.row(0))
    }

    // ----- training (on tape) -----

    /// Encode on the tape.
    pub fn encode(&self, tape: &mut Tape, question: &str) -> ValId {
        let bag = self.q_emb.forward_bag(tape, &self.store, &self.features(question));
        let proj = self.q_proj.forward(tape, &self.store, bag);
        tape.tanh(proj)
    }

    /// One decoder step on the tape.
    pub fn step(&self, tape: &mut Tape, prev: Sym, q: ValId, h: ValId) -> ValId {
        let emb = self.dec_emb.forward(tape, &self.store, &[prev as usize]);
        let x = tape.concat_cols(emb, q);
        self.gru.forward(tape, &self.store, x, h)
    }

    /// Cross-entropy of the gold symbol within a candidate set, on the tape.
    /// `candidates[gold_idx]` must be the gold symbol.
    pub fn step_loss(
        &self,
        tape: &mut Tape,
        h: ValId,
        candidates: &[Sym],
        gold_idx: usize,
    ) -> ValId {
        let idx: Vec<usize> = candidates.iter().map(|&c| c as usize).collect();
        let w = tape.param(&self.store, self.out_emb.weight);
        let sub = tape.lookup(w, &idx);
        let logits = tape.matmul_nt(h, sub);
        tape.cross_entropy_logits(logits, gold_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let cfg = RouterConfig::tiny();
        let m = RouterModel::new(cfg.clone(), 50);
        let q = m.encode_infer("how many singers are there");
        assert_eq!(q.shape(), (1, cfg.hidden));
        let h = m.step_infer(0, &q, &q);
        assert_eq!(h.shape(), (1, cfg.hidden));
        let lp = m.logprobs_infer(&h, &[1, 2, 3]);
        assert_eq!(lp.len(), 3);
        let sum: f32 = lp.iter().map(|v| v.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn tape_and_infer_paths_agree() {
        let m = RouterModel::new(RouterConfig::tiny(), 30);
        let mut tape = Tape::new();
        let q_t = m.encode(&mut tape, "list all cities");
        let q_i = m.encode_infer("list all cities");
        assert!(tape.value(q_t).approx_eq(&q_i, 1e-5));
        let h_t = m.step(&mut tape, 5, q_t, q_t);
        let h_i = m.step_infer(5, &q_i, &q_i);
        assert!(tape.value(h_t).approx_eq(&h_i, 1e-5));
    }

    #[test]
    fn step_loss_decreases_with_training_signal() {
        use dbcopilot_nn::AdamW;
        let m = RouterModel::new(RouterConfig::tiny(), 30);
        let mut model = m;
        let mut opt = AdamW::new(0.01);
        let candidates = [4u32, 9, 14];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let mut tape = Tape::new();
            let q = model.encode(&mut tape, "which vocalist is oldest");
            let h = model.step(&mut tape, crate::vocab::BOS, q, q);
            let loss = model.step_loss(&mut tape, h, &candidates, 1);
            let v = tape.value(loss).get(0, 0);
            first.get_or_insert(v);
            last = v;
            tape.backward(loss);
            tape.collect_grads(&mut model.store);
            opt.step(&mut model.store);
        }
        assert!(last < first.unwrap() * 0.5, "loss {first:?} → {last}");
    }
}
