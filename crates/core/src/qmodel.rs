//! Quantized router inference: the frozen i8 twin of [`RouterModel`].
//!
//! Training and the reference scoring path stay f32; [`QuantRouterModel`]
//! freezes the trained weights into `dbcopilot-nn`'s per-row i8 store and
//! its `QuantScorer` drives the same beam search through i8 dot products with
//! i32 accumulation. Activations (hidden state, question vector, r⊙h) are
//! re-quantized per step into reusable scratch buffers, so a decode step
//! allocates only its output row. Nonlinearities, bias adds and the softmax
//! stay f32 — they are O(hidden) against the O(hidden²) dot products.

use dbcopilot_nn::quant::{QuantizedStore, QuantizedVec};
use dbcopilot_nn::{ParamId, Tensor};

use crate::decode::StepScorer;
use crate::model::RouterModel;
use crate::vocab::Sym;

/// Whether a parameter is applied as an `x · W` matvec and therefore stored
/// transposed in the quantized store (one scale per *output* unit, each
/// output reducing over a contiguous row). Embedding tables are gathered
/// row-wise and keep their layout; biases are additive.
pub(crate) fn stored_transposed(name: &str) -> bool {
    matches!(name, "q_proj.w" | "gru.wz" | "gru.uz" | "gru.wr" | "gru.ur" | "gru.wh" | "gru.uh")
}

/// The frozen i8 parameters of a router, plus the exact f32 bias vectors.
///
/// Biases come from the f32 store (always present alongside the quantized
/// section): they are added once per output unit, so exactness there is
/// free, and a freshly frozen model scores identically to one rebuilt from
/// a persisted `QNT8` section.
pub struct QuantRouterModel {
    store: QuantizedStore,
    q_proj_b: Vec<f32>,
    bz: Vec<f32>,
    br: Vec<f32>,
    bh: Vec<f32>,
}

impl QuantRouterModel {
    /// Freeze the model's current f32 weights.
    pub fn freeze(model: &RouterModel) -> Self {
        Self::attach(model, QuantizedStore::freeze(&model.store, stored_transposed))
    }

    /// Pair an already-quantized store (the `QNT8` codec load path) with the
    /// f32 model it was frozen from. No matrix is re-quantized; only the
    /// four small bias vectors are read from the f32 store.
    pub fn attach(model: &RouterModel, store: QuantizedStore) -> Self {
        let bias = |id: ParamId| model.store.value(id).row(0).to_vec();
        QuantRouterModel {
            q_proj_b: bias(model.q_proj.b),
            bz: bias(model.gru.bz),
            br: bias(model.gru.br),
            bh: bias(model.gru.bh),
            store,
        }
    }

    /// The underlying quantized parameter store (persistence, accounting).
    pub fn store(&self) -> &QuantizedStore {
        &self.store
    }
}

#[inline]
fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// The i8 [`StepScorer`]: one per decode call, holding per-question state
/// (the question vector in both f32 and quantized form) and reusable
/// scratch. Every decode step re-quantizes its activations into these
/// buffers and runs whole-matrix [`QuantizedMatrix::matvec_into`] products,
/// so the hot loop is six contiguous i8 matvecs plus the O(hidden)
/// nonlinearities — no per-row slicing, no allocation after warm-up.
pub(crate) struct QuantScorer<'m> {
    model: &'m RouterModel,
    qm: &'m QuantRouterModel,
    /// The question vector, kept in f32: it is re-concatenated into the
    /// step input every step, and quantizing the concatenation jointly
    /// beats stitching per-segment scales row by row.
    q_f32: Vec<f32>,
    /// Step input `x = concat(dec_emb[prev], q)`, f32 then quantized.
    x: Vec<f32>,
    xq: QuantizedVec,
    /// Quantized hidden state (also reused for the encoder bag).
    hq: QuantizedVec,
    /// Quantized r⊙h.
    rhq: QuantizedVec,
    /// Gate pre-activations from the `x`-side and `h`-side matvecs.
    gx: Vec<f32>,
    gh: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    rh: Vec<f32>,
    next: Vec<f32>,
    bag: Vec<f32>,
    logits: Vec<f32>,
}

impl<'m> QuantScorer<'m> {
    pub(crate) fn new(model: &'m RouterModel, qm: &'m QuantRouterModel) -> Self {
        QuantScorer {
            model,
            qm,
            q_f32: Vec::new(),
            x: Vec::new(),
            xq: QuantizedVec::new(),
            hq: QuantizedVec::new(),
            rhq: QuantizedVec::new(),
            gx: Vec::new(),
            gh: Vec::new(),
            z: Vec::new(),
            r: Vec::new(),
            rh: Vec::new(),
            next: Vec::new(),
            bag: Vec::new(),
            logits: Vec::new(),
        }
    }
}

impl StepScorer for QuantScorer<'_> {
    fn encode(&mut self, question: &str) -> Tensor {
        let Self { model, qm, q_f32, hq, gx, bag, .. } = self;
        let cfg = &model.cfg;
        let feats = model.features(question);
        let emb = &qm.store.get(model.q_emb.weight).matrix;
        bag.clear();
        bag.resize(cfg.dim, 0.0);
        if !feats.is_empty() {
            for &f in &feats {
                let s = emb.scale(f);
                for (acc, &q) in bag.iter_mut().zip(emb.row(f)) {
                    *acc += s * q as f32;
                }
            }
            let inv = 1.0 / feats.len() as f32;
            for v in bag.iter_mut() {
                *v *= inv;
            }
        }
        hq.quantize_into(bag);
        let w = &qm.store.get(model.q_proj.w).matrix; // [hidden, dim], transposed
        w.matvec_into(hq, gx);
        q_f32.clear();
        q_f32.extend(gx.iter().zip(&qm.q_proj_b).map(|(v, b)| (v + b).tanh()));
        Tensor::from_row(q_f32.clone())
    }

    fn step(&mut self, prev: Sym, h: &Tensor) -> Tensor {
        let Self { model, qm, q_f32, x, xq, hq, rhq, gx, gh, z, r, rh, next, .. } = self;
        let hidden = model.cfg.hidden;
        let store = &qm.store;
        let dec = &store.get(model.dec_emb.weight).matrix; // [vocab, dim]
        let e_scale = dec.scale(prev as usize);
        let hs = h.row(0);
        hq.quantize_into(hs);

        // Materialize x = concat(dec_emb[prev], q) in f32 and quantize it
        // once: every gate then runs one contiguous matvec over the whole
        // [hidden, dim + hidden] weight instead of per-row segment dots.
        x.clear();
        x.extend(dec.row(prev as usize).iter().map(|&q| e_scale * q as f32));
        x.extend_from_slice(q_f32);
        xq.quantize_into(x);

        let wz = &store.get(model.gru.wz).matrix; // [hidden, dim + hidden]
        let uz = &store.get(model.gru.uz).matrix; // [hidden, hidden]
        let wr = &store.get(model.gru.wr).matrix;
        let ur = &store.get(model.gru.ur).matrix;
        let wh = &store.get(model.gru.wh).matrix;
        let uh = &store.get(model.gru.uh).matrix;

        wz.matvec_into(xq, gx);
        uz.matvec_into(hq, gh);
        z.clear();
        z.extend((0..hidden).map(|j| sigmoid(gx[j] + gh[j] + qm.bz[j])));
        wr.matvec_into(xq, gx);
        ur.matvec_into(hq, gh);
        r.clear();
        r.extend((0..hidden).map(|j| sigmoid(gx[j] + gh[j] + qm.br[j])));

        rh.clear();
        rh.extend((0..hidden).map(|j| r[j] * hs[j]));
        rhq.quantize_into(rh);

        wh.matvec_into(xq, gx);
        uh.matvec_into(rhq, gh);
        next.clear();
        next.extend((0..hidden).map(|j| {
            let cand = (gx[j] + gh[j] + qm.bh[j]).tanh();
            (1.0 - z[j]) * hs[j] + z[j] * cand
        }));
        Tensor::from_row(next.clone())
    }

    fn logprobs(&mut self, h: &Tensor, candidates: &[Sym]) -> Vec<f32> {
        let Self { model, qm, hq, logits, .. } = self;
        let out = &qm.store.get(model.out_emb.weight).matrix; // [vocab, hidden]
        hq.quantize_into(h.row(0));
        logits.clear();
        for &c in candidates {
            logits.push(out.dot_row(c as usize, hq));
        }
        dbcopilot_nn::tensor::log_softmax(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::StepScorer;
    use crate::model::RouterConfig;

    fn model() -> RouterModel {
        RouterModel::new(RouterConfig::tiny(), 40)
    }

    #[test]
    fn freeze_covers_every_param_with_expected_orientation() {
        let m = model();
        let qm = QuantRouterModel::freeze(&m);
        assert_eq!(qm.store().len(), m.store.len());
        for ((name, value), entry) in m.store.iter_values().zip(qm.store().entries()) {
            assert_eq!(entry.name, name);
            assert_eq!(entry.transposed, stored_transposed(name), "{name}");
            let (rows, cols) = value.shape();
            let want = if entry.transposed { (cols, rows) } else { (rows, cols) };
            assert_eq!((entry.matrix.rows(), entry.matrix.cols()), want, "{name}");
        }
    }

    #[test]
    fn quant_encode_tracks_f32_encode() {
        let m = model();
        let qm = QuantRouterModel::freeze(&m);
        let mut scorer = QuantScorer::new(&m, &qm);
        let exact = m.encode_infer("how many vocalists are there");
        let quant = scorer.encode("how many vocalists are there");
        assert_eq!(quant.shape(), exact.shape());
        for (a, b) in exact.as_slice().iter().zip(quant.as_slice()) {
            assert!((a - b).abs() < 0.05, "encode drifted: {a} vs {b}");
        }
    }

    #[test]
    fn quant_step_and_logprobs_track_f32() {
        let m = model();
        let qm = QuantRouterModel::freeze(&m);
        let mut scorer = QuantScorer::new(&m, &qm);
        let q_exact = m.encode_infer("list all cities");
        let q = scorer.encode("list all cities");
        let h_exact = m.step_infer(5, &q_exact, &q_exact);
        let h = scorer.step(5, &q);
        for (a, b) in h_exact.as_slice().iter().zip(h.as_slice()) {
            assert!((a - b).abs() < 0.1, "step drifted: {a} vs {b}");
        }
        let cands = [1u32, 7, 19, 33];
        let lp_exact = m.logprobs_infer(&h_exact, &cands);
        let lp = scorer.logprobs(&h, &cands);
        let sum: f32 = lp.iter().map(|v| v.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-4, "logprobs must normalize, sum {sum}");
        for (a, b) in lp_exact.iter().zip(&lp) {
            assert!((a - b).abs() < 0.25, "logprob drifted: {a} vs {b}");
        }
    }

    #[test]
    fn attach_matches_fresh_freeze() {
        let m = model();
        let frozen = QuantRouterModel::freeze(&m);
        let attached = QuantRouterModel::attach(&m, frozen.store().clone());
        assert_eq!(attached.store(), frozen.store());
        let mut a = QuantScorer::new(&m, &frozen);
        let mut b = QuantScorer::new(&m, &attached);
        let qa = a.encode("which nation is largest");
        let qb = b.encode("which nation is largest");
        assert!(qa.approx_eq(&qb, 0.0), "frozen vs attached must be bit-identical");
    }
}
