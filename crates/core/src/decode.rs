//! Graph-based constrained decoding and diverse beam search (paper §3.5,
//! Figure 4).
//!
//! At each autoregressive step the decoder may only emit symbols that
//! continue the name of an *accessible* schema element:
//!
//! * first, a database name (from the prefix trie over all databases);
//! * then tables of that database — the first table freely, later tables
//!   only among relation-neighbors of already-decoded tables;
//! * `SEP` / `EOS` are allowed exactly when the current prefix completes an
//!   accessible element name (`EOS` additionally requires ≥ 1 table).
//!
//! Diverse beam search (Vijayakumar et al., 2016) splits beams into groups;
//! each group pays a penalty for re-using symbols chosen by earlier groups
//! in the same step, yielding varied candidate schemata.

use std::collections::HashMap;

use dbcopilot_graph::{NodeId, QuerySchema, SchemaGraph, Trie};
use dbcopilot_nn::Tensor;

use crate::model::RouterModel;
use crate::vocab::{PieceVocab, Sym, BOS, EOS, SEP};

/// Precomputed decoding tables for a schema graph.
pub struct Constrainer<'g> {
    graph: &'g SchemaGraph,
    /// Prefix trie over database names.
    db_trie: Trie<NodeId>,
    /// Per-database table name lists `(piece_seq, node)`.
    tables_by_db: HashMap<NodeId, Vec<(Vec<Sym>, NodeId)>>,
    max_tables: usize,
}

impl<'g> Constrainer<'g> {
    pub fn new(graph: &'g SchemaGraph, vocab: &PieceVocab, max_tables: usize) -> Self {
        let mut db_trie = Trie::new();
        let mut tables_by_db = HashMap::new();
        for db in graph.database_nodes() {
            let seq =
                vocab.encode_name(graph.name(db)).expect("database name pieces must be in vocab");
            db_trie.insert(&seq, db);
            let mut tables = Vec::new();
            for t in graph.tables_of(db) {
                let tseq =
                    vocab.encode_name(graph.name(t)).expect("table name pieces must be in vocab");
                tables.push((tseq, t));
            }
            tables_by_db.insert(db, tables);
        }
        Constrainer { graph, db_trie, tables_by_db, max_tables }
    }

    /// Initial decode state.
    pub fn initial(&self) -> DecodeState {
        DecodeState { db: None, tables: Vec::new(), prefix: Vec::new(), done: false }
    }

    /// Accessible table names for a state: all tables of the database when
    /// none is decoded yet, else relation-neighbors of decoded tables.
    fn accessible_tables(&self, state: &DecodeState) -> Vec<&(Vec<Sym>, NodeId)> {
        let Some(db) = state.db else { return Vec::new() };
        let all = &self.tables_by_db[&db];
        if state.tables.is_empty() {
            return all.iter().collect();
        }
        if state.tables.len() >= self.max_tables {
            return Vec::new();
        }
        let mut neighbors: Vec<NodeId> = Vec::new();
        for &t in &state.tables {
            for r in self.graph.related_tables(t) {
                if !state.tables.contains(&r) && !neighbors.contains(&r) {
                    neighbors.push(r);
                }
            }
        }
        all.iter().filter(|(_, n)| neighbors.contains(n)).collect()
    }

    /// Allowed next symbols for a state.
    pub fn allowed(&self, state: &DecodeState) -> Vec<Sym> {
        if state.done {
            return Vec::new();
        }
        let mut out = Vec::new();
        match state.db {
            None => {
                // decoding the database name through the trie
                if let Some(cur) = self.db_trie.walk(&state.prefix) {
                    out.extend(self.db_trie.continuations(cur));
                    if self.db_trie.terminal(cur).is_some() && !state.prefix.is_empty() {
                        out.push(SEP); // commit database, start first table
                    }
                }
            }
            Some(_) => {
                let candidates = self.accessible_tables(state);
                let mut complete = false;
                for (seq, _) in &candidates {
                    if seq.len() > state.prefix.len() && seq.starts_with(&state.prefix) {
                        let next = seq[state.prefix.len()];
                        if !out.contains(&next) {
                            out.push(next);
                        }
                    }
                    if **seq == state.prefix {
                        complete = true;
                    }
                }
                if complete {
                    out.push(EOS);
                    // another table may follow if any remains accessible
                    // after committing this one
                    let committed = self.commit(state);
                    if let Some(c) = committed {
                        if !self.accessible_tables(&c).is_empty() {
                            out.push(SEP);
                        }
                    }
                }
            }
        }
        out
    }

    /// Commit the current prefix as a completed element; `None` if the
    /// prefix is not a complete accessible name.
    fn commit(&self, state: &DecodeState) -> Option<DecodeState> {
        let mut next = state.clone();
        match state.db {
            None => {
                let cur = self.db_trie.walk(&state.prefix)?;
                let db = *self.db_trie.terminal(cur)?;
                next.db = Some(db);
            }
            Some(_) => {
                let candidates = self.accessible_tables(state);
                let (_, node) = candidates.iter().find(|(seq, _)| *seq == state.prefix)?;
                next.tables.push(*node);
            }
        }
        next.prefix.clear();
        Some(next)
    }

    /// Advance a state by one symbol; `None` if the symbol is invalid
    /// (used by the unconstrained-decoding ablation, where beams may die).
    pub fn advance(&self, state: &DecodeState, sym: Sym) -> Option<DecodeState> {
        if state.done {
            return None;
        }
        match sym {
            SEP => self.commit(state),
            EOS => {
                let committed = self.commit(state)?;
                if committed.tables.is_empty() {
                    return None; // a schema needs at least one table
                }
                let mut done = committed;
                done.done = true;
                Some(done)
            }
            BOS => None,
            piece => {
                let mut next = state.clone();
                next.prefix.push(piece);
                Some(next)
            }
        }
    }

    /// The decoded query schema of a finished state.
    pub fn schema_of(&self, state: &DecodeState) -> Option<QuerySchema> {
        let db = state.db?;
        if state.tables.is_empty() {
            return None;
        }
        Some(QuerySchema::new(
            self.graph.name(db).to_string(),
            state.tables.iter().map(|t| self.graph.name(*t).to_string()).collect(),
        ))
    }
}

/// Decoder state: the dynamic part of Figure 4's prefix tree walk.
#[derive(Debug, Clone)]
pub struct DecodeState {
    pub db: Option<NodeId>,
    pub tables: Vec<NodeId>,
    /// Pieces of the element currently being decoded.
    pub prefix: Vec<Sym>,
    pub done: bool,
}

/// Decoding options.
#[derive(Debug, Clone)]
pub struct DecodeOptions {
    pub beams: usize,
    pub groups: usize,
    pub diversity_penalty: f32,
    /// Disable graph constraints (Table 7 ablation "w/o CD"): the model may
    /// emit any symbol; beams that commit invalid names die.
    pub constrained: bool,
    /// Plain beam search instead of diverse groups (ablation "w/o DB").
    pub diverse: bool,
    pub max_steps: usize,
}

impl DecodeOptions {
    pub fn from_config(cfg: &crate::model::RouterConfig) -> Self {
        DecodeOptions {
            beams: cfg.beams,
            groups: cfg.beam_groups,
            diversity_penalty: cfg.diversity_penalty,
            constrained: true,
            diverse: true,
            max_steps: 48,
        }
    }
}

/// One decoded candidate sequence.
#[derive(Debug, Clone)]
pub struct DecodedSchema {
    pub schema: QuerySchema,
    /// Sequence log-probability.
    pub logp: f32,
}

#[derive(Clone)]
struct Beam {
    state: DecodeState,
    h: Tensor,
    prev: Sym,
    logp: f32,
}

/// The per-step model interface beam search drives. One implementation per
/// scoring precision: the exact f32 path below, and the i8 path in
/// [`crate::qmodel`]. `beam_search_with` is monomorphized per scorer, so the
/// f32 path compiles to exactly the pre-trait code.
pub(crate) trait StepScorer {
    /// Encode the question into the initial hidden state `[1, hidden]`.
    /// Called once per search; the scorer retains whatever per-question
    /// state its `step` needs (the f32 path keeps the question tensor).
    fn encode(&mut self, question: &str) -> Tensor;

    /// One decoder step: previous symbol + hidden → next hidden.
    fn step(&mut self, prev: Sym, h: &Tensor) -> Tensor;

    /// Log-probabilities over `candidates` given `h` (softmax over the
    /// candidate subset).
    fn logprobs(&mut self, h: &Tensor, candidates: &[Sym]) -> Vec<f32>;
}

/// The reference scorer: exact f32 heap-tensor inference.
struct F32Scorer<'m> {
    model: &'m RouterModel,
    q: Tensor,
}

impl StepScorer for F32Scorer<'_> {
    fn encode(&mut self, question: &str) -> Tensor {
        self.q = self.model.encode_infer(question);
        self.q.clone()
    }

    fn step(&mut self, prev: Sym, h: &Tensor) -> Tensor {
        self.model.step_infer(prev, &self.q, h)
    }

    fn logprobs(&mut self, h: &Tensor, candidates: &[Sym]) -> Vec<f32> {
        self.model.logprobs_infer(h, candidates)
    }
}

/// Run (diverse) beam search for one question at f32 precision.
pub fn beam_search(
    model: &RouterModel,
    constrainer: &Constrainer<'_>,
    vocab_len: usize,
    question: &str,
    opts: &DecodeOptions,
) -> Vec<DecodedSchema> {
    let mut scorer = F32Scorer { model, q: Tensor::zeros(1, 1) };
    beam_search_with(&mut scorer, constrainer, vocab_len, question, opts)
}

/// Run (diverse) beam search with an explicit scorer (precision dispatch).
pub(crate) fn beam_search_with<S: StepScorer>(
    scorer: &mut S,
    constrainer: &Constrainer<'_>,
    vocab_len: usize,
    question: &str,
    opts: &DecodeOptions,
) -> Vec<DecodedSchema> {
    let q = scorer.encode(question);
    let groups = if opts.diverse { opts.groups.max(1) } else { 1 };
    let beams_per_group = (opts.beams / groups).max(1);
    let init = Beam { state: constrainer.initial(), h: q.clone(), prev: BOS, logp: 0.0 };
    let mut group_beams: Vec<Vec<Beam>> = vec![vec![init]; groups];
    let mut finished: Vec<(DecodeState, f32)> = Vec::new();
    let all_syms: Vec<Sym> = (0..vocab_len as Sym).collect();

    for _step in 0..opts.max_steps {
        let mut any_alive = false;
        let mut used: HashMap<Sym, f32> = HashMap::new();
        for beams in group_beams.iter_mut() {
            let mut expansions: Vec<(Beam, Sym, f32)> = Vec::new();
            for beam in beams.iter() {
                if beam.state.done {
                    continue;
                }
                let allowed: Vec<Sym> = if opts.constrained {
                    constrainer.allowed(&beam.state)
                } else {
                    all_syms.clone()
                };
                if allowed.is_empty() {
                    continue;
                }
                // advance hidden state once per beam
                let h_next = scorer.step(beam.prev, &beam.h);
                let lps = scorer.logprobs(&h_next, &allowed);
                for (i, &sym) in allowed.iter().enumerate() {
                    let penalty = opts.diversity_penalty * used.get(&sym).copied().unwrap_or(0.0);
                    let score = beam.logp + lps[i] - penalty;
                    expansions.push((
                        Beam {
                            state: beam.state.clone(),
                            h: h_next.clone(),
                            prev: sym,
                            logp: beam.logp + lps[i],
                        },
                        sym,
                        score,
                    ));
                }
            }
            expansions.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            let mut next_beams: Vec<Beam> = Vec::with_capacity(beams_per_group);
            for (beam, sym, _) in expansions {
                if next_beams.len() >= beams_per_group {
                    break;
                }
                let Some(next_state) = constrainer.advance(&beam.state, sym) else {
                    continue; // invalid under unconstrained decoding
                };
                *used.entry(sym).or_insert(0.0) += 1.0;
                if next_state.done {
                    finished.push((next_state, beam.logp));
                    // a finished beam still occupies a slot this step
                    next_beams.push(Beam {
                        state: DecodeState { done: true, ..next_state_placeholder() },
                        ..beam
                    });
                } else {
                    any_alive = true;
                    next_beams.push(Beam { state: next_state, ..beam });
                }
            }
            *beams = next_beams;
        }
        if !any_alive {
            break;
        }
    }

    let mut out: Vec<DecodedSchema> = finished
        .into_iter()
        .filter_map(|(state, logp)| {
            constrainer.schema_of(&state).map(|schema| DecodedSchema { schema, logp })
        })
        .collect();
    out.sort_by(|a, b| b.logp.partial_cmp(&a.logp).unwrap_or(std::cmp::Ordering::Equal));
    out
}

fn next_state_placeholder() -> DecodeState {
    DecodeState { db: None, tables: Vec::new(), prefix: Vec::new(), done: true }
}

/// Merge candidate sequences that share a database: union their tables,
/// keep the best sequence score (paper §3.5 "combine tables from schema
/// sequences that share the same database").
pub fn merge_candidates(decoded: &[DecodedSchema]) -> Vec<DecodedSchema> {
    let mut by_db: Vec<DecodedSchema> = Vec::new();
    for d in decoded {
        match by_db.iter_mut().find(|c| c.schema.database == d.schema.database) {
            Some(existing) => {
                for t in &d.schema.tables {
                    if !existing.schema.tables.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                        existing.schema.tables.push(t.clone());
                    }
                }
                existing.logp = existing.logp.max(d.logp);
            }
            None => by_db.push(d.clone()),
        }
    }
    by_db.sort_by(|a, b| b.logp.partial_cmp(&a.logp).unwrap_or(std::cmp::Ordering::Equal));
    by_db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RouterConfig, RouterModel};
    use dbcopilot_sqlengine::{Collection, DataType, DatabaseSchema, TableSchema};

    fn collection() -> Collection {
        let mut c = Collection::new();
        let mut db = DatabaseSchema::new("concert_singer");
        db.add_table(TableSchema::new("singer").column("singer_id", DataType::Int).primary(0));
        db.add_table(TableSchema::new("concert").column("concert_id", DataType::Int).primary(0));
        db.add_table(
            TableSchema::new("singer_in_concert")
                .column("singer_id", DataType::Int)
                .column("concert_id", DataType::Int)
                .foreign("singer_id", "singer", "singer_id")
                .foreign("concert_id", "concert", "concert_id"),
        );
        let mut world = DatabaseSchema::new("world");
        world.add_table(TableSchema::new("country").column("code", DataType::Text).primary(0));
        world.add_table(
            TableSchema::new("countrylanguage").column("countrycode", DataType::Text).foreign(
                "countrycode",
                "country",
                "code",
            ),
        );
        c.add_database(db);
        c.add_database(world);
        c
    }

    #[test]
    fn initial_allows_only_db_starts() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let c = Constrainer::new(&g, &v, 4);
        let allowed = c.allowed(&c.initial());
        let concert = v.id_of("concert").unwrap();
        let world = v.id_of("world").unwrap();
        assert!(allowed.contains(&concert));
        assert!(allowed.contains(&world));
        assert!(!allowed.contains(&SEP));
        assert!(!allowed.contains(&EOS));
    }

    #[test]
    fn db_must_complete_before_sep() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let c = Constrainer::new(&g, &v, 4);
        let mut s = c.initial();
        s = c.advance(&s, v.id_of("concert").unwrap()).unwrap();
        // "concert" is not a complete db name ("concert_singer" is) → no SEP
        let allowed = c.allowed(&s);
        assert!(!allowed.contains(&SEP));
        assert!(allowed.contains(&v.id_of("singer").unwrap()));
        s = c.advance(&s, v.id_of("singer").unwrap()).unwrap();
        let allowed = c.allowed(&s);
        assert!(allowed.contains(&SEP));
    }

    #[test]
    fn first_table_free_then_neighbors_only() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let c = Constrainer::new(&g, &v, 4);
        let mut s = c.initial();
        for p in ["concert", "singer"] {
            s = c.advance(&s, v.id_of(p).unwrap()).unwrap();
        }
        s = c.advance(&s, SEP).unwrap(); // commit db
        assert!(s.db.is_some());
        // first table: all three starts allowed
        let allowed = c.allowed(&s);
        assert!(allowed.contains(&v.id_of("singer").unwrap()));
        assert!(allowed.contains(&v.id_of("concert").unwrap()));
        // decode "singer", commit via SEP
        s = c.advance(&s, v.id_of("singer").unwrap()).unwrap();
        // prefix "singer" completes table `singer` but also prefixes
        // singer_in_concert; both SEP/EOS and "in" allowed
        let allowed = c.allowed(&s);
        assert!(allowed.contains(&SEP));
        assert!(allowed.contains(&EOS));
        assert!(allowed.contains(&v.id_of("in").unwrap()));
        s = c.advance(&s, SEP).unwrap();
        // next table must be a neighbor of `singer` → only singer_in_concert
        let allowed = c.allowed(&s);
        assert_eq!(allowed, vec![v.id_of("singer").unwrap()]);
    }

    #[test]
    fn eos_requires_a_table() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let c = Constrainer::new(&g, &v, 4);
        let mut s = c.initial();
        s = c.advance(&s, v.id_of("world").unwrap()).unwrap();
        assert!(c.advance(&s, EOS).is_none(), "EOS before any table must fail");
    }

    #[test]
    fn full_sequence_decodes_to_schema() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let c = Constrainer::new(&g, &v, 4);
        let mut s = c.initial();
        let syms = [
            v.id_of("world").unwrap(),
            SEP,
            v.id_of("country").unwrap(),
            SEP,
            v.id_of("countrylanguage").unwrap(),
            EOS,
        ];
        for &sym in &syms {
            s = c.advance(&s, sym).unwrap_or_else(|| panic!("blocked at {sym}"));
        }
        let schema = c.schema_of(&s).unwrap();
        assert!(schema
            .same_as(&QuerySchema::new("world", vec!["country".into(), "countrylanguage".into()])));
    }

    #[test]
    fn untrained_beam_search_emits_valid_schemata() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let c = Constrainer::new(&g, &v, 3);
        let model = RouterModel::new(RouterConfig::tiny(), v.len());
        let opts = DecodeOptions {
            beams: 4,
            groups: 4,
            diversity_penalty: 1.0,
            constrained: true,
            diverse: true,
            max_steps: 24,
        };
        let out = beam_search(&model, &c, v.len(), "which language is spoken", &opts);
        assert!(!out.is_empty(), "constrained decoding must always yield schemata");
        for d in &out {
            assert!(g.is_valid_schema(&d.schema), "invalid: {}", d.schema);
        }
    }

    #[test]
    fn diverse_groups_yield_distinct_candidates() {
        let coll = collection();
        let g = SchemaGraph::build(&coll);
        let v = PieceVocab::build(&g);
        let c = Constrainer::new(&g, &v, 3);
        let model = RouterModel::new(RouterConfig::tiny(), v.len());
        let opts = DecodeOptions {
            beams: 6,
            groups: 6,
            diversity_penalty: 2.0,
            constrained: true,
            diverse: true,
            max_steps: 24,
        };
        let out = beam_search(&model, &c, v.len(), "question", &opts);
        let dbs: std::collections::HashSet<&str> =
            out.iter().map(|d| d.schema.database.as_str()).collect();
        assert!(dbs.len() >= 2, "diverse beams should cover both databases: {out:?}");
    }

    #[test]
    fn merge_unions_tables_per_db() {
        let a =
            DecodedSchema { schema: QuerySchema::new("world", vec!["country".into()]), logp: -1.0 };
        let b = DecodedSchema {
            schema: QuerySchema::new("world", vec!["countrylanguage".into(), "country".into()]),
            logp: -2.0,
        };
        let m = merge_candidates(&[a, b]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].schema.tables.len(), 2);
        assert_eq!(m[0].logp, -1.0);
    }
}
