//! Property tests for the determinism contract: the parallel primitives
//! must agree with the serial map for arbitrary inputs, chunk sizes, and
//! thread counts.

use proptest::prelude::*;
use rand::Rng;

use dbcopilot_runtime::{derive_rng, parallel_map, parallel_map_chunks, with_thread_count};

/// Arbitrary-ish inputs derived from one sampled seed (the vendored
/// proptest subset samples integer ranges only).
fn case(seed: u64) -> (Vec<u64>, usize, usize) {
    let mut rng = derive_rng(seed, 0);
    let len = rng.gen_range(0usize..200);
    let items: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1_000_000)).collect();
    let chunk_size = rng.gen_range(1usize..17);
    let threads = rng.gen_range(1usize..9);
    (items, chunk_size, threads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parallel_map_chunks` equals the serial chunked map, at any thread
    /// count, for arbitrary item lists and chunk sizes.
    #[test]
    fn chunked_map_matches_serial(seed in 0u64..1_000_000) {
        let (items, chunk_size, threads) = case(seed);
        let serial: Vec<(usize, u64, usize)> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, c)| (i, c.iter().sum(), c.len()))
            .collect();
        let parallel = with_thread_count(threads, || {
            parallel_map_chunks(&items, chunk_size, |i, c| (i, c.iter().sum::<u64>(), c.len()))
        });
        prop_assert_eq!(parallel, serial, "chunk_size={} threads={}", chunk_size, threads);
    }

    /// `parallel_map` preserves item order and index pairing.
    #[test]
    fn item_map_matches_serial(seed in 0u64..1_000_000) {
        let (items, _, threads) = case(seed);
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x + i as u64).collect();
        let parallel = with_thread_count(threads, || {
            parallel_map(&items, |i, &x| x + i as u64)
        });
        prop_assert_eq!(parallel, serial, "threads={}", threads);
    }
}
