//! Worker-pool behavior: graceful shutdown under pending work, panic
//! containment and propagation, and the determinism contract on the pooled
//! map variants.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dbcopilot_runtime::{
    parallel_map_chunks, pooled_map, pooled_map_chunks, with_thread_count, WorkerPool,
};

#[test]
fn drop_drains_pending_jobs_before_shutdown() {
    // One worker, many queued jobs: dropping the pool must run every job
    // already submitted (graceful drain), not abandon the queue.
    let ran = Arc::new(AtomicUsize::new(0));
    let pool = WorkerPool::new(1);
    for _ in 0..32 {
        let ran = Arc::clone(&ran);
        pool.execute(move || {
            std::thread::sleep(Duration::from_millis(1));
            ran.fetch_add(1, Ordering::SeqCst);
        });
    }
    drop(pool); // joins after the queue is drained
    assert_eq!(ran.load(Ordering::SeqCst), 32);
}

#[test]
fn map_panic_propagates_to_caller_and_pool_survives() {
    let pool = WorkerPool::new(2);
    let items: Vec<u32> = (0..64).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        with_thread_count(3, || {
            pool.map(&items, |_, &x| {
                if x == 17 {
                    panic!("bad item");
                }
                x
            })
        })
    }));
    let payload = result.expect_err("panic in mapped closure must reach the caller");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "bad item");

    // The workers caught the unwind and are still serving.
    let ok = with_thread_count(3, || pool.map(&items, |_, &x| x + 1));
    assert_eq!(ok[63], 64);
}

#[test]
fn execute_panics_are_contained_and_counted() {
    let pool = WorkerPool::new(1);
    let ran = Arc::new(AtomicUsize::new(0));
    pool.execute(|| panic!("contained"));
    let r = Arc::clone(&ran);
    pool.execute(move || {
        r.fetch_add(1, Ordering::SeqCst);
    });
    // Synchronize on the queue: a map call drains behind the two jobs.
    let _ = with_thread_count(2, || pool.map(&[1u8, 2], |_, &x| x));
    assert_eq!(ran.load(Ordering::SeqCst), 1, "worker must survive the earlier panic");
    assert_eq!(pool.panic_count(), 1);
}

#[test]
fn pooled_map_matches_scoped_map_at_any_thread_count() {
    let items: Vec<u64> = (0..201).collect();
    let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) >> 7).collect();
    for threads in [1, 2, 4, 8] {
        let pooled = with_thread_count(threads, || {
            pooled_map(&items, |_, &x| x.wrapping_mul(2654435761) >> 7)
        });
        assert_eq!(pooled, serial, "threads={threads}");
        let chunked = with_thread_count(threads, || {
            pooled_map_chunks(&items, 7, |_, c| c.iter().copied().sum::<u64>())
        });
        let scoped = with_thread_count(threads, || {
            parallel_map_chunks(&items, 7, |_, c| c.iter().copied().sum::<u64>())
        });
        assert_eq!(chunked, scoped, "threads={threads}");
    }
}

#[test]
fn map_indices_and_chunk_boundaries_are_exact() {
    let pool = WorkerPool::new(3);
    let items: Vec<usize> = (0..10).collect();
    let got = with_thread_count(4, || pool.map_chunks(&items, 4, |ci, chunk| (ci, chunk.to_vec())));
    assert_eq!(got, vec![(0, vec![0, 1, 2, 3]), (1, vec![4, 5, 6, 7]), (2, vec![8, 9])]);
}

#[test]
fn nested_pooled_maps_run_serially_inside_workers() {
    // Workers pin their thread count to 1, so a nested pooled map inside a
    // mapped closure runs inline instead of deadlocking on pool capacity.
    let pool = WorkerPool::new(1);
    let items: Vec<u32> = (0..8).collect();
    let nested =
        with_thread_count(4, || pool.map(&items, |_, &x| pooled_map(&[x, x + 1], |_, &y| y * 2)));
    assert_eq!(nested[3], vec![6, 8]);
}

#[test]
fn execute_jobs_run_with_pinned_thread_count() {
    // Regression: execute() jobs must run with the thread count pinned to
    // 1, like map helpers. Otherwise a job calling a pooled map at
    // thread_count > 1 enqueues helpers behind the worker it occupies and
    // waits for them forever (deadlock once every worker does it).
    let pool = WorkerPool::new(2);
    let (tx, rx) = std::sync::mpsc::channel();
    pool.execute(move || {
        tx.send(dbcopilot_runtime::thread_count()).unwrap();
    });
    let seen = rx.recv_timeout(Duration::from_secs(10)).expect("execute job must run");
    assert_eq!(seen, 1, "execute jobs must see a pinned thread count");
}

#[test]
fn execute_jobs_that_map_on_the_same_pool_cannot_deadlock() {
    // End-to-end version of the pin: jobs on the (never-dropped) global
    // pool run pooled maps — which target the same pool — and must finish
    // within a deadline at any `DBC_THREADS`. Pre-pin, DBC_THREADS=2 (the
    // CI matrix leg) deadlocked here.
    let (tx, rx) = std::sync::mpsc::channel();
    for _ in 0..2 {
        let tx = tx.clone();
        dbcopilot_runtime::global_pool().execute(move || {
            let items: Vec<u64> = (0..32).collect();
            let out = pooled_map_chunks(&items, 4, |_, c| c.iter().sum::<u64>());
            tx.send(out.iter().sum::<u64>()).unwrap();
        });
    }
    let want: u64 = (0..32).sum();
    for _ in 0..2 {
        let got = rx
            .recv_timeout(Duration::from_secs(20))
            .expect("pool deadlocked: execute jobs mapping on their own pool never finished");
        assert_eq!(got, want);
    }
}

#[test]
fn concurrent_maps_on_one_pool_are_both_correct() {
    let pool = Arc::new(WorkerPool::new(2));
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let pool = Arc::clone(&pool);
        joins.push(std::thread::spawn(move || {
            let items: Vec<u64> = (0..100).map(|i| i + t * 1000).collect();
            let got = with_thread_count(3, || pool.map(&items, |_, &x| x * 3));
            let want: Vec<u64> = items.iter().map(|&x| x * 3).collect();
            assert_eq!(got, want);
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn empty_and_tiny_inputs() {
    let pool = WorkerPool::new(2);
    let empty: Vec<u8> = Vec::new();
    assert!(pool.map(&empty, |_, &x| x).is_empty());
    assert_eq!(with_thread_count(8, || pool.map(&[9u8], |_, &x| x)), vec![9]);
}

#[test]
#[should_panic(expected = "chunk_size must be positive")]
fn zero_chunk_size_panics() {
    let pool = WorkerPool::new(1);
    let _ = pool.map_chunks(&[1, 2, 3], 0, |_, c: &[i32]| c.len());
}
