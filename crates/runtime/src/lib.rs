//! `dbcopilot-runtime` — deterministic data-parallel primitives.
//!
//! Every heavy phase of the pipeline (router training, synthetic-data
//! generation, retrieval index builds, routing evaluation) runs on the two
//! primitives in this crate instead of ad-hoc threads:
//!
//! * [`parallel_map`] — map a function over a slice, one item at a time;
//! * [`parallel_map_chunks`] — map a function over fixed-size chunks of a
//!   slice (for work where per-item dispatch would dominate).
//!
//! # Determinism contract
//!
//! The output of both primitives depends **only** on the input slice, the
//! mapped function, and (for the chunked variant) the chunk size — never on
//! the number of worker threads or on scheduling order:
//!
//! * work is partitioned purely by item/chunk *index*, and results are
//!   merged back **in index order**;
//! * callers that need randomness derive one RNG **per item** from a base
//!   seed and the item's index ([`derive_rng`]/[`split_seed`]) rather than
//!   sharing a sequential generator across items.
//!
//! Under this contract a computation is bit-for-bit identical at
//! `DBC_THREADS=1` and `DBC_THREADS=64`, which is what makes the parallel
//! training loop in `dbcopilot-core` reproducible (and testable: see the
//! determinism suite in that crate).
//!
//! # Thread-count resolution
//!
//! [`thread_count`] resolves, in order: a scoped override installed by
//! [`with_thread_count`] (tests), the `DBC_THREADS` environment variable,
//! and finally [`std::thread::available_parallelism`] capped at
//! [`MAX_DEFAULT_THREADS`]. Inside a parallel worker the count is pinned
//! to 1, so nested parallel sections run serially instead of
//! oversubscribing the machine.
//!
//! # Persistent pool
//!
//! The scoped primitives spawn and join workers on every call — fine for
//! training-sized work, wasteful for serving-sized work. The [`pool`]
//! module provides [`WorkerPool`] (long-lived threads, channel work queue,
//! graceful drain-on-drop) and the drop-in variants [`pooled_map`] /
//! [`pooled_map_chunks`] on a process-wide shared pool. Both families obey
//! the same determinism contract, so callers can switch freely:
//!
//! ```
//! use dbcopilot_runtime::{parallel_map, pooled_map, with_thread_count};
//!
//! let items: Vec<u64> = (0..100).collect();
//! let scoped = with_thread_count(4, || parallel_map(&items, |_, &x| x * 2));
//! let pooled = with_thread_count(4, || pooled_map(&items, |_, &x| x * 2));
//! assert_eq!(scoped, pooled);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod ordered;
pub mod pool;

pub use ordered::{lock_rank, OrderedGuard, OrderedMutex};
pub use pool::{global_pool, pooled_map, pooled_map_chunks, PoolHandle, WorkerPool};

/// Upper bound applied when the thread count comes from hardware detection
/// (an explicit `DBC_THREADS` is honored as-is).
pub const MAX_DEFAULT_THREADS: usize = 16;

/// Items per worker dispatch below which spawning threads is never worth it.
pub(crate) const MIN_PARALLEL_ITEMS: usize = 2;

pub(crate) fn env_thread_count() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    ENV.get_or_init(|| {
        let raw = std::env::var("DBC_THREADS").ok()?;
        match raw.trim().parse::<usize>() {
            Ok(0) => {
                eprintln!("DBC_THREADS=0 is invalid; using 1");
                Some(1)
            }
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("DBC_THREADS={raw:?} is not a number; using hardware parallelism");
                None
            }
        }
    })
    .unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_DEFAULT_THREADS)
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel primitives will use when called
/// from this thread.
pub fn thread_count() -> usize {
    OVERRIDE.with(|o| o.get()).unwrap_or_else(env_thread_count).max(1)
}

/// Run `f` with the thread count pinned to `n` on the current thread.
///
/// Scoped and re-entrant: the previous override is restored afterwards even
/// if `f` panics. This is how the determinism tests compare `DBC_THREADS=1`
/// against `DBC_THREADS=4` inside one process.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

/// Split a base seed into an independent per-item stream seed.
///
/// SplitMix64 finalizer over `(seed, stream)`: statistically independent
/// streams for consecutive indices, and stable across platforms and thread
/// counts (it is pure integer arithmetic).
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z =
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A private RNG for item `stream` of a computation seeded with `seed`.
pub fn derive_rng(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(split_seed(seed, stream))
}

/// Map `f` over `items` in parallel; results are returned **in item order**
/// regardless of thread count. `f` receives `(index, &item)`.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_chunks(items, 1, |i, chunk| f(i, &chunk[0]))
}

/// Map `f` over fixed-size chunks of `items` in parallel; results are
/// returned **in chunk order**. `f` receives `(chunk_index, chunk)`; every
/// chunk has `chunk_size` items except possibly the last.
///
/// The chunk boundaries depend only on `chunk_size` — never derive
/// `chunk_size` from [`thread_count`], or the partition (and any
/// float-accumulation order downstream) would change with the machine.
///
/// # Panics
/// Panics if `chunk_size == 0`, or if any invocation of `f` panicked.
pub fn parallel_map_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    let threads = thread_count().min(n_chunks);
    if threads <= 1 || items.len() < MIN_PARALLEL_ITEMS {
        return items.chunks(chunk_size).enumerate().map(|(i, c)| f(i, c)).collect();
    }

    // Dynamic scheduling (workers pull the next chunk index off an atomic
    // counter) keeps load balanced when chunk costs vary; determinism is
    // preserved because results are reassembled by chunk index below.
    // Workers pin their own thread count to 1 so a nested parallel section
    // inside `f` runs serially: the caller's thread budget is already spent
    // on this fan-out, and the thread-local override would otherwise be
    // invisible on worker threads (unpinning nested phases and
    // oversubscribing the machine by threads² in e.g. tune_bm25 → Bm25
    // build).
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(n_chunks);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    with_thread_count(1, || {
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let lo = c * chunk_size;
                            let hi = (lo + chunk_size).min(items.len());
                            local.push((c, f(c, &items[lo..hi])));
                        }
                        local
                    })
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("runtime worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|(c, _)| *c);
    debug_assert_eq!(tagged.len(), n_chunks);
    tagged.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = with_thread_count(threads, || parallel_map(&items, |_, &x| x * 3 + 1));
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn chunked_map_sees_correct_chunks() {
        let items: Vec<usize> = (0..10).collect();
        let got = with_thread_count(4, || {
            parallel_map_chunks(&items, 4, |ci, chunk| (ci, chunk.to_vec()))
        });
        assert_eq!(got, vec![(0, vec![0, 1, 2, 3]), (1, vec![4, 5, 6, 7]), (2, vec![8, 9])]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        assert!(parallel_map(&items, |_, &x| x).is_empty());
        assert!(parallel_map_chunks(&items, 5, |_, c| c.len()).is_empty());
    }

    #[test]
    fn indices_match_positions() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = with_thread_count(3, || parallel_map(&items, |i, &s| format!("{i}:{s}")));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn split_seed_streams_differ() {
        let s = 0xdbc0;
        assert_ne!(split_seed(s, 0), split_seed(s, 1));
        assert_ne!(split_seed(s, 1), split_seed(s, 2));
        // stable values (cross-platform reproducibility anchor)
        assert_eq!(split_seed(s, 7), split_seed(s, 7));
    }

    #[test]
    fn derived_rngs_are_independent_of_thread_count() {
        let draws = |threads: usize| -> Vec<u32> {
            with_thread_count(threads, || {
                let idx: Vec<u64> = (0..64).collect();
                parallel_map(&idx, |_, &i| derive_rng(42, i).gen_range(0..1_000_000))
            })
        };
        assert_eq!(draws(1), draws(5));
    }

    #[test]
    fn nested_parallel_sections_run_serially_in_workers() {
        // A worker's own thread count is pinned to 1, so nested fan-outs
        // cannot oversubscribe the machine (threads² spawns).
        let items: Vec<u32> = (0..8).collect();
        let counts = with_thread_count(4, || parallel_map(&items, |_, _| thread_count()));
        assert_eq!(counts, vec![1; 8]);
        // ...and results of nested maps are still correct.
        let nested = with_thread_count(4, || {
            parallel_map(&items, |_, &x| parallel_map(&[x, x + 1], |_, &y| y * 2))
        });
        assert_eq!(nested[3], vec![6, 8]);
    }

    #[test]
    fn with_thread_count_restores_on_unwind() {
        let before = thread_count();
        let r = std::panic::catch_unwind(|| with_thread_count(3, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(thread_count(), before);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        parallel_map_chunks(&[1, 2, 3], 0, |_, c: &[i32]| c.len());
    }
}
