//! Rank-ordered mutexes: the runtime half of the lock-order discipline.
//!
//! Every first-party lock in the workspace carries a rank from
//! [`lock_rank`], and a thread may only acquire locks in strictly
//! ascending rank order. The static half (`dbcopilot-lint`'s
//! `lock-order` rule) checks nesting it can see in the token stream; the
//! [`OrderedMutex`] wrapper here checks the same ranking *dynamically*
//! under `debug_assertions`, catching acquisition orders that only arise
//! at runtime (through closures, trait objects, or call chains the
//! linter cannot follow). Release builds compile the bookkeeping out:
//! an `OrderedMutex` is then exactly a `std::sync::Mutex` plus two
//! words of rank metadata.
//!
//! Poisoning is ignored throughout ([`PoisonError::into_inner`]): the
//! pool already contains and re-throws mapped-closure panics itself, and
//! every guarded region leaves the data structurally valid.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// The declared lock-order ranking for the whole workspace. Nested
/// acquisitions must follow strictly ascending ranks. The linter's
/// `LOCK_RANKS` table (crates/lint/src/rules.rs) mirrors this list by
/// field name — extend both together when adding a lock.
pub mod lock_rank {
    /// `WorkerPool`'s shared job-queue receiver.
    pub const RECEIVER: u16 = 10;
    /// `map_chunks` result slots.
    pub const SLOTS: u16 = 20;
    /// `map_chunks` first-panic payload.
    pub const PANIC: u16 = 21;
    /// `map_chunks` outstanding-helper count (condvar-paired).
    pub const PENDING: u16 = 22;
    /// The serving engine's response cache.
    pub const CACHE: u16 = 30;
    /// `RouterHandle`'s current router generation.
    pub const CURRENT: u16 = 31;
    /// The http server's per-status response registry.
    pub const RESPONSES: u16 = 40;
}

#[cfg(debug_assertions)]
mod held {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    thread_local! {
        /// Locks this thread currently holds: (rank, name, token).
        /// Guards can drop out of LIFO order, so release is by token,
        /// not by popping.
        static STACK: RefCell<Vec<(u16, &'static str, u64)>> =
            const { RefCell::new(Vec::new()) };
    }

    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    /// Record an acquisition, panicking on a ranking violation.
    pub fn acquire(rank: u16, name: &'static str) -> u64 {
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(&(held_rank, held_name, _)) = stack.iter().max_by_key(|&&(r, _, _)| r) {
                assert!(
                    rank > held_rank,
                    "lock-order inversion: acquiring `{name}` (rank {rank}) while \
                     holding `{held_name}` (rank {held_rank}) — nested acquisitions \
                     must follow strictly ascending ranks (see \
                     dbcopilot_runtime::lock_rank)"
                );
            }
            stack.push((rank, name, token));
        });
        token
    }

    pub fn release(token: u64) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(at) = stack.iter().position(|&(_, _, t)| t == token) {
                stack.remove(at);
            }
        });
    }
}

/// A `Mutex` that participates in the workspace lock-order ranking.
///
/// Under `debug_assertions` every acquisition is checked against the
/// locks the current thread already holds and panics on a rank
/// inversion — turning a potential deadlock into a deterministic test
/// failure. In release builds only the plain mutex remains.
pub struct OrderedMutex<T> {
    name: &'static str,
    rank: u16,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` under `name` with rank `rank` (use the constants in
    /// [`lock_rank`]).
    pub fn new(name: &'static str, rank: u16, value: T) -> Self {
        OrderedMutex { name, rank, inner: Mutex::new(value) }
    }

    /// Acquire the lock, panicking (debug builds) on a rank inversion.
    /// Poisoning is ignored.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = held::acquire(self.rank, self.name);
        // dbc-lint: allow(lock-order): this is the wrapper's own inner
        // acquisition — the rank check above *is* the discipline.
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        OrderedGuard {
            inner: Some(inner),
            #[cfg(debug_assertions)]
            token,
        }
    }

    /// The declared rank of this lock.
    pub fn rank(&self) -> u16 {
        self.rank
    }

    /// The declared name of this lock.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Mutable access without locking (requires exclusive ownership, so
    /// no ordering concern arises).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`OrderedMutex::lock`]. Releases the rank
/// bookkeeping entry on drop.
pub struct OrderedGuard<'a, T> {
    /// `None` only transiently inside [`OrderedGuard::wait`].
    inner: Option<MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    token: u64,
}

impl<'a, T> OrderedGuard<'a, T> {
    /// Block on `cv` until notified, releasing and re-acquiring the
    /// underlying mutex exactly like [`Condvar::wait`]. The rank
    /// bookkeeping entry stays in place across the wait: the thread is
    /// parked, and on wakeup it holds the same lock again.
    pub fn wait(cv: &Condvar, mut guard: Self) -> Self {
        let inner = guard.inner.take().expect("guard holds the lock outside wait()");
        let inner = cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        guard
    }
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock outside wait()")
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock outside wait()")
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::release(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_fine() {
        let low = OrderedMutex::new("low", 1, 10u32);
        let high = OrderedMutex::new("high", 2, 20u32);
        let a = low.lock();
        let b = high.lock();
        assert_eq!(*a + *b, 30);
    }

    #[test]
    fn reacquisition_after_release_is_fine() {
        let low = OrderedMutex::new("low", 1, 0u32);
        let high = OrderedMutex::new("high", 2, 0u32);
        {
            let mut g = high.lock();
            *g += 1;
        }
        let mut g = low.lock();
        *g += 1;
        drop(g);
        let g = high.lock();
        assert_eq!(*g, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn descending_acquisition_panics() {
        let low = OrderedMutex::new("low", 1, ());
        let high = OrderedMutex::new("high", 2, ());
        let _g = high.lock();
        let _h = low.lock(); // rank 1 while holding rank 2: inversion
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn equal_rank_reacquisition_panics() {
        // Same-rank nesting (e.g. the same mutex twice) would deadlock:
        // the ranking is *strictly* ascending.
        let a = OrderedMutex::new("a", 7, ());
        let b = OrderedMutex::new("b", 7, ());
        let _g = a.lock();
        let _h = b.lock();
    }

    #[test]
    fn condvar_wait_roundtrip() {
        use std::sync::Arc;
        let m = Arc::new(OrderedMutex::new("pending", 1, 1usize));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 0;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g > 0 {
            g = OrderedGuard::wait(&cv, g);
        }
        assert_eq!(*g, 0);
        drop(g);
        t.join().expect("notifier thread");
    }
}
