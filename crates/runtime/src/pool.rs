//! A persistent worker pool: long-lived threads fed by a channel work
//! queue, with the same determinism contract as the scoped primitives.
//!
//! The scoped [`parallel_map`](crate::parallel_map) spawns and joins its
//! workers on every call. That is cheap relative to training a router, but
//! it dominates when the mapped work is small — the serving layer routes
//! micro-batches of a handful of questions, and per-call thread spawns
//! would be most of the latency. [`WorkerPool`] keeps its threads alive
//! across calls: submitting a job is one channel send instead of one
//! `thread::spawn`.
//!
//! Determinism is preserved exactly as in the scoped path: work is
//! partitioned purely by chunk index, chunks are claimed dynamically off an
//! atomic counter, and results are reassembled in chunk order — the output
//! of [`WorkerPool::map_chunks`] never depends on the pool size, the
//! effective thread count, or scheduling order.
//!
//! # Shutdown
//!
//! Dropping the pool is graceful: the job channel is closed, workers drain
//! every job already queued, then exit, and `Drop` joins them. Jobs
//! submitted with [`WorkerPool::execute`] before the drop therefore always
//! run; see the shutdown tests in `tests/pool.rs`.
//!
//! # Panics
//!
//! A panic inside a mapped closure does not kill the worker thread: the
//! payload is captured and re-thrown on the *calling* thread once the batch
//! settles, so `pool.map(...)` panics exactly like the serial
//! `items.iter().map(...)` would. Panics in fire-and-forget
//! [`execute`](WorkerPool::execute) jobs are contained and counted
//! ([`WorkerPool::panic_count`]).

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, OnceLock};
use std::thread::JoinHandle;

use crate::ordered::{lock_rank, OrderedGuard, OrderedMutex};
use crate::{thread_count, with_thread_count, MIN_PARALLEL_ITEMS};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads.
///
/// ```
/// use dbcopilot_runtime::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = dbcopilot_runtime::with_thread_count(4, || {
///     pool.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x)
/// });
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// // drop(pool) closes the queue, drains pending jobs, joins the threads
/// ```
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    panics: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Spawn a pool of `size` worker threads (`size` is clamped to ≥ 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(OrderedMutex::new("receiver", lock_rank::RECEIVER, receiver));
        let panics = Arc::new(AtomicUsize::new(0));
        let handles = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("dbc-pool-{i}"))
                    .spawn(move || worker_loop(&receiver, &panics))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { sender: Some(sender), handles, panics }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Panics contained so far in fire-and-forget [`execute`] jobs.
    ///
    /// Map-style calls re-throw on the caller instead and are not counted
    /// here.
    ///
    /// [`execute`]: WorkerPool::execute
    pub fn panic_count(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }

    /// Submit a fire-and-forget job to the queue.
    ///
    /// The job runs on some worker thread, after all jobs queued before it
    /// have been claimed. A panic inside the job is contained (the worker
    /// survives) and counted in [`WorkerPool::panic_count`].
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender alive until drop")
            .send(Box::new(job))
            .expect("pool workers alive until drop");
    }

    /// Pool-backed equivalent of [`crate::parallel_map`]: map `f` over
    /// `items`, results **in item order** regardless of pool size or thread
    /// count. `f` receives `(index, &item)`.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.map_chunks(items, 1, |i, chunk| f(i, &chunk[0]))
    }

    /// Pool-backed equivalent of [`crate::parallel_map_chunks`]: map `f`
    /// over fixed-size chunks, results **in chunk order**.
    ///
    /// Concurrency is `min(thread_count(), pool size + 1, chunks)` — the
    /// calling thread always participates, so progress never depends on
    /// pool workers being free (a call from inside another map, or while
    /// the queue is busy, degrades to running inline rather than waiting).
    /// The output is bit-for-bit identical to the serial map at any
    /// concurrency.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`, or re-throws the first panic raised by
    /// an invocation of `f` (after all in-flight chunks settle).
    pub fn map_chunks<T, U, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n_chunks = items.len().div_ceil(chunk_size);
        // The caller counts as one worker: helpers = extra pool jobs.
        let helpers = thread_count().min(n_chunks).saturating_sub(1).min(self.size());
        if helpers == 0 || items.len() < MIN_PARALLEL_ITEMS {
            return items.chunks(chunk_size).enumerate().map(|(i, c)| f(i, c)).collect();
        }

        let shared = MapShared {
            next: AtomicUsize::new(0),
            slots: OrderedMutex::new(
                "slots",
                lock_rank::SLOTS,
                (0..n_chunks).map(|_| None).collect(),
            ),
            panic: OrderedMutex::new("panic", lock_rank::PANIC, None),
            pending: OrderedMutex::new("pending", lock_rank::PENDING, helpers),
            settled: Condvar::new(),
        };
        let run = |shared: &MapShared<U>| {
            with_thread_count(1, || loop {
                let c = shared.next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(items.len());
                match catch_unwind(AssertUnwindSafe(|| f(c, &items[lo..hi]))) {
                    Ok(u) => shared.slots.lock()[c] = Some(u),
                    Err(payload) => {
                        let mut slot = shared.panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        // Park the claim counter past the end so remaining
                        // workers stop claiming chunks.
                        shared.next.store(n_chunks, Ordering::Relaxed);
                        break;
                    }
                }
            })
        };

        for _ in 0..helpers {
            // SAFETY: the job borrows `shared`, `items` and `f` from this
            // stack frame. The frame cannot unwind or return before every
            // submitted job has finished: the only exits below are after
            // the `pending == 0` condvar wait, and `pending` is decremented
            // by each job strictly after its last use of the borrows (the
            // closure in `guarded` runs `run` to completion first, panics
            // included — `run` catches them).
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(|| guarded(&shared, run));
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(job)
            };
            self.sender
                .as_ref()
                .expect("pool sender alive until drop")
                .send(job)
                .expect("pool workers alive until drop");
        }
        // The caller works through chunks too, then waits for the helpers.
        run(&shared);
        let mut pending = shared.pending.lock();
        while *pending > 0 {
            pending = OrderedGuard::wait(&shared.settled, pending);
        }
        drop(pending);

        if let Some(payload) = shared.panic.lock().take() {
            resume_unwind(payload);
        }
        let slots = std::mem::take(&mut *shared.slots.lock());
        slots.into_iter().map(|s| s.expect("all chunks computed when no worker panicked")).collect()
    }
}

/// A cloneable, sendable submission handle to a [`WorkerPool`]'s job
/// queue, for producer threads that cannot borrow the pool itself (e.g. an
/// accept loop running while another thread owns the pool).
///
/// A live handle keeps the job channel open: drop every handle before (or
/// while) dropping the pool, or the pool's drain-on-drop will wait for the
/// handles to go away. [`execute`](PoolHandle::execute) reports whether the
/// pool was still accepting work.
#[derive(Clone)]
pub struct PoolHandle {
    sender: Sender<Job>,
}

impl PoolHandle {
    /// Submit a fire-and-forget job; `false` if the pool has shut down.
    ///
    /// Panics inside the job are contained and counted exactly as in
    /// [`WorkerPool::execute`].
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        self.sender.send(Box::new(job)).is_ok()
    }
}

impl WorkerPool {
    /// A detached submission handle to this pool's queue.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle { sender: self.sender.as_ref().expect("pool sender alive until drop").clone() }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain the remaining queue, then
        // exit on the disconnect error — graceful shutdown by construction.
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Shared state of one `map_chunks` batch.
struct MapShared<U> {
    /// Next unclaimed chunk index (dynamic scheduling).
    next: AtomicUsize,
    /// One result slot per chunk, filled out of order, read in order.
    slots: OrderedMutex<Vec<Option<U>>>,
    /// First panic payload raised by the mapped closure, if any.
    panic: OrderedMutex<Option<Box<dyn Any + Send>>>,
    /// Helper jobs still running; the caller waits for this to hit zero.
    pending: OrderedMutex<usize>,
    settled: Condvar,
}

/// Run `body`, then signal completion — even though `body` itself never
/// unwinds (it catches closure panics), keeping the decrement in one place
/// makes the safety argument for the lifetime erasure local.
fn guarded<U>(shared: &MapShared<U>, body: impl Fn(&MapShared<U>)) {
    body(shared);
    let mut pending = shared.pending.lock();
    *pending -= 1;
    if *pending == 0 {
        shared.settled.notify_all();
    }
}

fn worker_loop(receiver: &OrderedMutex<Receiver<Job>>, panics: &AtomicUsize) {
    loop {
        // Hold the lock only while receiving, never while running a job.
        let job = match receiver.lock().recv() {
            Ok(job) => job,
            // Queue closed *and* drained: graceful exit.
            Err(_) => return,
        };
        // Pin the thread count for *every* job, not just map helpers: an
        // `execute` job that called a pooled map at thread_count > 1 would
        // enqueue helper jobs behind the very worker it occupies and then
        // block waiting for them — with the pin it runs the map inline.
        let contained = with_thread_count(1, || catch_unwind(AssertUnwindSafe(job)));
        if contained.is_err() {
            panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The process-wide shared pool used by [`pooled_map`] /
/// [`pooled_map_chunks`]. Created on first use, sized like the default
/// thread count (`DBC_THREADS` or hardware parallelism), alive for the
/// process lifetime.
pub fn global_pool() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(crate::env_thread_count()))
}

/// [`crate::parallel_map`] on the process-wide persistent pool: identical
/// output, no per-call thread spawns.
pub fn pooled_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    global_pool().map(items, f)
}

/// [`crate::parallel_map_chunks`] on the process-wide persistent pool:
/// identical output, no per-call thread spawns.
pub fn pooled_map_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    global_pool().map_chunks(items, chunk_size, f)
}
