//! LLM cost accounting (the "$" column of Table 6).
//!
//! Uses `gpt-3.5-turbo-0125` pricing — the model the paper calls — with the
//! standard ~4-characters-per-token approximation.

/// Approximate token count of a text.
pub fn estimate_tokens(text: &str) -> usize {
    text.len() / 4 + 1
}

/// Per-token pricing in dollars.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// $ per input token.
    pub input: f64,
    /// $ per output token.
    pub output: f64,
}

impl CostModel {
    /// gpt-3.5-turbo-0125: $0.50 / 1M input, $1.50 / 1M output.
    pub fn gpt35_turbo() -> Self {
        CostModel { input: 0.5e-6, output: 1.5e-6 }
    }

    pub fn query_cost(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        input_tokens as f64 * self.input + output_tokens as f64 * self.output
    }
}

/// Accumulates cost over a test set.
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    pub input_tokens: usize,
    pub output_tokens: usize,
    pub calls: usize,
}

impl CostLedger {
    pub fn record(&mut self, input_tokens: usize, output_tokens: usize) {
        self.input_tokens += input_tokens;
        self.output_tokens += output_tokens;
        self.calls += 1;
    }

    pub fn total_cost(&self, model: &CostModel) -> f64 {
        model.query_cost(self.input_tokens, self.output_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_scale_with_length() {
        assert!(
            estimate_tokens("SELECT * FROM t")
                < estimate_tokens("SELECT a, b, c FROM t JOIN u ON t.x = u.x")
        );
        assert_eq!(estimate_tokens(""), 1);
    }

    #[test]
    fn cost_arithmetic() {
        let m = CostModel::gpt35_turbo();
        let c = m.query_cost(1_000_000, 0);
        assert!((c - 0.5).abs() < 1e-9);
        let c = m.query_cost(0, 1_000_000);
        assert!((c - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = CostLedger::default();
        l.record(100, 10);
        l.record(200, 20);
        assert_eq!(l.calls, 2);
        assert_eq!(l.input_tokens, 300);
        assert!(l.total_cost(&CostModel::gpt35_turbo()) > 0.0);
    }
}
