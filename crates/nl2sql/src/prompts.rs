//! Prompt construction for LLM-based SQL generation (paper §3.6,
//! Figures 5–6).

use dbcopilot_graph::QuerySchema;
use dbcopilot_sqlengine::Collection;
use serde::{Deserialize, Serialize};

/// The three candidate-schema strategies of §3.6 (plus the oracle variants
/// of Table 6's upper-bound rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PromptStrategy {
    /// Highest-probability schema only (Figure 5).
    BestSchema,
    /// Concatenate the top-k candidate schemata in one prompt.
    MultipleSchema,
    /// Two-turn chain of thought: select a schema, then generate (Figure 6).
    MultipleSchemaCot,
    /// Execution-feedback repair: the failed SQL and its engine error are
    /// shown so the model can correct its query.
    Repair,
}

/// A schema as it appears in a prompt: table names with their columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptSchema {
    pub database: String,
    /// `(table, columns)` in prompt order.
    pub tables: Vec<(String, Vec<String>)>,
}

impl PromptSchema {
    /// Resolve a query schema against the collection; unknown tables are
    /// skipped (they simply do not appear in the prompt).
    pub fn resolve(collection: &Collection, schema: &QuerySchema) -> Self {
        let mut tables = Vec::new();
        if let Some(db) = collection.database(&schema.database) {
            for t in &schema.tables {
                if let Some(ts) = db.table(t) {
                    tables.push((
                        ts.name.clone(),
                        ts.columns.iter().map(|c| c.name.clone()).collect(),
                    ));
                }
            }
        }
        PromptSchema { database: schema.database.clone(), tables }
    }

    /// Restrict every table to the given columns (oracle "Gold T. & C.").
    pub fn with_columns_filtered(mut self, keep: &[String]) -> Self {
        for (_, cols) in &mut self.tables {
            cols.retain(|c| keep.iter().any(|k| k.eq_ignore_ascii_case(c)));
        }
        self
    }

    /// Total number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Drop a table (by name) or a column (everywhere) from the schema —
    /// how a repair turn avoids an identifier the engine rejected.
    pub fn without_identifier(&self, ident: &str) -> Self {
        let mut out = self.clone();
        out.tables.retain(|(t, _)| !t.eq_ignore_ascii_case(ident));
        for (_, cols) in &mut out.tables {
            cols.retain(|c| !c.eq_ignore_ascii_case(ident));
        }
        out
    }

    fn render_tables(&self, out: &mut String) {
        for (t, cols) in &self.tables {
            out.push_str(&format!("# {}({})\n", t, cols.join(", ")));
        }
    }
}

/// A rendered prompt plus the schemata it contains (the mock LLM consumes
/// the structured form; the text is used for token-cost accounting and
/// display).
#[derive(Debug, Clone)]
pub struct Prompt {
    pub text: String,
    pub schemas: Vec<PromptSchema>,
    pub strategy: PromptStrategy,
}

/// Figure 5: the basic single-schema prompt.
pub fn basic_prompt(schema: &PromptSchema, question: &str) -> Prompt {
    let mut text = String::from(
        "### Complete sqlite SQL query only and with no explanation\n\
         ### Sqlite SQL tables, with their properties:\n#\n",
    );
    schema.render_tables(&mut text);
    text.push_str(&format!("#\n### {question}\nSELECT"));
    Prompt { text, schemas: vec![schema.clone()], strategy: PromptStrategy::BestSchema }
}

/// Multiple-schema prompting: same format, schemata concatenated.
pub fn multiple_prompt(schemas: &[PromptSchema], question: &str) -> Prompt {
    let mut text = String::from(
        "### Complete sqlite SQL query only and with no explanation\n\
         ### Sqlite SQL tables, with their properties:\n#\n",
    );
    for s in schemas {
        s.render_tables(&mut text);
    }
    text.push_str(&format!("#\n### {question}\nSELECT"));
    Prompt { text, schemas: schemas.to_vec(), strategy: PromptStrategy::MultipleSchema }
}

/// Execution-feedback repair prompt: the basic prompt plus the failed SQL
/// and the engine error it produced, asking the model to fix its query
/// (the recovery turn of agentic NL-DB loops).
pub fn repair_prompt(
    schema: &PromptSchema,
    question: &str,
    failed_sql: &str,
    error: &str,
) -> Prompt {
    let mut text = String::from(
        "### Complete sqlite SQL query only and with no explanation\n\
         ### Sqlite SQL tables, with their properties:\n#\n",
    );
    schema.render_tables(&mut text);
    text.push_str(&format!(
        "#\n### {question}\n\
         ### A previous attempt failed; fix the query.\n\
         # Failed SQL: {failed_sql}\n\
         # Error: {error}\nSELECT",
    ));
    Prompt { text, schemas: vec![schema.clone()], strategy: PromptStrategy::Repair }
}

/// Figure 6 turn 1: the chain-of-thought schema-selection prompt.
pub fn cot_selection_prompt(schemas: &[PromptSchema], question: &str) -> Prompt {
    let mut text = String::from(
        "Based on the provided natural language question, find the database that can \
         best answer this question from the list schemata below. Only output the \
         corresponding database schema identifier in the [id] format, without any \
         additional information.\n\n",
    );
    text.push_str(&format!("Question: {question}\n"));
    text.push_str("Sqlite SQL databases, with their tables and properties:\n");
    for (i, s) in schemas.iter().enumerate() {
        text.push_str(&format!("[{}] {}\n", i + 1, s.database));
        for (t, cols) in &s.tables {
            text.push_str(&format!("    {}({})\n", t, cols.join(", ")));
        }
    }
    Prompt { text, schemas: schemas.to_vec(), strategy: PromptStrategy::MultipleSchemaCot }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcopilot_sqlengine::{DataType, DatabaseSchema, TableSchema};

    fn collection() -> Collection {
        let mut c = Collection::new();
        let mut db = DatabaseSchema::new("world");
        db.add_table(
            TableSchema::new("country")
                .column("code", DataType::Text)
                .column("name", DataType::Text)
                .column("continent", DataType::Text),
        );
        db.add_table(
            TableSchema::new("countrylanguage")
                .column("countrycode", DataType::Text)
                .column("language", DataType::Text),
        );
        c.add_database(db);
        c
    }

    #[test]
    fn resolve_skips_unknown_tables() {
        let c = collection();
        let s = PromptSchema::resolve(
            &c,
            &QuerySchema::new("world", vec!["country".into(), "ghost".into()]),
        );
        assert_eq!(s.num_tables(), 1);
    }

    #[test]
    fn basic_prompt_matches_figure5_format() {
        let c = collection();
        let s = PromptSchema::resolve(&c, &QuerySchema::new("world", vec!["country".into()]));
        let p = basic_prompt(&s, "Which language is the most popular on the Asian continent?");
        assert!(p.text.starts_with("### Complete sqlite SQL query"));
        assert!(p.text.contains("# country(code, name, continent)"));
        assert!(p.text.ends_with("SELECT"));
    }

    #[test]
    fn multiple_prompt_concatenates() {
        let c = collection();
        let s1 = PromptSchema::resolve(&c, &QuerySchema::new("world", vec!["country".into()]));
        let s2 =
            PromptSchema::resolve(&c, &QuerySchema::new("world", vec!["countrylanguage".into()]));
        let p = multiple_prompt(&[s1, s2], "q");
        assert!(p.text.contains("country("));
        assert!(p.text.contains("countrylanguage("));
    }

    #[test]
    fn cot_prompt_numbers_schemas() {
        let c = collection();
        let s1 = PromptSchema::resolve(&c, &QuerySchema::new("world", vec!["country".into()]));
        let p = cot_selection_prompt(&[s1.clone(), s1], "q");
        assert!(p.text.contains("[1] world"));
        assert!(p.text.contains("[2] world"));
    }

    #[test]
    fn repair_prompt_includes_failure_context() {
        let c = collection();
        let s = PromptSchema::resolve(&c, &QuerySchema::new("world", vec!["country".into()]));
        let p = repair_prompt(&s, "How many countries?", "SELECT COUNT(*) FRO", "parse error");
        assert_eq!(p.strategy, PromptStrategy::Repair);
        assert!(p.text.contains("Failed SQL: SELECT COUNT(*) FRO"));
        assert!(p.text.contains("Error: parse error"));
        assert!(p.text.ends_with("SELECT"));
    }

    #[test]
    fn without_identifier_drops_tables_and_columns() {
        let c = collection();
        let s = PromptSchema::resolve(
            &c,
            &QuerySchema::new("world", vec!["country".into(), "countrylanguage".into()]),
        );
        let no_table = s.without_identifier("countrylanguage");
        assert_eq!(no_table.num_tables(), 1);
        let no_col = s.without_identifier("continent");
        assert!(no_col.tables.iter().all(|(_, cols)| !cols.iter().any(|c| c == "continent")));
        assert_eq!(no_col.num_tables(), 2);
    }

    #[test]
    fn column_filter_keeps_gold_columns() {
        let c = collection();
        let s = PromptSchema::resolve(&c, &QuerySchema::new("world", vec!["country".into()]))
            .with_columns_filtered(&["name".to_string(), "code".to_string()]);
        assert_eq!(s.tables[0].1, vec!["code".to_string(), "name".to_string()]);
    }
}
