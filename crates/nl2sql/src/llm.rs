//! CopilotLM — the offline stand-in for `gpt-3.5-turbo` SQL generation.
//!
//! The paper's EX numbers are driven by two mechanisms: (a) whether the
//! needed tables/columns are present in the prompt, and (b) LLM confusion
//! that grows with extraneous schema (the oracle test, Table 6, shows EX
//! falling monotonically as prompts widen from gold columns to five
//! databases). CopilotLM reproduces both with an explicit capability model:
//!
//! * a question-intent parser that inverts the workload's question grammar
//!   (what a competent LLM does with in-distribution questions);
//! * grounding of mentions onto the *prompt* schema only, using lexicon
//!   synonym knowledge (the LLM's world knowledge);
//! * a seeded noise model: synonym-resolution failures, distraction that
//!   grows with the number of irrelevant prompt tables, and a base SQL
//!   error rate.
//!
//! All randomness is a pure function of `(seed, question)` so experiments
//! are bit-reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dbcopilot_sqlengine::{EngineError, Value};
use dbcopilot_synth::lexicon::{display_form, singularize, Lexicon};
use dbcopilot_synth::templates::{render_sql, AggKind, CmpOp, QuestionSpec, TemplateKind};

use crate::prompts::{Prompt, PromptSchema};

/// Noise/capability knobs. Builder-style so adding a knob is not a
/// breaking change:
///
/// ```
/// use dbcopilot_nl2sql::LlmConfig;
/// let cfg = LlmConfig::new().seed(7).base_error(0.0).malformed_sql(0.0);
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LlmConfig {
    pub seed: u64,
    /// Per-irrelevant-table probability of a table mix-up.
    pub distraction_per_table: f64,
    /// Probability a synonym mention resolves correctly.
    pub synonym_resolution: f64,
    /// Base probability of a generic SQL slip (wrong direction, wrong
    /// aggregate) even with a perfect schema.
    pub base_error: f64,
    /// Probability the emitted SQL is syntactically broken (truncated
    /// mid-query) — the slip real LLMs make that only *execution* catches,
    /// and that an execution-feedback repair turn recovers.
    pub malformed_sql: f64,
}

impl Default for LlmConfig {
    fn default() -> Self {
        LlmConfig {
            seed: 0x6057,
            distraction_per_table: 0.01,
            synonym_resolution: 0.93,
            base_error: 0.08,
            malformed_sql: 0.03,
        }
    }
}

impl LlmConfig {
    pub fn new() -> Self {
        Self::default()
    }

    /// A noiseless model: every knob off, grounding always succeeds when
    /// the schema allows it. The oracle upper bound for tests.
    pub fn perfect() -> Self {
        Self::new()
            .distraction_per_table(0.0)
            .synonym_resolution(1.0)
            .base_error(0.0)
            .malformed_sql(0.0)
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn distraction_per_table(mut self, p: f64) -> Self {
        self.distraction_per_table = p;
        self
    }

    pub fn synonym_resolution(mut self, p: f64) -> Self {
        self.synonym_resolution = p;
        self
    }

    pub fn base_error(mut self, p: f64) -> Self {
        self.base_error = p;
        self
    }

    pub fn malformed_sql(mut self, p: f64) -> Self {
        self.malformed_sql = p;
        self
    }
}

/// One LLM call result.
#[derive(Debug, Clone)]
pub struct LlmOutput {
    /// Generated SQL; `None` when the model could not ground the question.
    pub sql: Option<String>,
    /// Approximate completion tokens (for the cost model).
    pub output_tokens: usize,
}

/// The mock LLM.
pub struct CopilotLM {
    lex: Lexicon,
    pub cfg: LlmConfig,
}

impl Default for CopilotLM {
    fn default() -> Self {
        Self::new(LlmConfig::default())
    }
}

impl CopilotLM {
    pub fn new(cfg: LlmConfig) -> Self {
        CopilotLM { lex: Lexicon::new(), cfg }
    }

    fn rng_for(&self, question: &str) -> SmallRng {
        SmallRng::seed_from_u64(dbcopilot_retrieval::text::fnv1a(question) ^ self.cfg.seed)
    }

    /// Generate SQL for a question given a rendered prompt.
    pub fn generate_sql(&self, prompt: &Prompt, question: &str) -> LlmOutput {
        let mut rng = self.rng_for(question);
        self.generate_with_rng(&prompt.schemas, question, &mut rng)
    }

    /// The repair turn: regenerate after `failed_sql` produced `error` at
    /// execution, on repair round `round` (1-based). Two mechanisms model
    /// what a real LLM does with execution feedback:
    ///
    /// * the noise stream is re-derived from the failed attempt *and the
    ///   round*, so a careless slip (truncation, distraction, a corrupt
    ///   literal) rarely repeats once called out — and a repeated
    ///   identical failure still gets a fresh roll on the next round;
    /// * any identifier the engine rejected by name (unknown/ambiguous
    ///   table or column) is dropped from the schema before re-grounding
    ///   (callers accumulate prior rejections by passing an
    ///   already-pruned prompt).
    ///
    /// Deterministic: a pure function of `(seed, question, failed_sql,
    /// error, round)`.
    pub fn generate_sql_with_feedback(
        &self,
        prompt: &Prompt,
        question: &str,
        failed_sql: &str,
        error: &EngineError,
        round: usize,
    ) -> LlmOutput {
        use dbcopilot_retrieval::text::fnv1a;
        let mut rng = SmallRng::seed_from_u64(
            fnv1a(question)
                ^ fnv1a(failed_sql).rotate_left(13)
                ^ fnv1a(&error.to_string()).rotate_left(29)
                ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.cfg.seed,
        );
        match error.offending_identifier() {
            Some(ident) => {
                let schemas: Vec<PromptSchema> =
                    prompt.schemas.iter().map(|s| s.without_identifier(ident)).collect();
                self.generate_with_rng(&schemas, question, &mut rng)
            }
            None => self.generate_with_rng(&prompt.schemas, question, &mut rng),
        }
    }

    fn generate_with_rng(
        &self,
        schemas: &[PromptSchema],
        question: &str,
        rng: &mut SmallRng,
    ) -> LlmOutput {
        let Some(intent) = parse_intent(question) else {
            return LlmOutput { sql: None, output_tokens: 2 };
        };
        let Some(mut spec) = self.ground(&intent, schemas, rng) else {
            return LlmOutput { sql: None, output_tokens: 2 };
        };

        // Distraction: each irrelevant prompt table independently risks a
        // mix-up; on failure one role is replaced with a random table.
        let total_tables: usize = schemas.iter().map(PromptSchema::num_tables).sum();
        let extra = total_tables.saturating_sub(spec.tables.len());
        let p_distract = 1.0 - (1.0 - self.cfg.distraction_per_table).powi(extra as i32);
        if extra > 0 && rng.gen_bool(p_distract.clamp(0.0, 1.0)) {
            let pool: Vec<&str> = schemas
                .iter()
                .flat_map(|s| s.tables.iter().map(|(t, _)| t.as_str()))
                .filter(|t| !spec.tables.iter().any(|x| x == t))
                .collect();
            if !pool.is_empty() {
                let victim = rng.gen_range(0..spec.tables.len());
                spec.tables[victim] = pool[rng.gen_range(0..pool.len())].to_string();
            }
        }

        // Base SQL slips.
        if rng.gen_bool(self.cfg.base_error) {
            corrupt_spec(&mut spec, rng);
        }

        let mut sql = render_sql(&spec);
        // Syntax slips: truncate mid-query. Only execution catches these,
        // which is exactly what the repair loop feeds back.
        if self.cfg.malformed_sql > 0.0 && rng.gen_bool(self.cfg.malformed_sql.clamp(0.0, 1.0)) {
            truncate_malformed(&mut sql, rng);
        }
        let tokens = sql.len() / 4 + 1;
        LlmOutput { sql: Some(sql), output_tokens: tokens }
    }

    /// Chain-of-thought turn 1: pick the best candidate schema index.
    pub fn select_schema(&self, schemas: &[PromptSchema], question: &str) -> (usize, usize) {
        if schemas.is_empty() {
            return (0, 2);
        }
        let mut rng = self.rng_for(question);
        let q_tokens = dbcopilot_retrieval::text::tokenize(question);
        let mut canon_tokens: Vec<String> = Vec::new();
        for t in &q_tokens {
            if let Some(c) =
                self.lex.canonical_of(t).or_else(|| self.lex.canonical_of(&singularize(t)))
            {
                canon_tokens.extend(c.split('_').map(str::to_string));
            }
            canon_tokens.push(t.clone());
        }
        let mut best = (0usize, -1.0f64);
        for (i, s) in schemas.iter().enumerate() {
            let mut text = String::new();
            for (t, cols) in &s.tables {
                text.push_str(t);
                text.push(' ');
                text.push_str(&cols.join(" "));
                text.push(' ');
            }
            let schema_tokens = dbcopilot_retrieval::text::tokenize(&text);
            let hits =
                canon_tokens.iter().filter(|qt| schema_tokens.iter().any(|st| st == *qt)).count();
            let score = hits as f64 / (schema_tokens.len() as f64).sqrt().max(1.0);
            if score > best.1 {
                best = (i, score);
            }
        }
        // Selection noise grows with the candidate count.
        let p_flip = 1.0 - (1.0 - self.cfg.distraction_per_table).powi(schemas.len() as i32);
        let pick = if schemas.len() > 1 && rng.gen_bool(p_flip.clamp(0.0, 1.0)) {
            (best.0 + 1 + rng.gen_range(0..schemas.len() - 1)) % schemas.len()
        } else {
            best.0
        };
        (pick, 4)
    }

    // ------------------------------------------------------------------
    // grounding
    // ------------------------------------------------------------------

    /// Ground a parsed intent on the prompt schemata: pick the first
    /// database (in candidate order) where every role resolves.
    fn ground(
        &self,
        intent: &Intent,
        schemas: &[PromptSchema],
        rng: &mut SmallRng,
    ) -> Option<QuestionSpec> {
        // Group prompt tables by database, preserving candidate order.
        type DbTables<'a> = Vec<(&'a str, &'a [String])>;
        let mut dbs: Vec<(&str, DbTables)> = Vec::new();
        for s in schemas {
            let entry = match dbs.iter_mut().find(|(d, _)| *d == s.database.as_str()) {
                Some(e) => e,
                None => {
                    dbs.push((s.database.as_str(), Vec::new()));
                    dbs.last_mut().unwrap()
                }
            };
            for (t, cols) in &s.tables {
                if !entry.1.iter().any(|(name, _)| *name == t.as_str()) {
                    entry.1.push((t.as_str(), cols.as_slice()));
                }
            }
        }
        for (db, tables) in &dbs {
            if let Some(spec) = self.ground_in_db(intent, db, tables, rng) {
                return Some(spec);
            }
        }
        None
    }

    fn resolve_table(
        &self,
        phrase: &str,
        tables: &[(&str, &[String])],
        rng: &mut SmallRng,
    ) -> Option<usize> {
        let p = phrase.trim().to_lowercase();
        let candidates = [p.clone(), singularize(&p)];
        // Exact table-name matches always win; the `_name` suffix rule (for
        // prefixed mart tables like `banking_account`) is a fallback so that
        // junction names such as `city_in_state` never shadow `state`.
        let exact_then_suffix = |name: &str| {
            tables
                .iter()
                .position(|(t, _)| *t == name)
                .or_else(|| tables.iter().position(|(t, _)| t.ends_with(&format!("_{name}"))))
        };
        // pass 1 — aligned mention: the phrase literally names the table
        // (no world knowledge needed, hence no synonym-resolution noise)
        for cand in &candidates {
            let underscored = cand.replace(' ', "_");
            if let Some(i) = exact_then_suffix(&underscored) {
                return Some(i);
            }
        }
        // pass 2 — synonym mention: canonicalize both the phrase and the
        // table names through world knowledge, with resolution noise
        for cand in &candidates {
            if let Some(canon) = self.lex.canonical_of(cand) {
                let synonym_used = *cand != display_form(canon);
                if synonym_used && !rng.gen_bool(self.cfg.synonym_resolution) {
                    break; // resolution failure → fuzzy fallback below
                }
                if let Some(i) = exact_then_suffix(canon) {
                    return Some(i);
                }
                // tables may themselves be named with synonyms
                // ("vocalist" for singer): canonicalize table names too
                if let Some(i) = tables.iter().position(|(t, _)| {
                    self.lex.canonical_of(&display_form(t)).is_some_and(|tc| tc == canon)
                        || t.rsplit_once('_').is_some_and(|(_, tail)| {
                            self.lex.canonical_of(&display_form(tail)).is_some_and(|tc| tc == canon)
                        })
                }) {
                    return Some(i);
                }
            }
        }
        // fuzzy: max word overlap
        let words: Vec<String> =
            dbcopilot_retrieval::text::tokenize(&singularize(&p)).into_iter().collect();
        let mut best = (None, 0usize);
        for (i, (t, _)) in tables.iter().enumerate() {
            let pieces = dbcopilot_retrieval::text::tokenize(t);
            let overlap = words.iter().filter(|w| pieces.contains(w)).count();
            if overlap > best.1 {
                best = (Some(i), overlap);
            }
        }
        best.0
    }

    fn resolve_attr(&self, phrase: &str, cols: &[String], rng: &mut SmallRng) -> Option<String> {
        let p = phrase.trim().to_lowercase();
        if let Some(canon) = self.lex.canonical_of(&p) {
            let synonym_used = p != display_form(canon);
            if !synonym_used || rng.gen_bool(self.cfg.synonym_resolution) {
                if let Some(c) = cols.iter().find(|c| c.eq_ignore_ascii_case(canon)) {
                    return Some(c.clone());
                }
            }
        }
        let underscored = p.replace(' ', "_");
        if let Some(c) = cols.iter().find(|c| c.eq_ignore_ascii_case(&underscored)) {
            return Some(c.clone());
        }
        // fuzzy: column contained in the phrase
        cols.iter().find(|c| !c.ends_with("_id") && p.contains(&display_form(c))).cloned()
    }

    /// Guess the filtered column when the question leaves it implicit
    /// (Spider-real analog): numeric comparisons pick a numeric-looking
    /// column, equality filters a categorical-looking one.
    fn guess_attr(&self, cols: &[String], numeric: bool) -> Option<String> {
        let is_num = |c: &String| self.lex.is_numeric(c);
        let is_cat = |c: &String| self.lex.is_categorical(c);
        let pick = cols.iter().filter(|c| !c.ends_with("_id") && *c != "name").find(|c| {
            if numeric {
                is_num(c)
            } else {
                is_cat(c)
            }
        });
        pick.cloned().or_else(|| cols.iter().find(|c| !c.ends_with("_id") && *c != "name").cloned())
    }

    fn ground_in_db(
        &self,
        intent: &Intent,
        db: &str,
        tables: &[(&str, &[String])],
        rng: &mut SmallRng,
    ) -> Option<QuestionSpec> {
        use TemplateKind::*;
        let mut spec = QuestionSpec {
            kind: intent.kind,
            database: db.to_string(),
            tables: Vec::new(),
            entities: Vec::new(),
            aligned: Vec::new(),
            attr: None,
            cmp: intent.cmp,
            agg: intent.agg,
            value: intent.value.clone(),
            k: intent.k,
            join_on: None,
            junction_on: None,
            highest: intent.highest,
        };
        let main = self.resolve_table(intent.entities.first()?, tables, rng)?;
        let (main_name, main_cols) = tables[main];
        match intent.kind {
            ListAttr | FilterCmp | FilterEq | CountAll | CountFilter | AggAttr | GroupCount
            | GroupHaving | TopK | MaxSubquery => {
                spec.tables = vec![main_name.to_string()];
                match &intent.attr {
                    Some(a) => {
                        spec.attr = Some(self.resolve_attr(a, main_cols, rng)?);
                    }
                    None => {
                        // implicit column (Spider-real)
                        if matches!(intent.kind, FilterCmp | CountFilter) {
                            spec.attr = Some(self.guess_attr(main_cols, true)?);
                        } else if intent.kind == FilterEq {
                            spec.attr = Some(self.guess_attr(main_cols, false)?);
                        } else if intent.kind != CountAll {
                            return None;
                        }
                    }
                }
                // sanity: filters need a `name` projection column
                if matches!(intent.kind, FilterCmp | FilterEq | TopK | MaxSubquery)
                    && !main_cols.iter().any(|c| c == "name")
                {
                    return None;
                }
            }
            JoinList | JoinFilter | CountJoin | InSubquery => {
                let other = self.resolve_table(intent.entities.get(1)?, tables, rng)?;
                if other == main {
                    return None;
                }
                let (other_name, other_cols) = tables[other];
                // the join column is the shared *_id column
                let shared = main_cols
                    .iter()
                    .find(|c| c.ends_with("_id") && other_cols.contains(c))?
                    .clone();
                spec.join_on = Some((shared.clone(), shared));
                spec.tables = vec![main_name.to_string(), other_name.to_string()];
                if intent.kind == JoinFilter {
                    match &intent.attr {
                        Some(a) => spec.attr = Some(self.resolve_attr(a, other_cols, rng)?),
                        None => {
                            spec.attr = Some(self.guess_attr(
                                other_cols,
                                !matches!(intent.value, Some(Value::Text(_))),
                            )?)
                        }
                    }
                }
                if matches!(intent.kind, CountJoin) && !other_cols.iter().any(|c| c == "name") {
                    return None;
                }
                if intent.kind == InSubquery && !main_cols.iter().any(|c| c == "name") {
                    return None;
                }
            }
            JunctionList => {
                // roles: entities = [Ea, Eb]; find the junction table
                let a = main;
                let b = self.resolve_table(intent.entities.get(1)?, tables, rng)?;
                if a == b {
                    return None;
                }
                let (a_name, a_cols) = tables[a];
                let (b_name, b_cols) = tables[b];
                let mut junction = None;
                for (j, (jt, jcols)) in tables.iter().enumerate() {
                    if j == a || j == b {
                        continue;
                    }
                    let a_link = jcols.iter().find(|c| c.ends_with("_id") && a_cols.contains(c));
                    let b_link = jcols.iter().find(|c| c.ends_with("_id") && b_cols.contains(c));
                    if let (Some(al), Some(bl)) = (a_link, b_link) {
                        if al != bl {
                            junction = Some((jt.to_string(), al.clone(), bl.clone()));
                            break;
                        }
                    }
                }
                let (j_name, a_col, b_col) = junction?;
                spec.tables = vec![j_name, a_name.to_string(), b_name.to_string()];
                spec.junction_on = Some(((a_col.clone(), a_col), (b_col.clone(), b_col)));
                if !a_cols.iter().any(|c| c == "name") || !b_cols.iter().any(|c| c == "name") {
                    return None;
                }
            }
        }
        spec.entities = spec.tables.clone();
        spec.aligned = spec.tables.clone();
        Some(spec)
    }
}

/// A syntax slip: cut the tail of the query off inside a string literal,
/// keeping at least the leading `SELECT ` so the output still looks like
/// SQL. The dangling quote guarantees the result never lexes — a plain
/// tail cut can accidentally leave valid SQL (e.g. dropping exactly
/// ` LIMIT 1`), which would turn the "syntax slip" into a silent wrong
/// answer instead of the execution error the repair loop feeds on.
fn truncate_malformed(sql: &mut String, rng: &mut SmallRng) {
    let cut = rng.gen_range(3..9);
    let mut keep = sql.len().saturating_sub(cut).max("SELECT ".len());
    while keep < sql.len() && !sql.is_char_boundary(keep) {
        keep += 1;
    }
    sql.truncate(keep);
    // An odd quote count is an unterminated literal, which never lexes;
    // when the cut itself landed inside a literal the count is already odd.
    if sql.matches('\'').count().is_multiple_of(2) {
        sql.push('\'');
    }
}

/// A generic SQL slip: flip a direction or swap the aggregate.
fn corrupt_spec(spec: &mut QuestionSpec, rng: &mut SmallRng) {
    match spec.kind {
        TemplateKind::FilterCmp | TemplateKind::CountFilter => {
            spec.cmp = Some(match spec.cmp {
                Some(CmpOp::Gt) => CmpOp::Lt,
                _ => CmpOp::Gt,
            });
        }
        TemplateKind::AggAttr => {
            spec.agg = Some(match spec.agg {
                Some(AggKind::Avg) => AggKind::Sum,
                Some(AggKind::Sum) => AggKind::Avg,
                Some(AggKind::Min) => AggKind::Max,
                _ => AggKind::Min,
            });
        }
        TemplateKind::TopK => spec.highest = !spec.highest,
        TemplateKind::GroupHaving => spec.k = spec.k.map(|k| k + rng.gen_range(1..3)),
        _ => {
            // drop a join/extra table or flip nothing harmful; emulate a
            // wrong-literal slip for filters with values
            if let Some(Value::Int(v)) = spec.value {
                spec.value = Some(Value::Int(v + 1));
            } else if spec.tables.len() > 1 {
                spec.tables.swap(0, 1);
            }
        }
    }
}

// ---------------------------------------------------------------------
// intent parsing
// ---------------------------------------------------------------------

/// Parsed question intent (surface phrases, pre-grounding).
#[derive(Debug, Clone)]
pub struct Intent {
    pub kind: TemplateKind,
    pub entities: Vec<String>,
    pub attr: Option<String>,
    pub cmp: Option<CmpOp>,
    pub agg: Option<AggKind>,
    pub value: Option<Value>,
    pub k: Option<i64>,
    pub highest: bool,
}

fn blank_intent(kind: TemplateKind) -> Intent {
    Intent {
        kind,
        entities: Vec::new(),
        attr: None,
        cmp: None,
        agg: None,
        value: None,
        k: None,
        highest: false,
    }
}

/// Parse a literal from question text: quoted → Text, digits → Int/Float.
fn parse_value(raw: &str) -> Option<Value> {
    let s = raw.trim().trim_end_matches(['?', '.', '!']);
    if let Some(stripped) = s.strip_prefix('\'') {
        let inner = stripped.split('\'').next()?;
        return Some(Value::Text(inner.to_string()));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Some(Value::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Some(Value::Float(f));
    }
    None
}

fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    haystack.to_lowercase().find(&needle.to_lowercase())
}

/// Split `s` at the first case-insensitive occurrence of `sep`.
fn split_ci<'a>(s: &'a str, sep: &str) -> Option<(&'a str, &'a str)> {
    let at = find_ci(s, sep)?;
    Some((&s[..at], &s[at + sep.len()..]))
}

fn strip_prefix_ci<'a>(s: &'a str, prefix: &str) -> Option<&'a str> {
    if s.len() >= prefix.len() && s[..prefix.len()].eq_ignore_ascii_case(prefix) {
        Some(&s[prefix.len()..])
    } else {
        None
    }
}

fn trim_tail(s: &str) -> String {
    s.trim().trim_end_matches(['?', '.', '!']).trim().to_string()
}

/// Invert the question grammar of `dbcopilot_synth::templates`.
pub fn parse_intent(question: &str) -> Option<Intent> {
    let q = question.trim();

    // --- How many … ---
    if let Some(rest) = strip_prefix_ci(q, "How many ") {
        if let Some((child, tail)) = split_ci(rest, " does the ") {
            // CountJoin: "How many {Ec} does the {Ep} named {V} have?"
            let (parent, vtail) = split_ci(tail, " named ")?;
            let value = parse_value(vtail.trim_end_matches("have?").trim_end_matches("have"))?;
            let mut i = blank_intent(TemplateKind::CountJoin);
            i.entities = vec![child.trim().into(), parent.trim().into()];
            i.value = Some(value);
            return Some(i);
        }
        if find_ci(rest, " are there").is_some() {
            let (ent, _) = split_ci(rest, " are there")?;
            let mut i = blank_intent(TemplateKind::CountAll);
            i.entities = vec![ent.trim().into()];
            return Some(i);
        }
        for (sep, cmp, attr_known) in [
            (" have ", None, true),
            (" are above ", Some(CmpOp::Gt), false),
            (" are below ", Some(CmpOp::Lt), false),
        ] {
            if let Some((ent, tail)) = split_ci(rest, sep) {
                let mut i = blank_intent(TemplateKind::CountFilter);
                i.entities = vec![ent.trim().into()];
                if attr_known {
                    let (attr, vtail, c) = if let Some((a, v)) = split_ci(tail, " greater than ") {
                        (a, v, CmpOp::Gt)
                    } else if let Some((a, v)) = split_ci(tail, " less than ") {
                        (a, v, CmpOp::Lt)
                    } else {
                        continue;
                    };
                    i.attr = Some(attr.trim().into());
                    i.cmp = Some(c);
                    i.value = Some(parse_value(vtail)?);
                } else {
                    i.cmp = cmp;
                    i.value = Some(parse_value(tail)?);
                }
                return Some(i);
            }
        }
        return None;
    }

    // --- List the names of … ---
    if let Some(rest) = strip_prefix_ci(q, "List the names of ") {
        if let Some((ea, tail)) = split_ci(rest, " that are associated with the ") {
            let (eb, vtail) = split_ci(tail, " named ")?;
            let mut i = blank_intent(TemplateKind::JunctionList);
            i.entities = vec![ea.trim().into(), eb.trim().into()];
            i.value = Some(parse_value(vtail)?);
            return Some(i);
        }
        if let Some((ep, ec)) = split_ci(rest, " that have at least one ") {
            let mut i = blank_intent(TemplateKind::InSubquery);
            i.entities = vec![ep.trim().into(), trim_tail(ec)];
            return Some(i);
        }
        if let Some((ent, tail)) = split_ci(rest, " whose ") {
            let (attr, _) = split_ci(tail, " equals the maximum ")?;
            let mut i = blank_intent(TemplateKind::MaxSubquery);
            i.entities = vec![ent.trim().into()];
            i.attr = Some(attr.trim().into());
            return Some(i);
        }
        return None;
    }

    // --- List the {A} of all {E}. ---
    if let Some(rest) = strip_prefix_ci(q, "List the ") {
        let (attr, ent) = split_ci(rest, " of all ")?;
        let mut i = blank_intent(TemplateKind::ListAttr);
        i.attr = Some(attr.trim().into());
        i.entities = vec![trim_tail(ent)];
        return Some(i);
    }

    // --- What are the names of … ---
    if let Some(rest) = strip_prefix_ci(q, "What are the names of ") {
        if let Some((ec, tail)) = split_ci(rest, " whose ") {
            if let Some((ep, vtail)) = split_ci(tail, " has ") {
                // JoinFilter: "...whose {Ep} has {A} equal to {V}?"
                let (attr, v) = split_ci(vtail, " equal to ")?;
                let mut i = blank_intent(TemplateKind::JoinFilter);
                i.entities = vec![ec.trim().into(), ep.trim().into()];
                i.attr = Some(attr.trim().into());
                i.value = Some(parse_value(v)?);
                return Some(i);
            }
            if let Some((ep, vtail)) = split_ci(tail, " is associated with ") {
                let mut i = blank_intent(TemplateKind::JoinFilter);
                i.entities = vec![ec.trim().into(), ep.trim().into()];
                i.value = Some(parse_value(vtail)?);
                return Some(i);
            }
            // FilterCmp: "...whose {A} is greater|less than {V}?"
            let (attr, vtail, cmp) = if let Some((a, v)) = split_ci(tail, " is greater than ") {
                (a, v, CmpOp::Gt)
            } else if let Some((a, v)) = split_ci(tail, " is less than ") {
                (a, v, CmpOp::Lt)
            } else {
                return None;
            };
            let mut i = blank_intent(TemplateKind::FilterCmp);
            i.entities = vec![ec.trim().into()];
            i.attr = Some(attr.trim().into());
            i.cmp = Some(cmp);
            i.value = Some(parse_value(vtail)?);
            return Some(i);
        }
        for (sep, cmp) in [(" above ", CmpOp::Gt), (" below ", CmpOp::Lt)] {
            if let Some((ent, vtail)) = split_ci(rest, sep) {
                let mut i = blank_intent(TemplateKind::FilterCmp);
                i.entities = vec![ent.trim().into()];
                i.cmp = Some(cmp);
                i.value = Some(parse_value(vtail)?);
                return Some(i);
            }
        }
        return None;
    }

    // --- Which … ---
    if let Some(rest) = strip_prefix_ci(q, "Which ") {
        if let Some((attr, tail)) = split_ci(rest, " values have more than ") {
            let mut parts = tail.trim().splitn(2, ' ');
            let k: i64 = parts.next()?.parse().ok()?;
            let ent = trim_tail(parts.next()?);
            let mut i = blank_intent(TemplateKind::GroupHaving);
            i.attr = Some(attr.trim().into());
            i.k = Some(k);
            i.entities = vec![ent];
            return Some(i);
        }
        for (sep, highest) in [(" has the highest ", true), (" has the lowest ", false)] {
            if let Some((ent, tail)) = split_ci(rest, sep) {
                let (attr, _) = split_ci(tail, "?").unwrap_or((tail, ""));
                let mut i = blank_intent(TemplateKind::TopK);
                i.entities = vec![ent.trim().into()];
                i.attr = Some(attr.trim().into());
                i.highest = highest;
                return Some(i);
            }
        }
        if let Some((ent, tail)) = split_ci(rest, " have ") {
            let (attr, vtail) = split_ci(tail, " equal to ")?;
            let mut i = blank_intent(TemplateKind::FilterEq);
            i.entities = vec![ent.trim().into()];
            i.attr = Some(attr.trim().into());
            i.value = Some(parse_value(vtail)?);
            return Some(i);
        }
        if let Some((ent, vtail)) = split_ci(rest, " are associated with ") {
            let mut i = blank_intent(TemplateKind::FilterEq);
            i.entities = vec![ent.trim().into()];
            i.value = Some(parse_value(vtail)?);
            return Some(i);
        }
        return None;
    }

    // --- What is the {agg} {A} of all {E}? ---
    if let Some(rest) = strip_prefix_ci(q, "What is the ") {
        let mut parts = rest.splitn(2, ' ');
        let agg = AggKind::from_phrase(parts.next()?)?;
        let tail = parts.next()?;
        let (attr, ent) = split_ci(tail, " of all ")?;
        let mut i = blank_intent(TemplateKind::AggAttr);
        i.agg = Some(agg);
        i.attr = Some(attr.trim().into());
        i.entities = vec![trim_tail(ent)];
        return Some(i);
    }

    // --- For each {A}, how many {E} are there? ---
    if let Some(rest) = strip_prefix_ci(q, "For each ") {
        let (attr, tail) = split_ci(rest, ", how many ")?;
        let (ent, _) = split_ci(tail, " are there")?;
        let mut i = blank_intent(TemplateKind::GroupCount);
        i.attr = Some(attr.trim().into());
        i.entities = vec![ent.trim().into()];
        return Some(i);
    }

    // --- Show the name of each {Ec} together with the name of its {Ep}. ---
    if let Some(rest) = strip_prefix_ci(q, "Show the name of each ") {
        let (ec, ep) = split_ci(rest, " together with the name of its ")?;
        let mut i = blank_intent(TemplateKind::JoinList);
        i.entities = vec![ec.trim().into(), trim_tail(ep)];
        return Some(i);
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts::{basic_prompt, PromptSchema};

    fn singer_schema() -> PromptSchema {
        PromptSchema {
            database: "concert_singer".into(),
            tables: vec![(
                "singer".into(),
                vec!["singer_id".into(), "name".into(), "age".into(), "country".into()],
            )],
        }
    }

    fn perfect_llm() -> CopilotLM {
        CopilotLM::new(LlmConfig::perfect().seed(1))
    }

    #[test]
    fn parse_count_all() {
        let i = parse_intent("How many singers are there?").unwrap();
        assert_eq!(i.kind, TemplateKind::CountAll);
        assert_eq!(i.entities, vec!["singers"]);
    }

    #[test]
    fn parse_filter_cmp() {
        let i =
            parse_intent("What are the names of singers whose age is greater than 30?").unwrap();
        assert_eq!(i.kind, TemplateKind::FilterCmp);
        assert_eq!(i.attr.as_deref(), Some("age"));
        assert!(matches!(i.value, Some(Value::Int(30))));
    }

    #[test]
    fn parse_junction() {
        let i = parse_intent(
            "List the names of singers that are associated with the concert named 'Sol Reed'.",
        )
        .unwrap();
        assert_eq!(i.kind, TemplateKind::JunctionList);
        assert_eq!(i.entities, vec!["singers", "concert"]);
        assert!(matches!(i.value, Some(Value::Text(ref s)) if s == "Sol Reed"));
    }

    #[test]
    fn parse_agg() {
        let i = parse_intent("What is the average age of all singers?").unwrap();
        assert_eq!(i.kind, TemplateKind::AggAttr);
        assert_eq!(i.agg, Some(AggKind::Avg));
    }

    #[test]
    fn parse_group_having() {
        let i = parse_intent("Which country values have more than 3 singers?").unwrap();
        assert_eq!(i.kind, TemplateKind::GroupHaving);
        assert_eq!(i.k, Some(3));
    }

    #[test]
    fn generate_simple_count() {
        let llm = perfect_llm();
        let p = basic_prompt(&singer_schema(), "How many singers are there?");
        let out = llm.generate_sql(&p, "How many singers are there?");
        assert_eq!(out.sql.as_deref(), Some("SELECT COUNT(*) FROM singer"));
    }

    #[test]
    fn generate_resolves_synonyms() {
        let llm = perfect_llm();
        let q = "How many vocalists are there?";
        let p = basic_prompt(&singer_schema(), q);
        let out = llm.generate_sql(&p, q);
        assert_eq!(out.sql.as_deref(), Some("SELECT COUNT(*) FROM singer"));
    }

    #[test]
    fn generate_fails_without_needed_table() {
        let llm = perfect_llm();
        let wrong = PromptSchema {
            database: "world".into(),
            tables: vec![("country".into(), vec!["code".into(), "name".into()])],
        };
        let q = "How many vocalists are there?";
        let p = basic_prompt(&wrong, q);
        let out = llm.generate_sql(&p, q);
        // grounding falls back to fuzzy matching and misses → country or None
        if let Some(sql) = &out.sql {
            assert!(!sql.contains("singer"));
        }
    }

    #[test]
    fn filter_renders_where_clause() {
        let llm = perfect_llm();
        let q = "What are the names of singers whose age is greater than 30?";
        let p = basic_prompt(&singer_schema(), q);
        let out = llm.generate_sql(&p, q);
        assert_eq!(out.sql.as_deref(), Some("SELECT name FROM singer WHERE age > 30"));
    }

    #[test]
    fn distraction_grows_with_prompt_width() {
        let cfg = LlmConfig::new()
            .distraction_per_table(0.05)
            .base_error(0.0)
            .synonym_resolution(1.0)
            .malformed_sql(0.0);
        let llm = CopilotLM::new(cfg);
        // wide prompt: singer + 30 irrelevant tables
        let mut wide = singer_schema();
        for i in 0..30 {
            wide.tables.push((format!("junk_{i}"), vec!["id".into(), "name".into()]));
        }
        let mut narrow_ok = 0;
        let mut wide_ok = 0;
        for i in 0..60 {
            let q = format!("What are the names of singers whose age is greater than {i}?");
            let pn = basic_prompt(&singer_schema(), &q);
            let pw = basic_prompt(&wide, &q);
            if llm.generate_sql(&pn, &q).sql.map(|s| s.contains("FROM singer")).unwrap_or(false) {
                narrow_ok += 1;
            }
            if llm.generate_sql(&pw, &q).sql.map(|s| s.contains("FROM singer")).unwrap_or(false) {
                wide_ok += 1;
            }
        }
        assert!(wide_ok < narrow_ok, "narrow {narrow_ok} vs wide {wide_ok}");
        assert_eq!(narrow_ok, 60);
    }

    #[test]
    fn determinism_per_question() {
        let llm = CopilotLM::default();
        let q = "How many singers are there?";
        let p = basic_prompt(&singer_schema(), q);
        let a = llm.generate_sql(&p, q).sql;
        let b = llm.generate_sql(&p, q).sql;
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_slips_happen_and_repair_recovers_them() {
        // Force the syntax slip: every first-shot query is truncated.
        let llm = CopilotLM::new(LlmConfig::perfect().seed(1).malformed_sql(1.0));
        let q = "How many singers are there?";
        let p = basic_prompt(&singer_schema(), q);
        let broken = llm.generate_sql(&p, q).sql.unwrap();
        assert_ne!(broken, "SELECT COUNT(*) FROM singer");
        assert!(broken.starts_with("SELECT"), "{broken}");

        // A model that slips 60% of the time: feed the execution error
        // back; the re-derived noise stream re-rolls the slip, so repeated
        // repair turns converge on well-formed SQL.
        let llm = CopilotLM::new(LlmConfig::perfect().seed(1).malformed_sql(0.6));
        let mut recovered = 0;
        for i in 0..40 {
            let q = format!("What are the names of singers whose age is greater than {i}?");
            let p = basic_prompt(&singer_schema(), &q);
            let first = llm.generate_sql(&p, &q).sql.unwrap();
            let want = format!("SELECT name FROM singer WHERE age > {i}");
            if first == want {
                continue; // no slip on this question
            }
            let err = EngineError::Parse { message: "unexpected end of input".into() };
            let rp = crate::prompts::repair_prompt(&singer_schema(), &q, &first, "parse");
            let fixed = llm.generate_sql_with_feedback(&rp, &q, &first, &err, 1).sql.unwrap();
            if fixed == want {
                recovered += 1;
            }
        }
        assert!(recovered > 0, "repair must recover some malformed slips");
    }

    #[test]
    fn feedback_avoids_the_offending_identifier() {
        let llm = perfect_llm();
        // The prompt contains a decoy `singer_data` table the engine does
        // not actually have; a hallucinated reference errors at execution.
        let mut schema = singer_schema();
        schema.tables.insert(0, ("singer_data".into(), vec!["singer_id".into(), "payload".into()]));
        let q = "How many singers are there?";
        let p = basic_prompt(&schema, q);
        let err = EngineError::UnknownTable { table: "singer_data".into() };
        let out = llm
            .generate_sql_with_feedback(&p, q, "SELECT COUNT(*) FROM singer_data", &err, 1)
            .sql
            .unwrap();
        assert_eq!(out, "SELECT COUNT(*) FROM singer", "repair must avoid the rejected table");
    }

    #[test]
    fn feedback_is_deterministic() {
        let llm = CopilotLM::default();
        let q = "How many singers are there?";
        let p = basic_prompt(&singer_schema(), q);
        let err = EngineError::Eval { message: "boom".into() };
        let a = llm.generate_sql_with_feedback(&p, q, "SELECT COUNT(*", &err, 1).sql;
        let b = llm.generate_sql_with_feedback(&p, q, "SELECT COUNT(*", &err, 1).sql;
        assert_eq!(a, b);
    }

    #[test]
    fn cot_selects_matching_schema() {
        let llm = perfect_llm();
        let other = PromptSchema {
            database: "world".into(),
            tables: vec![("country".into(), vec!["code".into(), "name".into()])],
        };
        let (pick, _) =
            llm.select_schema(&[other, singer_schema()], "How many vocalists are there?");
        assert_eq!(pick, 1);
    }

    #[test]
    fn join_grounding_uses_shared_id_column() {
        let llm = perfect_llm();
        let schema = PromptSchema {
            database: "school".into(),
            tables: vec![
                ("student".into(), vec!["student_id".into(), "name".into(), "school_id".into()]),
                ("school".into(), vec!["school_id".into(), "name".into(), "region".into()]),
            ],
        };
        let q = "Show the name of each student together with the name of its school.";
        let p = basic_prompt(&schema, q);
        let out = llm.generate_sql(&p, q).sql.unwrap();
        assert!(out.contains("JOIN school ON student.school_id = school.school_id"), "{out}");
    }
}
