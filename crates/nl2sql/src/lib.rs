//! `dbcopilot-nl2sql` — SQL generation from routed schemata (paper §3.6).
//!
//! * [`prompts`] — the Best / Multiple / Multiple-COT prompt strategies
//!   (Figures 5–6) plus the oracle prompt variants of Table 6;
//! * [`llm`] — CopilotLM, the offline `gpt-3.5-turbo` substitute: an
//!   intent parser + prompt-schema grounder with a seeded capability model
//!   (synonym-resolution failures, distraction growing with extraneous
//!   schema, base SQL error rate);
//! * [`cost`] — token estimation and gpt-3.5-turbo-0125 pricing for the "$"
//!   columns.
//!
//! ```
//! use dbcopilot_nl2sql::{estimate_tokens, parse_intent};
//!
//! let question = "How many singers are there?";
//! assert!(estimate_tokens(question) > 0);
//! let intent = parse_intent(question).expect("a count question parses");
//! assert!(format!("{intent:?}").to_lowercase().contains("count"));
//! ```

pub mod cost;
pub mod llm;
pub mod prompts;

pub use cost::{estimate_tokens, CostLedger, CostModel};
pub use llm::{parse_intent, CopilotLM, Intent, LlmConfig, LlmOutput};
pub use prompts::{
    basic_prompt, cot_selection_prompt, multiple_prompt, repair_prompt, Prompt, PromptSchema,
    PromptStrategy,
};
