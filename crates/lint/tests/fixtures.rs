//! The analyzer's fixture corpus: every `bad_*` fixture must trigger
//! exactly the rule it was written to demonstrate (and nothing else),
//! and every `good_*` fixture must come back clean. The fixtures live as
//! real `.rs` files under `tests/fixtures/` — `scope_for` excludes that
//! directory, so the corpus never pollutes the workspace lint run — and
//! are pulled in with `include_str!` so each one is checked here exactly
//! as it sits on disk.

use dbcopilot_lint::lint_source;
use dbcopilot_lint::rules::{self, Scope};

const DETERMINISTIC: Scope = Scope { deterministic: true, serving: false, runtime: false };
const SERVING: Scope = Scope { deterministic: false, serving: true, runtime: false };
const DEFAULT: Scope = Scope { deterministic: false, serving: false, runtime: false };

struct Fixture {
    file: &'static str,
    source: &'static str,
    scope: Scope,
    /// The exact multiset of rule names expected, sorted. Empty = clean.
    expect: &'static [&'static str],
}

macro_rules! fixture {
    ($file:literal, $scope:expr, $expect:expr) => {
        Fixture {
            file: $file,
            source: include_str!(concat!("fixtures/", $file)),
            scope: $scope,
            expect: $expect,
        }
    };
}

const FIXTURES: &[Fixture] = &[
    // hashmap-iter-order
    fixture!("bad_hashmap_iter.rs", DETERMINISTIC, &[rules::HASHMAP_ITER_ORDER]),
    fixture!("bad_hashmap_for.rs", DETERMINISTIC, &[rules::HASHMAP_ITER_ORDER]),
    fixture!("bad_hashset_collect.rs", DETERMINISTIC, &[rules::HASHMAP_ITER_ORDER]),
    fixture!("good_hashmap_lookup.rs", DETERMINISTIC, &[]),
    fixture!("good_btreemap_iter.rs", DETERMINISTIC, &[]),
    // panic-free-serving
    fixture!("bad_serving_unwrap.rs", SERVING, &[rules::PANIC_FREE_SERVING]),
    fixture!("bad_serving_panic.rs", SERVING, &[rules::PANIC_FREE_SERVING]),
    fixture!("bad_serving_index.rs", SERVING, &[rules::PANIC_FREE_SERVING]),
    fixture!("good_serving_errors.rs", SERVING, &[]),
    // no-raw-spawn
    fixture!("bad_raw_spawn.rs", DEFAULT, &[rules::NO_RAW_SPAWN]),
    fixture!("good_spawn_in_tests.rs", DEFAULT, &[]),
    // no-wallclock-determinism
    fixture!("bad_wallclock.rs", DETERMINISTIC, &[rules::NO_WALLCLOCK]),
    // lock-order
    fixture!("bad_lock_inversion.rs", DEFAULT, &[rules::LOCK_ORDER]),
    fixture!("bad_lock_unranked.rs", DEFAULT, &[rules::LOCK_ORDER]),
    fixture!("good_lock_ascending.rs", DEFAULT, &[]),
    // pragmas
    fixture!("good_pragma_justified.rs", SERVING, &[]),
    fixture!("bad_pragma_unjustified.rs", SERVING, &[rules::PANIC_FREE_SERVING, rules::PRAGMA]),
    fixture!("bad_pragma_unknown_rule.rs", DEFAULT, &[rules::PRAGMA]),
    // lexer inertness
    fixture!(
        "good_inert_text.rs",
        Scope { deterministic: true, serving: true, runtime: false },
        &[]
    ),
];

#[test]
fn every_fixture_triggers_exactly_its_rules() {
    let mut failures = Vec::new();
    for fx in FIXTURES {
        let findings = lint_source(fx.source, fx.scope);
        let mut got: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        got.sort_unstable();
        if got != fx.expect {
            failures.push(format!(
                "{}: expected rules {:?}, got {:?}\n  findings: {:#?}",
                fx.file, fx.expect, got, findings
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn bad_fixtures_report_usable_line_numbers() {
    for fx in FIXTURES.iter().filter(|f| !f.expect.is_empty()) {
        let lines = fx.source.lines().count() as u32;
        for f in lint_source(fx.source, fx.scope) {
            assert!(
                f.line >= 1 && f.line <= lines,
                "{}: finding line {} outside the file (1..={lines})",
                fx.file,
                f.line
            );
        }
    }
}

#[test]
fn corpus_names_match_expectations() {
    // A `bad_` fixture with an empty expectation (or a `good_` one with
    // findings expected) is a corpus bug — catch it at the table level.
    for fx in FIXTURES {
        if fx.file.starts_with("bad_") {
            assert!(!fx.expect.is_empty(), "{} is named bad_* but expects no findings", fx.file);
        } else {
            assert!(
                fx.file.starts_with("good_") && fx.expect.is_empty(),
                "{} must be named bad_*/good_* consistently with its expectation",
                fx.file
            );
        }
    }
}
