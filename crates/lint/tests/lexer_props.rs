//! Property tests for the analyzer's lexer: content inside strings, raw
//! strings, char literals, and (nested) block comments must never be
//! misclassified as code. Each case assembles a function from randomly
//! chosen hazard payloads, each wrapped in a randomly chosen inert
//! context, with a marker statement after every wrapper — so a lexer
//! that either leaks a hazard *out* of an inert region or swallows code
//! *after* one (unterminated-literal bugs) fails the property.

use proptest::prelude::*;

use dbcopilot_lint::lexer::{lex, TokKind};
use dbcopilot_lint::lint_source;
use dbcopilot_lint::rules::Scope;

/// Snippets that would each trigger a rule if lexed as code. None
/// contain `*/`, `/*`, `#`, or a newline, so every wrapper below can
/// hold any of them verbatim.
const HAZARDS: &[&str] = &[
    "x.unwrap()",
    "value.expect(\"msg\")",
    "panic!(\"boom\")",
    "HashMap::new().keys()",
    "seen: HashSet<u32> and seen.iter()",
    "Instant::now() and SystemTime::now()",
    "std::thread::spawn(|| loop {})",
    "cache.lock(); slots.lock();",
    "for (k, v) in &counts {}",
    "buf[0] + row[i]",
];

/// Identifiers that only occur inside HAZARDS — seeing one as an `Ident`
/// token means literal/comment content leaked into the token stream.
const HAZARD_IDENTS: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "HashMap",
    "HashSet",
    "Instant",
    "SystemTime",
    "spawn",
    "lock",
    "counts",
    "buf",
];

/// Wrap `payload` in a randomly chosen inert context. Variants 0/1 are
/// comments, 2/3 are string literals (escaped and raw), 4 ignores the
/// payload and emits a char literal holding a hazardous character.
fn wrap_inert(state: &mut u64, payload: &str) -> String {
    match proptest::next_state(state) % 5 {
        0 => format!("// {payload}\n"),
        1 => format!("/* outer /* nested {payload} */ still a comment */\n"),
        2 => {
            let escaped = payload.replace('\\', "\\\\").replace('"', "\\\"");
            format!("let _s = \"{escaped}\";\n")
        }
        3 => {
            let hashes = "#".repeat(1 + (proptest::next_state(state) % 3) as usize);
            format!("let _r = r{hashes}\"{payload}\"{hashes};\n")
        }
        _ => {
            const CHARS: &[&str] = &["'['", "'{'", "'*'", "'/'", "'\"'", "'\\''", "'\\\\'"];
            let c = CHARS[(proptest::next_state(state) % CHARS.len() as u64) as usize];
            format!("let _c = {c};\n")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inert_regions_never_leak_tokens_or_findings(seed in 0u64..1_000_000) {
        let mut state = seed;
        let segments = 3 + (proptest::next_state(&mut state) % 6) as usize;
        let mut src = String::from("pub fn generated() {\n");
        // Quoted pragma text must not register as a pragma either.
        src.push_str("/* dbc-lint: allow(no-raw-spawn): block comments carry no pragmas */\n");
        src.push_str("let _p = \"dbc-lint: allow(lock-order): quoted, inert\";\n");
        let mut markers = Vec::new();
        for i in 0..segments {
            let pick = (proptest::next_state(&mut state) % HAZARDS.len() as u64) as usize;
            src.push_str(&wrap_inert(&mut state, HAZARDS[pick]));
            let marker = format!("seg{i}");
            src.push_str(&format!("let {marker} = {i};\n"));
            markers.push(marker);
        }
        src.push_str("}\n");

        let lexed = lex(&src);
        prop_assert!(
            lexed.errors.is_empty(),
            "seed {}: lexer errors {:?} in:\n{}", seed, lexed.errors, src
        );
        prop_assert!(
            lexed.pragmas.is_empty(),
            "seed {}: quoted/commented pragma text registered as a pragma in:\n{}", seed, src
        );
        for t in &lexed.tokens {
            if t.kind == TokKind::Ident {
                prop_assert!(
                    !HAZARD_IDENTS.contains(&t.text.as_str()),
                    "seed {}: hazard `{}` leaked out of an inert region (line {}) in:\n{}",
                    seed, t.text, t.line, src
                );
            }
        }
        // Every marker after a wrapper must survive as exactly one Ident:
        // an unterminated-literal bug would swallow the rest of the file.
        for m in &markers {
            let count = lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Ident && t.text == *m)
                .count();
            prop_assert!(
                count == 1,
                "seed {}: marker `{}` appears {} times (want 1) in:\n{}", seed, m, count, src
            );
        }
        // And the full analyzer, under every rule family at once, must
        // find nothing to complain about.
        let scope = Scope { deterministic: true, serving: true, runtime: false };
        let findings = lint_source(&src, scope);
        prop_assert!(
            findings.is_empty(),
            "seed {}: findings {:?} from inert-only source:\n{}", seed, findings, src
        );
    }
}
