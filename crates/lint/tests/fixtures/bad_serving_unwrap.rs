// Fixture (serving scope): `.unwrap()` on the request path panics the
// worker on bad input. Must trigger exactly `panic-free-serving`.
pub fn content_length(header: &str) -> usize {
    header.trim().parse().unwrap()
}
