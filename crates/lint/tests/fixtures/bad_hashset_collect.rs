// Fixture (deterministic scope): a binding typed only through a turbofish
// `collect::<HashSet<_>>()` is still a hash container; iterating it leaks
// order. Must trigger exactly `hashmap-iter-order`.
use std::collections::HashSet;

pub fn dedup_order_leak(items: &[String]) -> Vec<String> {
    let seen = items.iter().cloned().collect::<HashSet<String>>();
    seen.into_iter().collect()
}
