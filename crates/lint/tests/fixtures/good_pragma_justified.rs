// Fixture (serving scope): violations suppressed by justified pragmas —
// a trailing pragma on its own line and a standalone pragma covering the
// next code line. Must be clean.
pub fn head_byte(buf: &[u8]) -> u8 {
    buf[0] // dbc-lint: allow(panic-free-serving): caller rejects empty buffers one frame up
}

pub fn must_parse(header: &str) -> usize {
    // dbc-lint: allow(panic-free-serving): header already validated by the
    // request grammar check before this helper runs.
    header.trim().parse().unwrap()
}
