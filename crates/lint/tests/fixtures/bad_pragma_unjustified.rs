// Fixture (serving scope): a pragma with no justification suppresses
// nothing and is itself a finding. Must trigger `pragma` AND the
// un-suppressed `panic-free-serving`.
pub fn head_byte(buf: &[u8]) -> u8 {
    // dbc-lint: allow(panic-free-serving)
    buf[0]
}
