//! Fixture (deterministic + serving scope): every hazard below lives in
//! a string, raw string, char literal, or comment — all inert to the
//! analyzer. Must be clean.

/* A block comment /* with nesting */ mentioning counts.iter() and
   slots.lock() followed by cache.lock() stays invisible. */

// Prose about panic!("...") and .unwrap() and Instant::now() is fine too.

pub fn literals() -> (String, &'static str, char) {
    let s = "panic!(\"nope\") .unwrap() buf[0] spawn( Instant::now()".to_string();
    let raw = r#"for (k, v) in &counts { } HashMap::new().keys()"#;
    let c = '[';
    let _quote = '\'';
    let _escaped = "a \\\" quoted \" string with spawn( inside";
    let _pragma_text = "dbc-lint: allow(lock-order) quoted, not a pragma";
    (s, raw.to_string().leak(), c)
}
