// Fixture (default scope, i.e. any crate outside dbcopilot-runtime):
// an ad-hoc OS thread bypasses the pool's determinism, drain, and
// panic-containment contracts. Must trigger exactly `no-raw-spawn`.
pub fn start_worker() {
    std::thread::spawn(|| {
        do_work();
    });
}

fn do_work() {}
