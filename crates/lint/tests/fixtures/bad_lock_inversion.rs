// Fixture (any scope — lock discipline is workspace-wide): `cache`
// (rank 30) is held while `slots` (rank 20) is acquired, the classic
// inversion. Must trigger exactly `lock-order`.
use dbcopilot_runtime::OrderedMutex;

pub fn swap_entries(cache: &OrderedMutex<u32>, slots: &OrderedMutex<u32>) {
    let first = cache.lock();
    let second = slots.lock();
    drop(second);
    drop(first);
}
