// Fixture (deterministic scope): BTreeMap iteration is ordered and
// deterministic. Must be clean.
use std::collections::BTreeMap;

pub fn names(index: &BTreeMap<String, u32>) -> Vec<String> {
    index.keys().cloned().collect()
}
