// Fixture (default scope): `#[cfg(test)]` regions are exempt — tests may
// spawn threads and unwrap freely. Must be clean.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawn_is_fine_here() {
        let t = std::thread::spawn(|| super::add(1, 2));
        assert_eq!(t.join().unwrap(), 3);
    }
}
