// Fixture (any scope): nested acquisitions in strictly ascending rank
// order, and re-acquisition of a lower rank after `drop` releases the
// higher guard. Must be clean.
use dbcopilot_runtime::OrderedMutex;

pub fn drain(slots: &OrderedMutex<u32>, cache: &OrderedMutex<u32>) {
    let held_slots = slots.lock();
    let held_cache = cache.lock();
    drop(held_cache);
    drop(held_slots);
}

pub fn reacquire(slots: &OrderedMutex<u32>, receiver: &OrderedMutex<u32>) {
    let guard = slots.lock();
    drop(guard);
    let _low = receiver.lock();
}
