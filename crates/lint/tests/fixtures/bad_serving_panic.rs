// Fixture (serving scope): `panic!` in request routing. Must trigger
// exactly `panic-free-serving`.
pub fn route(path: &str) -> &'static str {
    match path {
        "/healthz" => "ok",
        _other => panic!("unknown path"),
    }
}
