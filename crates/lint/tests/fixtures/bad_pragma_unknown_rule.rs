// Fixture (any scope): a pragma naming a rule the linter does not know.
// Must trigger exactly `pragma`.
pub fn fine() -> u32 {
    // dbc-lint: allow(no-such-rule): this rule does not exist anywhere
    42
}
