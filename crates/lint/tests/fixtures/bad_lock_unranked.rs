// Fixture (any scope): a lock whose field name is not in the declared
// ranking — new locks must be added to `dbcopilot_runtime::lock_rank`
// and the linter's LOCK_RANKS. Must trigger exactly `lock-order`.
use std::sync::Mutex;

pub fn peek(mystery: &Mutex<u32>) -> u32 {
    *mystery.lock().unwrap()
}
