// Fixture (deterministic scope): `.keys()` on a HashMap leaks iteration
// order into the returned Vec. Must trigger exactly `hashmap-iter-order`.
use std::collections::HashMap;

pub fn database_names(index: HashMap<String, u32>) -> Vec<String> {
    index.keys().cloned().collect()
}
