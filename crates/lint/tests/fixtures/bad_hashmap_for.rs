// Fixture (deterministic scope): a `for` loop over a HashMap built in the
// same function. Point lookups (`entry`) are fine; the loop is the leak.
// Must trigger exactly `hashmap-iter-order`, once, on the second loop.
use std::collections::HashMap;

pub fn histogram_total(words: &[String]) -> u32 {
    let mut counts = HashMap::new();
    for w in words {
        *counts.entry(w.clone()).or_insert(0u32) += 1;
    }
    let mut total = 0;
    for (_word, n) in &counts {
        total += n;
    }
    total
}
