// Fixture (deterministic scope): HashMap used only through point
// operations — `get`, `contains_key`, `insert` — which are order-free.
// Must be clean.
use std::collections::HashMap;

pub fn lookup(mut index: HashMap<String, u32>, key: &str) -> u32 {
    index.insert("default".to_string(), 0);
    let base = index.get(key).copied().unwrap_or(0);
    if index.contains_key("default") {
        base + 1
    } else {
        base
    }
}
