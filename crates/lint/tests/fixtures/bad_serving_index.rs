// Fixture (serving scope): direct slice indexing panics out of bounds on
// a short read. Must trigger exactly `panic-free-serving`.
pub fn status_class(buf: &[u8]) -> u8 {
    buf[0]
}
