// Fixture (serving scope): the same operations done panic-free — typed
// errors and `.get()`/`.first()` misses. Must be clean.
pub fn content_length(header: &str) -> Result<usize, String> {
    header.trim().parse().map_err(|_| "bad content-length".to_string())
}

pub fn status_class(buf: &[u8]) -> Option<u8> {
    buf.first().copied()
}
