// Fixture (deterministic scope): a wall-clock read in a crate under the
// bit-identical contract. Must trigger exactly `no-wallclock-determinism`.
pub fn score_with_timing(x: f32) -> f32 {
    let start = std::time::Instant::now();
    let y = x * 2.0;
    let _elapsed = start.elapsed();
    y
}
