//! CLI: `cargo run -p dbcopilot-lint -- [--deny-all] [ROOT]`
//!
//! Walks `crates/` + `src/` under ROOT (default: the workspace root this
//! binary was built from, falling back to the current directory), prints
//! `file:line: [rule] message` diagnostics, and exits nonzero when any
//! are found. `--deny-all` is accepted for CI readability; diagnostics
//! are always denials — the flag exists so the CI invocation documents
//! its intent.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny_all = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--help" | "-h" => {
                println!("usage: dbcopilot-lint [--deny-all] [ROOT]");
                println!("  checks workspace invariants; exits 1 on findings, 2 on I/O errors");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("dbc-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let diags = match dbcopilot_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dbc-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("dbc-lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dbc-lint: {} finding{} ({})",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            if deny_all { "denied" } else { "denied; see ARCHITECTURE.md#invariants" }
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: prefer the manifest dir baked in at compile time
/// (two levels above `crates/lint`), fall back to the current directory.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}
