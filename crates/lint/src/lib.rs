//! dbcopilot-lint: a hand-rolled static analyzer for this workspace's
//! invariants.
//!
//! With no crates.io access there is no clippy plugin, miri, or loom — so
//! the invariants the codebase actually relies on (bit-identical results
//! at any `DBC_THREADS`, a serving path that never panics a worker, a
//! declared lock-order ranking) are enforced by this crate instead. It is
//! deliberately dependency-free: a string/comment-aware lexer
//! ([`lexer`]), a token-stream rule engine ([`rules`]), and a walker over
//! `crates/` + `src/` that emits `file:line` diagnostics.
//!
//! Suppression is per-line: `// dbc-lint: allow(<rule>)` followed by a
//! justification. Trailing pragmas apply to their own line, standalone
//! pragmas to the next line. A pragma without a justification is itself
//! a diagnostic — the point is an auditable record of *why* each
//! exception is safe.

pub mod lexer;
pub mod rules;

use rules::Scope;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates under the bit-identical determinism contract (results and
/// `DBC1` bytes must not depend on iteration order, wall clock, or
/// thread count).
pub const DETERMINISTIC_CRATES: &[&str] =
    &["core", "nn", "graph", "retrieval", "synth", "sqlengine", "eval"];

/// Crates on the serving request path (a panic kills a worker).
pub const SERVING_CRATES: &[&str] = &["http", "serve"];

/// One `file:line` diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub path: PathBuf,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path.display(), self.line, self.rule, self.message)
    }
}

/// Classify a workspace-relative path (`/`-separated). `None` means the
/// file is out of scope: vendored code, build output, tests, benches,
/// examples, or lint fixtures.
pub fn scope_for(rel: &str) -> Option<Scope> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let skip_dirs = ["vendor/", "target/", "tests/", "benches/", "examples/", "fixtures/", ".git/"];
    for dir in skip_dirs {
        if rel.starts_with(dir) || rel.contains(&format!("/{dir}")) {
            return None;
        }
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (krate, tail) = rest.split_once('/')?;
        if !tail.starts_with("src/") && tail != "src" && !tail.starts_with("src.") {
            // build.rs etc. — still lintable, but only src trees carry
            // the crate-scoped invariants.
            return Some(Scope::default());
        }
        return Some(Scope {
            deterministic: DETERMINISTIC_CRATES.contains(&krate),
            serving: SERVING_CRATES.contains(&krate),
            runtime: krate == "runtime",
        });
    }
    if rel.starts_with("src/") {
        return Some(Scope::default());
    }
    None
}

/// Lint one source string under a scope. This is the seam the fixture
/// tests drive directly.
pub fn lint_source(source: &str, scope: Scope) -> Vec<rules::Finding> {
    rules::check(&lexer::lex(source), scope)
}

/// Lint every in-scope file under `root` (the workspace checkout).
/// Diagnostics come back sorted by path then line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for file in files {
        let rel = match file.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        let Some(scope) = scope_for(&rel) else { continue };
        let source = fs::read_to_string(&file)?;
        for f in lint_source(&source, scope) {
            diags.push(Diagnostic {
                path: PathBuf::from(&rel),
                line: f.line,
                rule: f.rule,
                message: f.message,
            });
        }
    }
    Ok(diags)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | "vendor" | "tests" | "benches" | "examples" | "fixtures" | ".git"
            ) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_classification() {
        let det = scope_for("crates/core/src/lib.rs").unwrap();
        assert!(det.deterministic && !det.serving && !det.runtime);
        let srv = scope_for("crates/http/src/server.rs").unwrap();
        assert!(srv.serving && !srv.deterministic);
        let rt = scope_for("crates/runtime/src/pool.rs").unwrap();
        assert!(rt.runtime);
        assert!(scope_for("vendor/rand/src/lib.rs").is_none());
        assert!(scope_for("crates/core/tests/determinism.rs").is_none());
        assert!(scope_for("crates/lint/tests/fixtures/bad.rs").is_none());
        assert!(scope_for("crates/eval/benches/routing.rs").is_none());
        assert!(scope_for("crates/core/src/codec.rs").is_some());
        assert!(scope_for("README.md").is_none());
    }

    #[test]
    fn lint_source_flags_and_suppresses() {
        let scope = Scope { deterministic: true, ..Scope::default() };
        let bad = "fn f(m: HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n";
        let findings = lint_source(bad, scope);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, rules::HASHMAP_ITER_ORDER);

        let ok = "fn f(m: HashMap<u32, u32>) -> Vec<u32> {\n\
                  // dbc-lint: allow(hashmap-iter-order): keys are sorted by the caller below\n\
                  m.keys().copied().collect() }\n";
        assert!(lint_source(ok, scope).is_empty());
    }

    #[test]
    fn unjustified_pragma_is_a_diagnostic() {
        let scope = Scope::default();
        let src = "// dbc-lint: allow(no-raw-spawn)\nfn f() { spawn(worker); }\n";
        let findings = lint_source(src, scope);
        // the pragma complaint AND the un-suppressed spawn finding
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.rule == rules::PRAGMA));
        assert!(findings.iter().any(|f| f.rule == rules::NO_RAW_SPAWN));
    }
}
