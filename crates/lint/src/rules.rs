//! The rule engine: workspace invariants checked over the token stream.
//!
//! Each rule encodes a contract this codebase actually relies on (see the
//! "Invariants" section of ARCHITECTURE.md). Rules are token-level
//! heuristics, deliberately over-approximate: a site that is provably
//! fine suppresses the finding with a justified
//! `// dbc-lint: allow(<rule>)` pragma, which doubles as in-tree
//! documentation of *why* the site is fine.

use crate::lexer::{Lexed, Tok, TokKind};

/// `HashMap`/`HashSet` iteration in a deterministic crate: iteration
/// order is arbitrary and can leak into results or `DBC1` bytes. Use
/// `BTreeMap`/`BTreeSet` or sort explicitly.
pub const HASHMAP_ITER_ORDER: &str = "hashmap-iter-order";
/// `unwrap`/`expect`/`panic!`-family/slice-indexing in the serving
/// crates: a panic in the request path kills a worker's connection.
pub const PANIC_FREE_SERVING: &str = "panic-free-serving";
/// `spawn(...)` outside `dbcopilot-runtime`: ad-hoc threads bypass the
/// pool's determinism, drain, and panic-containment contracts.
pub const NO_RAW_SPAWN: &str = "no-raw-spawn";
/// `Instant`/`SystemTime` in a deterministic crate: wall-clock reads make
/// results machine- and run-dependent.
pub const NO_WALLCLOCK: &str = "no-wallclock-determinism";
/// A lock acquisition that is unranked, or nests against the declared
/// ranking: inversions deadlock under contention.
pub const LOCK_ORDER: &str = "lock-order";
/// Meta-rule for the pragmas themselves: malformed, unknown-rule, or
/// justification-free pragmas. Not suppressible.
pub const PRAGMA: &str = "pragma";

/// Every enforceable rule, in diagnostic order.
pub const ALL_RULES: &[&str] =
    &[HASHMAP_ITER_ORDER, PANIC_FREE_SERVING, NO_RAW_SPAWN, NO_WALLCLOCK, LOCK_ORDER];

/// The declared lock-order ranking. Mirrors
/// `dbcopilot_runtime::lock_rank` — every first-party `Mutex`/
/// `OrderedMutex` field is listed here by name, and nested acquisitions
/// must follow strictly ascending ranks. A lock this table does not know
/// is itself a finding: new locks must declare a rank in both places.
pub const LOCK_RANKS: &[(&str, u16)] = &[
    ("receiver", 10),
    ("slots", 20),
    ("panic", 21),
    ("pending", 22),
    ("cache", 30),
    ("current", 31),
    ("responses", 40),
];

fn rank_of(name: &str) -> Option<u16> {
    LOCK_RANKS.iter().find(|(n, _)| *n == name).map(|&(_, r)| r)
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scope {
    /// Crate participates in the bit-identical determinism contract
    /// (core/nn/graph/retrieval/synth/sqlengine/eval).
    pub deterministic: bool,
    /// Crate is on the serving request path (http/serve).
    pub serving: bool,
    /// The file is inside `dbcopilot-runtime` (owns thread spawning).
    pub runtime: bool,
}

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// Run every applicable rule over a lexed file and apply pragma
/// suppression. Findings come back sorted by line.
pub fn check(lexed: &Lexed, scope: Scope) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let test_mask = test_region_mask(toks);
    let mut findings: Vec<Finding> = Vec::new();

    if scope.deterministic {
        hashmap_iter_order(toks, &test_mask, &mut findings);
        wallclock(toks, &test_mask, &mut findings);
    }
    if scope.serving {
        panic_free(toks, &test_mask, &mut findings);
    }
    if !scope.runtime {
        raw_spawn(toks, &test_mask, &mut findings);
    }
    lock_order(toks, &test_mask, &mut findings);

    apply_pragmas(lexed, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Remove findings covered by a well-formed pragma; surface pragma
/// problems (malformed, unknown rule, missing justification) as findings
/// of the `pragma` meta-rule.
fn apply_pragmas(lexed: &Lexed, findings: &mut Vec<Finding>) {
    for (line, message) in &lexed.errors {
        findings.push(Finding { rule: PRAGMA, line: *line, message: message.clone() });
    }
    for pragma in &lexed.pragmas {
        for rule in &pragma.rules {
            if !ALL_RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    rule: PRAGMA,
                    line: pragma.line,
                    message: format!("pragma allows unknown rule `{rule}`"),
                });
            }
        }
        if pragma.justification.len() < 8 {
            findings.push(Finding {
                rule: PRAGMA,
                line: pragma.line,
                message: format!(
                    "pragma allow({}) lacks a justification — say why the site is safe",
                    pragma.rules.join(", ")
                ),
            });
            continue; // an unjustified pragma suppresses nothing
        }
        // A trailing pragma covers its own line. A standalone pragma
        // covers the next line *with code* — justifications often wrap
        // onto continuation comment lines, which must not eat the target.
        let target = if pragma.trailing {
            pragma.line
        } else {
            lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .filter(|&l| l > pragma.line)
                .min()
                .unwrap_or(pragma.line + 1)
        };
        findings.retain(|f| !(f.line == target && pragma.rules.iter().any(|r| r == f.rule)));
    }
}

// -------------------------------------------------------------------
// test-region masking
// -------------------------------------------------------------------

/// `mask[i] == true` ⇒ token `i` belongs to a `#[cfg(test)]` module or a
/// `#[test]`/`#[should_panic]`-attributed item and is exempt from rules.
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match matching(toks, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            let attr = &toks[i + 1..close];
            let is_test_attr = attr.iter().any(|t| t.is_ident("test"))
                || attr.iter().any(|t| t.is_ident("should_panic"));
            if is_test_attr {
                // Mask the attribute, any further attributes, and the item
                // they decorate (to its closing brace or terminating `;`).
                let mut j = close + 1;
                while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
                    match matching(toks, j + 1, '[', ']') {
                        Some(c) => j = c + 1,
                        None => break,
                    }
                }
                let end = item_end(toks, j);
                for m in mask.iter_mut().take(end.min(toks.len())).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index one past the end of the item starting at `start`: through the
/// matching `}` of its first brace, or through a `;` that arrives first.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            return matching(toks, i, '{', '}').map_or(toks.len(), |c| c + 1);
        }
        if toks[i].is_punct(';') {
            return i + 1;
        }
        i += 1;
    }
    toks.len()
}

/// Index of the token closing the bracket opened at `open`.
fn matching(toks: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

// -------------------------------------------------------------------
// hashmap-iter-order
// -------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

fn hashmap_iter_order(toks: &[Tok], test: &[bool], out: &mut Vec<Finding>) {
    let names = hash_container_names(toks);
    if names.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if test[i] {
            continue;
        }
        // `name.iter()` / `self.field.keys()` / ...
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && names.contains(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(Finding {
                rule: HASHMAP_ITER_ORDER,
                line: t.line,
                message: format!(
                    "iterating hash container `{}` (`.{}()`): order is arbitrary and can leak \
                     into results — use BTreeMap/BTreeSet or sort explicitly",
                    toks[i - 2].text,
                    t.text
                ),
            });
        }
        // `for pat in <expr mentioning a hash container> {`
        if t.is_ident("for") {
            let mut j = i + 1;
            let mut found_in = None;
            while j < toks.len() && j < i + 40 {
                if toks[j].is_ident("in") {
                    found_in = Some(j);
                    break;
                }
                if toks[j].is_punct('{') || toks[j].is_punct(';') {
                    break; // not a for-loop header after all
                }
                j += 1;
            }
            let Some(in_at) = found_in else { continue };
            let mut k = in_at + 1;
            let mut depth = 0i32;
            while k < toks.len() {
                let tk = &toks[k];
                if depth == 0 && tk.is_punct('{') {
                    break;
                }
                match () {
                    _ if tk.is_punct('(') || tk.is_punct('[') => depth += 1,
                    _ if tk.is_punct(')') || tk.is_punct(']') => depth -= 1,
                    _ => {}
                }
                if tk.kind == TokKind::Ident && names.contains(&tk.text) {
                    out.push(Finding {
                        rule: HASHMAP_ITER_ORDER,
                        line: tk.line,
                        message: format!(
                            "for-loop over hash container `{}`: iteration order is arbitrary \
                             and can leak into results — use BTreeMap/BTreeSet or sort \
                             explicitly",
                            tk.text
                        ),
                    });
                    break;
                }
                k += 1;
            }
        }
    }
}

/// Identifiers bound to `HashMap`/`HashSet` in this file: via a type
/// annotation (`name: HashMap<..>`, struct fields and params included),
/// an initializer (`name = HashMap::new()`), or a turbofish collect
/// (`let name = ...collect::<HashMap<..>>()`).
fn hash_container_names(toks: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over the path prefix: `std :: collections ::`.
        let mut j = i;
        while j >= 2
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && j >= 3
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        let prev = &toks[j - 1];
        // `name : HashMap` (single colon = annotation, not a `::` path).
        if prev.is_punct(':')
            && j >= 2
            && !toks[j - 2].is_punct(':')
            && toks[j - 2].kind == TokKind::Ident
        {
            push_unique(&mut names, &toks[j - 2].text);
            continue;
        }
        // `name = HashMap::...`
        if prev.is_punct('=') && j >= 2 && toks[j - 2].kind == TokKind::Ident {
            push_unique(&mut names, &toks[j - 2].text);
            continue;
        }
        // `let name = it.collect::<HashMap<..>>()`
        if prev.is_punct('<') {
            if let Some(name) = collect_binding(toks, j) {
                push_unique(&mut names, &name);
            }
        }
    }
    names
}

/// For `... < HashMap` at index `lt_hashmap`, walk back past
/// `collect :: <` to the `let [mut] name =` that binds the result.
fn collect_binding(toks: &[Tok], hashmap_at: usize) -> Option<String> {
    // toks[hashmap_at - 1] is '<'; expect `collect :: <`
    let mut j = hashmap_at.checked_sub(2)?;
    if !(toks[j].is_punct(':') && j >= 1 && toks[j - 1].is_punct(':')) {
        return None;
    }
    j = j.checked_sub(2)?;
    if !toks[j].is_ident("collect") {
        return None;
    }
    // Walk back to the start of the statement, looking for `let [mut] X =`.
    let mut k = j;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_ident("let") {
            let name_at =
                if toks.get(k + 1).is_some_and(|t| t.is_ident("mut")) { k + 2 } else { k + 1 };
            let name = toks.get(name_at)?;
            if name.kind == TokKind::Ident {
                return Some(name.text.clone());
            }
            return None;
        }
    }
    None
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

// -------------------------------------------------------------------
// panic-free-serving
// -------------------------------------------------------------------

/// Keywords that may legitimately precede `[` without indexing anything.
const KEYWORDS_BEFORE_BRACKET: &[&str] =
    &["let", "in", "return", "match", "if", "else", "mut", "ref", "move", "as", "break", "dyn"];

const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

fn panic_free(toks: &[Tok], test: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if test[i] {
            continue;
        }
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(Finding {
                rule: PANIC_FREE_SERVING,
                line: t.line,
                message: format!(
                    "`.{}()` in a serving crate: a panic here kills the request's worker — \
                     return a typed error mapped to an HTTP status instead",
                    t.text
                ),
            });
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Finding {
                rule: PANIC_FREE_SERVING,
                line: t.line,
                message: format!(
                    "`{}!` in a serving crate: the request path must degrade to a typed \
                     error, never panic a worker",
                    t.text
                ),
            });
        }
        // Slice/array indexing: `expr[...]` panics out of bounds.
        if t.is_punct('[') && i >= 1 {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !KEYWORDS_BEFORE_BRACKET.contains(&prev.text.as_str()),
                TokKind::Punct => prev.is_punct(')') || prev.is_punct(']') || prev.is_punct('?'),
                _ => false,
            };
            if indexes {
                out.push(Finding {
                    rule: PANIC_FREE_SERVING,
                    line: t.line,
                    message: "slice/array indexing in a serving crate panics out of bounds — \
                              use `.get()` and handle the miss"
                        .into(),
                });
            }
        }
    }
}

// -------------------------------------------------------------------
// no-raw-spawn
// -------------------------------------------------------------------

fn raw_spawn(toks: &[Tok], test: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if test[i] {
            continue;
        }
        if t.is_ident("spawn") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            out.push(Finding {
                rule: NO_RAW_SPAWN,
                line: t.line,
                message: "raw `spawn(...)` outside dbcopilot-runtime: route work through \
                          WorkerPool/parallel_map so determinism, drain and panic containment \
                          hold"
                    .into(),
            });
        }
    }
}

// -------------------------------------------------------------------
// no-wallclock-determinism
// -------------------------------------------------------------------

fn wallclock(toks: &[Tok], test: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if test[i] {
            continue;
        }
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(Finding {
                rule: NO_WALLCLOCK,
                line: t.line,
                message: format!(
                    "`{}` in a deterministic crate: wall-clock reads make results run- and \
                     machine-dependent",
                    t.text
                ),
            });
        }
    }
}

// -------------------------------------------------------------------
// lock-order
// -------------------------------------------------------------------

#[derive(Debug)]
struct Guard {
    name: String,
    rank: Option<u16>,
    /// Brace depth at acquisition (guard dies when depth drops below).
    depth: i32,
    /// `Some(var)` when bound via `let var = ...lock...`, killable by
    /// `drop(var)`. `None` = temporary, dies at `;` `,` `{` `}`.
    bound: Option<String>,
}

fn lock_order(toks: &[Tok], test: &[bool], out: &mut Vec<Finding>) {
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if test[i] {
            continue;
        }
        if t.is_ident("fn") {
            held.clear();
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            // Temporaries die at a block boundary: the common shape is
            // `if x.lock().is_ok() { ... }` where the guard does not
            // meaningfully outlive the condition for our purposes.
            held.retain(|g| g.bound.is_some());
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            held.retain(|g| g.depth <= depth);
            continue;
        }
        if t.is_punct(';') || t.is_punct(',') {
            held.retain(|g| g.bound.is_some() || g.depth < depth);
            continue;
        }
        // `drop(var)` releases a bound guard early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            let var = &toks[i + 2].text;
            held.retain(|g| g.bound.as_deref() != Some(var.as_str()));
            continue;
        }
        // A lock acquisition: `recv.lock()` or `lock(&recv)`-style helper.
        if t.is_ident("lock") || t.is_ident("lock_ignore_poison") {
            if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            // `fn lock(...)` is a definition, not an acquisition.
            if i >= 1 && toks[i - 1].is_ident("fn") {
                continue;
            }
            let name = if i >= 2 && toks[i - 1].is_punct('.') {
                // method call: receiver is the ident before the dot
                (toks[i - 2].kind == TokKind::Ident).then(|| toks[i - 2].text.clone())
            } else {
                // helper call: last ident inside the parens
                helper_arg_name(toks, i + 1)
            };
            let Some(name) = name else { continue };
            let rank = rank_of(&name);
            if rank.is_none() {
                out.push(Finding {
                    rule: LOCK_ORDER,
                    line: t.line,
                    message: format!(
                        "lock `{name}` has no declared rank — add it to the lock-order \
                         ranking (dbcopilot_runtime::lock_rank and the linter's LOCK_RANKS)"
                    ),
                });
            }
            for g in &held {
                match (g.rank, rank) {
                    (Some(held_rank), Some(new_rank)) if new_rank <= held_rank => {
                        out.push(Finding {
                            rule: LOCK_ORDER,
                            line: t.line,
                            message: format!(
                                "lock `{}` (rank {}) acquired while holding `{}` (rank {}): \
                                 nested acquisitions must follow strictly ascending ranks",
                                name, new_rank, g.name, held_rank
                            ),
                        });
                    }
                    (Some(_), Some(_)) => {}
                    _ => {
                        out.push(Finding {
                            rule: LOCK_ORDER,
                            line: t.line,
                            message: format!(
                                "nested lock acquisition `{}` while holding `{}` with \
                                 undeclared rank(s) — rank both locks",
                                name, g.name
                            ),
                        });
                    }
                }
            }
            let bound = let_binding_of(toks, i);
            held.push(Guard { name, rank, depth, bound });
        }
    }
}

/// For a helper-style `lock( ... )` starting at the paren `open`, the last
/// identifier before the matching close paren (`lock(&self.current)` →
/// `current`).
fn helper_arg_name(toks: &[Tok], open: usize) -> Option<String> {
    let close = matching(toks, open, '(', ')')?;
    toks[open + 1..close].iter().rev().find(|t| t.kind == TokKind::Ident).map(|t| t.text.clone())
}

/// If the statement containing token `at` starts with `let [mut] name =`
/// (a *simple* binding — `if let`/`while let` and destructuring patterns
/// don't produce a droppable named guard), the bound name.
fn let_binding_of(toks: &[Tok], at: usize) -> Option<String> {
    let mut k = at;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_ident("let") {
            if k >= 1 && (toks[k - 1].is_ident("if") || toks[k - 1].is_ident("while")) {
                return None;
            }
            let name_at =
                if toks.get(k + 1).is_some_and(|t| t.is_ident("mut")) { k + 2 } else { k + 1 };
            let name = toks.get(name_at)?;
            if name.kind != TokKind::Ident {
                return None;
            }
            // the next token must make this a simple binding, not a pattern
            let after = toks.get(name_at + 1)?;
            return (after.is_punct('=') || after.is_punct(':')).then(|| name.text.clone());
        }
    }
    None
}
