//! A comment/string/raw-string-aware Rust lexer.
//!
//! The rule engine in this crate works on a *token stream*, never on raw
//! text, so content inside string literals, raw strings, char literals,
//! byte strings, and (nested) block comments can never be mistaken for
//! code. That property is what makes token-level rules like
//! `panic-free-serving` trustworthy — `"call .unwrap() here"` in an error
//! message is not a violation — and it is pinned by a property test in
//! `tests/lexer_props.rs`.
//!
//! The lexer also extracts `// dbc-lint: allow(<rule>)` suppression
//! pragmas from line comments, recording whether each pragma stands alone
//! on its line (it then applies to the *next* line) or trails code (it
//! applies to its own line), and whether it carries the mandatory
//! justification text.

/// What a token is. Rules mostly look at identifiers and punctuation;
/// literals are kept as opaque single tokens so their *content* is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// One punctuation character (`.`, `(`, `[`, `!`, ...).
    Punct,
    /// A string (`"..."`, `r#"..."#`, `b"..."`), char (`'x'`), or byte
    /// char literal, content excluded from rule matching.
    Str,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`) or the loop-label form (`'outer:`).
    Lifetime,
}

/// One lexed token: kind, source text, and 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// `true` when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `// dbc-lint: allow(...)` pragma found in a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Line the comment sits on (1-based).
    pub line: u32,
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Justification text after the closing paren, trimmed of separator
    /// punctuation. Empty = missing (itself a lint violation).
    pub justification: String,
    /// `true` when code tokens precede the comment on the same line (the
    /// pragma then applies to its own line); `false` when the comment
    /// stands alone (it applies to the next line).
    pub trailing: bool,
}

impl Pragma {
    /// The 1-based line this pragma suppresses findings on.
    pub fn target_line(&self) -> u32 {
        if self.trailing {
            self.line
        } else {
            self.line + 1
        }
    }
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub pragmas: Vec<Pragma>,
    /// Malformed pragma comments (`dbc-lint:` marker present but the
    /// `allow(...)` clause unparseable), as `(line, message)`.
    pub errors: Vec<(u32, String)>,
}

/// Marker that introduces a suppression pragma inside a line comment.
pub const PRAGMA_MARKER: &str = "dbc-lint:";

/// Lex `source` into tokens plus extracted pragmas.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Whether any code token has been emitted on the current line (drives
    /// the trailing-vs-standalone pragma distinction).
    code_on_line: bool,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            code_on_line: false,
            out: Lexed::default(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.code_on_line = false;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.tokens.push(Tok { kind, text, line });
        self.code_on_line = true;
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek() {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokKind::Str, start, line);
                }
                b'r' | b'b' if self.raw_or_byte_string() => {
                    self.push(TokKind::Str, start, line);
                }
                b'\'' => {
                    self.char_or_lifetime(start, line);
                }
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokKind::Num, start, line);
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    self.ident();
                    self.push(TokKind::Ident, start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn ident(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn number(&mut self) {
        // Good enough for rule purposes: digits, radix/exponent letters,
        // `_` separators, one `.` if followed by a digit (so `0..n` and
        // `1.max(2)` lex the dots as punctuation).
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_' | b'x' | b'o' | b'i' | b'u' => {
                    self.bump();
                }
                b'.' if self.peek_at(1).is_some_and(|n| n.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
    }

    /// `//` comment: consume to end of line; extract a pragma if present.
    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.code_on_line;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // `text` starts with the `//` that brought us here. Doc comments
        // (`///`, `//!`) never carry pragmas — examples quoted in
        // documentation must stay inert — and in plain comments the
        // marker must open the comment body, so prose *about* pragmas is
        // not itself a pragma.
        let body = text.get(2..).unwrap_or("");
        if body.starts_with('/') || body.starts_with('!') {
            return;
        }
        if let Some(rest) = body.trim_start().strip_prefix(PRAGMA_MARKER) {
            self.parse_pragma(rest, line, trailing);
        }
    }

    fn parse_pragma(&mut self, rest: &str, line: u32, trailing: bool) {
        let rest = rest.trim_start();
        let Some(inner) = rest.strip_prefix("allow") else {
            self.out.errors.push((
                line,
                format!(
                    "unrecognized {PRAGMA_MARKER} directive (only `allow(<rule>)` is supported)"
                ),
            ));
            return;
        };
        let inner = inner.trim_start();
        let Some(open) = inner.strip_prefix('(') else {
            self.out.errors.push((line, "malformed pragma: expected `allow(<rule>)`".into()));
            return;
        };
        let Some(close) = open.find(')') else {
            self.out.errors.push((line, "malformed pragma: unclosed `allow(`".into()));
            return;
        };
        let rules: Vec<String> = open[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            self.out.errors.push((line, "malformed pragma: empty `allow()`".into()));
            return;
        }
        let justification = open[close + 1..]
            .trim_start_matches([' ', '\t'])
            .trim_start_matches(['-', ':', '—', ';'])
            .trim()
            .to_string();
        self.out.pragmas.push(Pragma { line, rules, justification, trailing });
    }

    /// `/* ... */` with nesting, as Rust defines it.
    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match self.bump() {
                Some(b'/') if self.peek() == Some(b'*') => {
                    self.bump();
                    depth += 1;
                }
                Some(b'*') if self.peek() == Some(b'/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
                None => break, // unterminated: tolerate, EOF ends it
            }
        }
    }

    /// Body of a `"..."` string after the opening quote.
    fn string_body(&mut self) {
        loop {
            match self.bump() {
                Some(b'\\') => {
                    self.bump(); // escaped char (covers \" and \\)
                }
                Some(b'"') | None => break,
                Some(_) => {}
            }
        }
    }

    /// If the cursor sits on a raw string (`r"`, `r#"`, `br"`, ...) or a
    /// byte string/char (`b"`, `b'`), consume it and return `true`.
    /// Otherwise consume nothing and return `false` (plain identifier).
    fn raw_or_byte_string(&mut self) -> bool {
        let mut ahead = 0usize;
        let first = self.peek();
        if first == Some(b'b') {
            ahead += 1;
        }
        let raw = self.peek_at(ahead) == Some(b'r');
        if raw {
            ahead += 1;
        }
        let mut hashes = 0usize;
        while self.peek_at(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
        let quote = self.peek_at(ahead + hashes);
        if raw {
            if quote != Some(b'"') {
                return false;
            }
            // consume prefix + hashes + opening quote
            for _ in 0..(ahead + hashes + 1) {
                self.bump();
            }
            self.raw_string_body(hashes);
            return true;
        }
        if first == Some(b'b') && hashes == 0 {
            match quote {
                Some(b'"') => {
                    self.bump(); // b
                    self.bump(); // "
                    self.string_body();
                    return true;
                }
                Some(b'\'') => {
                    self.bump(); // b
                    self.bump(); // '
                    self.byte_char_body();
                    return true;
                }
                _ => return false,
            }
        }
        false
    }

    /// Body of a raw string after the opening quote: ends at `"` followed
    /// by `hashes` `#` characters.
    fn raw_string_body(&mut self, hashes: usize) {
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut n = 0usize;
                    while n < hashes && self.peek() == Some(b'#') {
                        self.bump();
                        n += 1;
                    }
                    if n == hashes {
                        return;
                    }
                }
                Some(_) => {}
                None => return,
            }
        }
    }

    /// Body of `b'x'` after the opening quote.
    fn byte_char_body(&mut self) {
        if self.peek() == Some(b'\\') {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek() == Some(b'\'') {
            self.bump();
        }
    }

    /// Disambiguate `'a'` (char literal) from `'a` (lifetime). A quote is
    /// a char literal iff the matching close quote appears after one char
    /// or escape sequence; otherwise it is a lifetime/label.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        self.bump(); // opening '
        match self.peek() {
            Some(b'\\') => {
                // escape: always a char literal; consume to closing quote
                self.bump();
                loop {
                    match self.bump() {
                        Some(b'\'') | None => break,
                        Some(_) => {}
                    }
                }
                self.push(TokKind::Str, start, line);
            }
            Some(_) => {
                // `'X'` is a char literal; `'Xyz` is a lifetime. A lifetime
                // is ident-like, so scan the ident run then check for a
                // closing quote (handles `'a'` vs `'a` vs `'static`).
                let ident_start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80 {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let consumed = self.pos - ident_start;
                if self.peek() == Some(b'\'') {
                    // `'x'` is a char literal; a multi-char body is not
                    // valid Rust, but eating the close quote keeps the
                    // lexer from desyncing on malformed input.
                    self.bump();
                    self.push(TokKind::Str, start, line);
                } else if consumed == 0 {
                    // The body is not ident-like, so this is either a
                    // punctuation char literal (`'"'`, `'{'`, `'/'` —
                    // one byte then a closing quote) or a stray quote.
                    // Emitting `'"'`'s inner `"` as punctuation would
                    // open a phantom string that swallows real code.
                    if self.src.get(self.pos + 1) == Some(&b'\'') {
                        self.bump();
                        self.bump();
                        self.push(TokKind::Str, start, line);
                    } else {
                        self.push(TokKind::Punct, start, line);
                    }
                } else {
                    self.push(TokKind::Lifetime, start, line);
                }
            }
            None => {
                self.push(TokKind::Punct, start, line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_inert() {
        let src = r##"
            let a = "x.unwrap() HashMap"; // .expect( in comment
            /* thread::spawn */ let b = r#"panic!("no")"#;
            let c = 'u'; let d = b"unwrap"; let e = '\n';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "HashMap" || i == "spawn"));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c", "let", "d", "let", "e"]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ fn ok() {}";
        assert_eq!(idents(src), vec!["fn", "ok"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f", "x", "str", "str", "x"]);
        let lifetimes: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r###"let x = r#"contains "quotes" and .unwrap()"#; let y = 1;"###;
        assert_eq!(idents(src), vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn pragma_extraction_trailing_and_standalone() {
        let src = "let x = m.f(); // dbc-lint: allow(some-rule) -- lookup only\n\
                   // dbc-lint: allow(other-rule): next line is fine\n\
                   let y = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 2);
        assert!(lexed.pragmas[0].trailing);
        assert_eq!(lexed.pragmas[0].target_line(), 1);
        assert_eq!(lexed.pragmas[0].rules, vec!["some-rule"]);
        assert_eq!(lexed.pragmas[0].justification, "lookup only");
        assert!(!lexed.pragmas[1].trailing);
        assert_eq!(lexed.pragmas[1].target_line(), 3);
        assert_eq!(lexed.pragmas[1].justification, "next line is fine");
    }

    #[test]
    fn malformed_pragmas_are_reported() {
        let lexed = lex("// dbc-lint: allow(\nlet x = 1;\n// dbc-lint: deny(foo)\n");
        assert_eq!(lexed.errors.len(), 2);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "fn a() {}\n\nfn b() {}\n";
        let toks = lex(src).tokens;
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }
}
