//! `dbcopilot-eval` — metrics and the experiment harness that regenerates
//! every table and figure of the paper's evaluation (§4).
//!
//! * [`metrics`] — Recall@k (database/table) and mAP (§4.1.4);
//! * [`harness`] — corpus preparation, method construction ([Table 3–5
//!   baselines + DBCopilot]), parallel routing evaluation;
//! * [`ex`] — end-to-end execution accuracy and cost (Table 6), including
//!   the oracle tests and human-in-the-loop selection;
//! * [`ask`] — end-to-end evaluation of any `QueryPipeline` (the facade's
//!   staged ask path): answered rate, EX vs gold, per-stage failure
//!   counts, fallback/repair recoveries;
//! * [`resources`] — QPS / build time / index size (Table 5);
//! * [`figures`] — Figure 7(a/b) and series rendering;
//! * [`scale`] — `quick`/`full` experiment presets (`DBC_SCALE`).
//!
//! ```
//! use dbcopilot_eval::RoutingMetrics;
//! use dbcopilot_graph::QuerySchema;
//! use dbcopilot_retrieval::RoutingResult;
//!
//! let result = RoutingResult {
//!     tables: vec![("world".into(), "city".into(), 1.0)],
//!     databases: vec![("world".into(), 1.0)],
//! };
//! let gold = QuerySchema::new("world", vec!["city".into()]);
//! let mut metrics = RoutingMetrics::default();
//! metrics.add(&result, &gold);
//! // finalize() averages over queries and scales to percentages
//! assert_eq!(metrics.finalize().db_r1, 100.0);
//! ```

pub mod ask;
pub mod ex;
pub mod figures;
pub mod harness;
pub mod metrics;
pub mod resources;
pub mod scale;

pub use ask::{eval_ask, render_ask_table, AskAccuracy};
pub use ex::{eval_ex, ExReport, SchemaSource, Strategy};
pub use figures::{map_by_db_size, recall_curve, render_series};
pub use harness::{
    baseline_train_pairs, build_method, eval_routing, eval_routing_served, prepare, BuildReport,
    CorpusKind, MethodKind, Prepared,
};
pub use metrics::{average_precision, db_recall_at_k, table_recall_at_k, RoutingMetrics};
pub use resources::{
    measure_latency_us, measure_qps, measure_served_ask_qps, measure_served_http_qps,
    measure_served_qps, render_precision_table, render_table5, report, PrecisionRow,
    ResourceReport,
};
pub use scale::Scale;
