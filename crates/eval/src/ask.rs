//! End-to-end *ask* evaluation: drive any [`QueryPipeline`] over a test
//! split and measure what the routing metrics cannot — how many questions
//! are answered at all, how many answers are execution-accurate against
//! gold, where the failures land in the pipeline, and how often the
//! candidate-fallback/repair machinery rescued an answer.

use dbcopilot_serve::{AskError, AskOptions, QueryPipeline};
use dbcopilot_sqlengine::{compare_to_gold_prepared, execute_prepared, PreparedDb};
use dbcopilot_synth::{Corpus, Instance};
use std::collections::HashMap;

/// Aggregated end-to-end ask metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AskAccuracy {
    pub queries: usize,
    /// Questions answered end to end (`ask_with` returned `Ok`).
    pub answered: usize,
    /// Answered questions whose result matches gold execution, in percent
    /// of all queries (execution accuracy).
    pub ex: f64,
    /// Answers that needed the fallback machinery (a later candidate or a
    /// repair re-prompt).
    pub recovered: usize,
    /// Failures by pipeline stage.
    pub routing_errors: usize,
    pub prompt_errors: usize,
    pub generation_errors: usize,
    pub execution_errors: usize,
    /// Gold queries that failed to execute (corpus defects; counted as
    /// misses).
    pub gold_errors: usize,
    pub(crate) matches: usize,
}

impl AskAccuracy {
    /// Percent of queries answered end to end.
    pub fn answered_pct(&self) -> f64 {
        self.answered as f64 / self.queries.max(1) as f64 * 100.0
    }

    fn merge(&mut self, other: &AskAccuracy) {
        self.queries += other.queries;
        self.answered += other.answered;
        self.recovered += other.recovered;
        self.routing_errors += other.routing_errors;
        self.prompt_errors += other.prompt_errors;
        self.generation_errors += other.generation_errors;
        self.execution_errors += other.execution_errors;
        self.gold_errors += other.gold_errors;
        self.matches += other.matches;
    }

    fn finalize(mut self) -> Self {
        self.ex = self.matches as f64 / self.queries.max(1) as f64 * 100.0;
        self
    }
}

/// Questions per evaluation work unit — fixed (never derived from the
/// thread count) so partial-metric merge order is machine-independent.
const ASK_CHUNK: usize = 32;

/// Evaluate a pipeline end to end over instances, data-parallel over
/// fixed-size question chunks on the persistent worker pool; partial
/// metrics merge in chunk order, so the result is deterministic at any
/// `DBC_THREADS`.
///
/// Execution accuracy re-executes each answer's SQL against the *gold*
/// database and compares to the gold result — an answer that ran on the
/// wrong database scores as a miss even though it executed.
pub fn eval_ask(
    pipeline: &dyn QueryPipeline,
    corpus: &Corpus,
    instances: &[Instance],
    opts: &AskOptions,
) -> AskAccuracy {
    let partials = dbcopilot_runtime::pooled_map_chunks(instances, ASK_CHUNK, |_, part| {
        let mut m = AskAccuracy { queries: part.len(), ..Default::default() };
        // Per-chunk prepared-database cache: instances in a chunk cluster
        // on few databases, so gold + answer execution share one interned
        // copy instead of re-walking `Table` storage per query.
        let mut prepared: HashMap<&str, PreparedDb> = HashMap::new();
        for inst in part {
            match pipeline.ask_with(&inst.question, opts) {
                Ok(report) => {
                    m.answered += 1;
                    if report.recovered() {
                        m.recovered += 1;
                    }
                    let Some(db) = corpus.store.database(&inst.schema.database) else {
                        m.gold_errors += 1;
                        continue;
                    };
                    let pdb = prepared
                        .entry(inst.schema.database.as_str())
                        .or_insert_with(|| PreparedDb::prepare(db));
                    let gold = match execute_prepared(pdb, &inst.sql) {
                        Ok(rs) => rs,
                        Err(_) => {
                            m.gold_errors += 1;
                            continue;
                        }
                    };
                    if compare_to_gold_prepared(pdb, &gold, &report.answer.sql).is_match() {
                        m.matches += 1;
                    }
                }
                Err(AskError::Routing(_)) => m.routing_errors += 1,
                Err(AskError::Prompt(_)) => m.prompt_errors += 1,
                Err(AskError::Generation(_)) => m.generation_errors += 1,
                Err(AskError::Execution(_)) => m.execution_errors += 1,
                Err(_) => m.generation_errors += 1, // non_exhaustive future stages
            }
        }
        m
    });
    let mut total = AskAccuracy::default();
    for p in &partials {
        total.merge(p);
    }
    total.finalize()
}

/// Render a small comparison table of ask configurations (the end-to-end
/// section of `exp_table5`).
pub fn render_ask_table(rows: &[(String, AskAccuracy)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>9} {:>7} {:>10} {:>7} {:>7} {:>7} {:>7}\n",
        "Config", "Answered", "EX", "Recovered", "RouteE", "PromE", "GenE", "ExecE"
    ));
    for (name, m) in rows {
        out.push_str(&format!(
            "{:<22} {:>8.1}% {:>6.1}% {:>10} {:>7} {:>7} {:>7} {:>7}\n",
            name,
            m.answered_pct(),
            m.ex,
            m.recovered,
            m.routing_errors,
            m.prompt_errors,
            m.generation_errors,
            m.execution_errors,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcopilot_serve::{
        Answer, AskReport, ExecutionError, ScoredCandidate, SqlAttempt, StageTimings,
    };
    use dbcopilot_sqlengine::{execute, EngineError};

    /// A pipeline that answers by executing the instance's own gold SQL
    /// when the question embeds it, else fails at a chosen stage.
    struct GoldEcho {
        corpus: Corpus,
    }

    impl QueryPipeline for GoldEcho {
        fn ask_with(
            &self,
            question: &str,
            _opts: &AskOptions,
        ) -> Result<AskReport, dbcopilot_serve::AskError> {
            let inst = self
                .corpus
                .test
                .iter()
                .find(|i| i.question == question)
                .expect("question from the test split");
            if question.len().is_multiple_of(5) {
                // deterministic subset of failures, stage execution
                let last = EngineError::Parse { message: "truncated".into() };
                return Err(dbcopilot_serve::AskError::Execution(ExecutionError {
                    attempts: vec![SqlAttempt {
                        candidate: 0,
                        database: inst.schema.database.clone(),
                        repair: 0,
                        prompt: None,
                        sql: Some("SELECT".into()),
                        outcome: dbcopilot_serve::AttemptOutcome::ExecutionError(last.clone()),
                    }],
                    last,
                }));
            }
            let db = self.corpus.store.database(&inst.schema.database).unwrap();
            let result = execute(db, &inst.sql).unwrap();
            Ok(AskReport {
                question: question.to_string(),
                answer: Answer {
                    schema: inst.schema.clone(),
                    sql: inst.sql.clone(),
                    result,
                    recovered_errors: Vec::new(),
                },
                candidates: vec![ScoredCandidate { schema: inst.schema.clone(), logp: 0.0 }],
                chosen: 0,
                attempts: Vec::new(),
                timings: StageTimings::default(),
            })
        }
    }

    fn tiny_corpus() -> Corpus {
        dbcopilot_synth::build_spider_like(
            &dbcopilot_synth::CorpusSizes { num_databases: 4, train_n: 40, test_n: 20 },
            13,
        )
    }

    #[test]
    fn gold_echo_scores_perfect_ex_on_answered() {
        let corpus = tiny_corpus();
        let pipeline = GoldEcho { corpus: tiny_corpus() };
        let m = eval_ask(&pipeline, &corpus, &corpus.test, &AskOptions::default());
        assert_eq!(m.queries, corpus.test.len());
        assert_eq!(m.answered + m.execution_errors, m.queries);
        assert!(m.answered > 0, "{m:?}");
        // every answered question echoed gold SQL → every answer matches
        assert!((m.ex - m.answered_pct()).abs() < 1e-9, "{m:?}");
    }

    #[test]
    fn eval_ask_is_deterministic_across_thread_counts() {
        let corpus = tiny_corpus();
        let pipeline = GoldEcho { corpus: tiny_corpus() };
        let opts = AskOptions::default();
        let a = dbcopilot_runtime::with_thread_count(1, || {
            eval_ask(&pipeline, &corpus, &corpus.test, &opts)
        });
        let b = dbcopilot_runtime::with_thread_count(2, || {
            eval_ask(&pipeline, &corpus, &corpus.test, &opts)
        });
        assert_eq!(a, b);
    }

    #[test]
    fn render_table_lists_configs() {
        let rows = vec![("k=1".to_string(), AskAccuracy::default())];
        let text = render_ask_table(&rows);
        assert!(text.contains("k=1"));
        assert!(text.contains("Answered"));
    }
}
