//! Experiment scale presets.
//!
//! `full` approximates the paper's setup (Table 2 shapes, 20k synthetic
//! pairs) at laptop-runtime; `quick` is for CI and integration tests. The
//! `DBC_SCALE` environment variable selects the preset in the experiment
//! binaries (`full` is the default).

use dbcopilot_core::RouterConfig;
use dbcopilot_nl2sql::LlmConfig;
use dbcopilot_retrieval::EncoderConfig;
use dbcopilot_synth::CorpusSizes;

/// All knobs for one experiment run.
#[derive(Debug, Clone)]
pub struct Scale {
    pub spider: CorpusSizes,
    pub bird: CorpusSizes,
    pub fiben_test: usize,
    pub fiben_areas: usize,
    /// Synthetic (question, schema) pairs for router / baseline training.
    pub synth_pairs: usize,
    pub router: RouterConfig,
    pub encoder: EncoderConfig,
    pub llm: LlmConfig,
    pub seed: u64,
}

impl Scale {
    /// Paper-shaped sizes (scaled to run each experiment binary in minutes).
    pub fn full() -> Self {
        Scale {
            spider: CorpusSizes { num_databases: 166, train_n: 2000, test_n: 600 },
            bird: CorpusSizes { num_databases: 80, train_n: 2000, test_n: 500 },
            fiben_test: 279,
            fiben_areas: 30,
            synth_pairs: 10000,
            router: RouterConfig { epochs: 10, ..RouterConfig::default() },
            encoder: EncoderConfig::default(),
            llm: LlmConfig::default(),
            seed: 0xdb,
        }
    }

    /// Small preset for integration tests and smoke runs. The router keeps
    /// its full width (the tiny test config cannot learn a corpus) but
    /// trains on less data for fewer epochs.
    pub fn quick() -> Self {
        let router = RouterConfig { epochs: 5, ..RouterConfig::default() };
        let encoder = EncoderConfig { dim: 32, buckets: 1 << 11, epochs: 4, ..Default::default() };
        Scale {
            spider: CorpusSizes { num_databases: 16, train_n: 400, test_n: 60 },
            bird: CorpusSizes { num_databases: 10, train_n: 300, test_n: 50 },
            fiben_test: 40,
            fiben_areas: 8,
            synth_pairs: 1500,
            router,
            encoder,
            llm: LlmConfig::default(),
            seed: 0xdb,
        }
    }

    /// Read `DBC_SCALE` (`quick`/`full`); default full.
    pub fn from_env() -> Self {
        match std::env::var("DBC_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            Ok("full") | Err(_) => Scale::full(),
            Ok(other) => {
                eprintln!("DBC_SCALE={other:?} not recognized (expected `quick` or `full`); running full scale");
                Scale::full()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ() {
        let f = Scale::full();
        let q = Scale::quick();
        assert!(f.spider.num_databases > q.spider.num_databases);
        assert!(f.synth_pairs > q.synth_pairs);
    }
}
