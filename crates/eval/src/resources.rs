//! Efficiency and resource measurement (Table 5).

// dbc-lint: allow(no-wallclock-determinism): this module *measures* wall
// time (Table 5's QPS column is its deliverable); timings are reported,
// never folded into routed results or DBC1 bytes.
use std::time::Instant;

use dbcopilot_retrieval::SchemaRouter;

/// One row of Table 5.
#[derive(Debug, Clone)]
pub struct ResourceReport {
    pub method: String,
    /// Queries per second over the measurement batch.
    pub qps: f64,
    /// Training + index construction time.
    pub build_secs: f64,
    /// Serialized index/model size.
    pub disk_mb: f64,
    /// In-memory structure estimate (see EXPERIMENTS.md).
    pub ram_mb: f64,
}

/// Measure query throughput (the paper uses a query batch of 64; queries
/// cycle if fewer are provided).
pub fn measure_qps(
    router: &(dyn SchemaRouter + Send + Sync),
    questions: &[String],
    batch: usize,
) -> f64 {
    assert!(!questions.is_empty());
    // dbc-lint: allow(no-wallclock-determinism): QPS measurement is the
    // deliverable; the timing never reaches a routing result.
    let start = Instant::now();
    for i in 0..batch {
        let q = &questions[i % questions.len()];
        let _ = router.route(q, 100);
    }
    let secs = start.elapsed().as_secs_f64();
    batch as f64 / secs.max(1e-9)
}

/// The shared concurrent-load driver behind [`measure_served_qps`] and
/// [`measure_served_ask_qps`]: `clients` threads issue `total` requests
/// round-robin over `questions` through `serve_one`, returning requests
/// per second.
fn measure_concurrent(
    questions: &[String],
    total: usize,
    clients: usize,
    serve_one: impl Fn(&str) + Sync,
) -> f64 {
    assert!(!questions.is_empty());
    let clients = clients.max(1);
    let per_client = total.div_ceil(clients);
    let serve_one = &serve_one;
    // dbc-lint: allow(no-wallclock-determinism): QPS measurement is the
    // deliverable; the timing never reaches a routing result.
    let start = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            // dbc-lint: allow(no-raw-spawn): load-generator clients must be
            // independent OS threads — running them on the WorkerPool would
            // serialize the very concurrency being measured.
            s.spawn(move || {
                for i in 0..per_client {
                    serve_one(&questions[(client * per_client + i) % questions.len()]);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (per_client * clients) as f64 / secs.max(1e-9)
}

/// Measure throughput through the serving layer under concurrent load:
/// `clients` threads issue `total` requests round-robin over `questions`
/// via [`RouterService::route`], so the number includes cache hits,
/// micro-batching and pool dispatch — the served counterpart of
/// [`measure_qps`].
///
/// [`RouterService::route`]: dbcopilot_serve::RouterService::route
pub fn measure_served_qps<R: SchemaRouter + Send + Sync + 'static>(
    service: &dbcopilot_serve::RouterService<R>,
    questions: &[String],
    total: usize,
    clients: usize,
) -> f64 {
    measure_concurrent(questions, total, clients, |q| {
        let _ = service.route(q);
    })
}

/// Measure end-to-end ask throughput through [`AskService`] under
/// concurrent load: `clients` threads issue `total` asks round-robin over
/// `questions`, so the number includes answer caching, micro-batching and
/// pool dispatch — the question→SQL→result counterpart of
/// [`measure_served_qps`].
///
/// [`AskService`]: dbcopilot_serve::AskService
pub fn measure_served_ask_qps<P: dbcopilot_serve::QueryPipeline + 'static>(
    service: &dbcopilot_serve::AskService<P>,
    questions: &[String],
    total: usize,
    clients: usize,
) -> f64 {
    measure_concurrent(questions, total, clients, |q| {
        let _ = service.ask(q);
    })
}

/// Measure end-to-end ask throughput **over the wire**: `clients`
/// keep-alive HTTP connections issue `total` `POST /ask` requests
/// round-robin over `questions` against a running
/// [`HttpServer`](dbcopilot_http::HttpServer), so the number includes
/// request parsing, socket round-trips and response rendering on top of
/// everything [`measure_served_ask_qps`] covers.
///
/// Every request must be *answered*: a typed pipeline failure (404/410/
/// 422/500 with a staged error body) is a served request and counts,
/// exactly as the in-process [`measure_served_ask_qps`] counts `Err`
/// outcomes. What panics is breakage of the measurement itself: a
/// transport failure, a 429 shed (the server was sized too small for the
/// load — the number would be meaningless), or a protocol-level status
/// (400/408/413/431/505 mean the harness sent garbage).
pub fn measure_served_http_qps(
    addr: std::net::SocketAddr,
    questions: &[String],
    total: usize,
    clients: usize,
) -> f64 {
    assert!(!questions.is_empty());
    let clients = clients.max(1);
    let per_client = total.div_ceil(clients);
    // dbc-lint: allow(no-wallclock-determinism): QPS measurement is the
    // deliverable; the timing never reaches a routing result.
    let start = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            // dbc-lint: allow(no-raw-spawn): load-generator clients must be
            // independent OS threads — running them on the WorkerPool would
            // serialize the very concurrency being measured.
            s.spawn(move || {
                let mut conn = dbcopilot_http::HttpClient::connect(addr)
                    .expect("http measurement client connects");
                for i in 0..per_client {
                    let q = &questions[(client * per_client + i) % questions.len()];
                    let body = dbcopilot_http::wire::question_body(q);
                    let response =
                        conn.post("/ask", &body).expect("http measurement request completes");
                    assert!(
                        matches!(response.status, 200 | 404 | 410 | 422 | 500),
                        "measurement request not answered (status {}): {}",
                        response.status,
                        response.body
                    );
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (per_client * clients) as f64 / secs.max(1e-9)
}

/// Assemble a Table 5 row.
pub fn report(
    method: &str,
    router: &(dyn SchemaRouter + Send + Sync),
    questions: &[String],
    build_secs: f64,
    disk_bytes: usize,
    batch: usize,
) -> ResourceReport {
    let qps = measure_qps(router, questions, batch);
    let disk_mb = disk_bytes as f64 / 1e6;
    ResourceReport { method: method.to_string(), qps, build_secs, disk_mb, ram_mb: disk_mb }
}

/// One precision's routing latency and recall (the f32-vs-i8 comparison
/// printed under Table 5).
#[derive(Debug, Clone)]
pub struct PrecisionRow {
    pub precision: String,
    /// Mean per-query routing latency in microseconds.
    pub latency_us: f64,
    pub db_r1: f64,
    pub db_r5: f64,
}

/// Measure mean per-query routing latency in microseconds (the reciprocal
/// view of [`measure_qps`], for the latency column).
pub fn measure_latency_us(
    router: &(dyn SchemaRouter + Send + Sync),
    questions: &[String],
    batch: usize,
) -> f64 {
    1e6 / measure_qps(router, questions, batch)
}

/// Render the f32-vs-i8 precision comparison. Recall is measured, not
/// asserted: quantization noise at quick scale should leave it unchanged,
/// and printing both lets a drift show up in the experiment log.
pub fn render_precision_table(rows: &[PrecisionRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>16} {:>9} {:>9}\n",
        "Precision", "Latency (µs/q)", "DB R@1", "DB R@5"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>16.1} {:>8.1}% {:>8.1}%\n",
            r.precision, r.latency_us, r.db_r1, r.db_r5
        ));
    }
    out
}

/// Render Table 5.
pub fn render_table5(rows: &[ResourceReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>9} {:>10} {:>10} {:>9}\n",
        "Method", "QPS", "Build (s)", "Disk (MB)", "RAM (MB)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>9.1} {:>10.1} {:>10.2} {:>9.2}\n",
            r.method, r.qps, r.build_secs, r.disk_mb, r.ram_mb
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcopilot_retrieval::{Bm25Index, Bm25Params, Target, TargetSet};

    fn tiny_router() -> Bm25Index {
        Bm25Index::build(
            TargetSet {
                targets: vec![Target {
                    database: "d".into(),
                    table: "t".into(),
                    text: "t a b".into(),
                }],
            },
            Bm25Params::default(),
        )
    }

    #[test]
    fn qps_positive() {
        let r = tiny_router();
        let qs = vec!["a of t".to_string()];
        let qps = measure_qps(&r, &qs, 16);
        assert!(qps > 0.0);
    }

    #[test]
    fn served_qps_positive_and_cache_backed() {
        use dbcopilot_serve::{RouterService, ServiceConfig};
        let service = RouterService::from_router(tiny_router(), ServiceConfig::default());
        let qs = vec!["a of t".to_string(), "b of t".to_string()];
        let qps = measure_served_qps(&service, &qs, 64, 4);
        assert!(qps > 0.0);
        let stats = service.stats();
        assert!(stats.cache_hits > 0, "repeated questions must hit the cache: {stats:?}");
    }

    #[test]
    fn latency_is_reciprocal_of_qps_and_precision_table_renders() {
        let r = tiny_router();
        let qs = vec!["a of t".to_string()];
        let lat = measure_latency_us(&r, &qs, 16);
        assert!(lat > 0.0 && lat.is_finite());
        let text = render_precision_table(&[
            PrecisionRow { precision: "f32".into(), latency_us: 812.5, db_r1: 91.0, db_r5: 98.0 },
            PrecisionRow { precision: "i8".into(), latency_us: 401.2, db_r1: 91.0, db_r5: 98.0 },
        ]);
        assert!(text.contains("f32") && text.contains("i8"));
        assert!(text.contains("Latency"));
        assert!(text.contains("DB R@1"));
    }

    #[test]
    fn render_contains_method() {
        let r = tiny_router();
        let row = report("BM25", &r, &["a".to_string()], 0.5, 1000, 8);
        let text = render_table5(&[row]);
        assert!(text.contains("BM25"));
        assert!(text.contains("QPS"));
    }
}
