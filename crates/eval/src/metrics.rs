//! Routing metrics (paper §4.1.4): Recall@k for databases and tables, and
//! mAP over tables.

use dbcopilot_graph::QuerySchema;
use dbcopilot_retrieval::RoutingResult;

/// Database hit within the top-k ranked databases.
pub fn db_recall_at_k(result: &RoutingResult, gold: &QuerySchema, k: usize) -> f64 {
    let hit =
        result.databases.iter().take(k).any(|(db, _)| db.eq_ignore_ascii_case(&gold.database));
    if hit {
        1.0
    } else {
        0.0
    }
}

/// Fraction of gold tables found in the top-k ranked tables.
pub fn table_recall_at_k(result: &RoutingResult, gold: &QuerySchema, k: usize) -> f64 {
    if gold.tables.is_empty() {
        return 0.0;
    }
    let top: Vec<(&str, &str)> = result.top_tables(k);
    let hits = gold
        .tables
        .iter()
        .filter(|t| {
            top.iter().any(|(db, tt)| {
                db.eq_ignore_ascii_case(&gold.database) && tt.eq_ignore_ascii_case(t)
            })
        })
        .count();
    hits as f64 / gold.tables.len() as f64
}

/// Average precision of the ranked table list against the gold tables.
pub fn average_precision(result: &RoutingResult, gold: &QuerySchema) -> f64 {
    if gold.tables.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (rank, (db, table, _)) in result.tables.iter().enumerate() {
        let relevant = db.eq_ignore_ascii_case(&gold.database)
            && gold.tables.iter().any(|t| t.eq_ignore_ascii_case(table));
        if relevant {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    sum / gold.tables.len() as f64
}

/// Aggregated routing metrics over a test set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingMetrics {
    pub db_r1: f64,
    pub db_r5: f64,
    pub table_r5: f64,
    pub table_r15: f64,
    pub map: f64,
    pub queries: usize,
}

impl RoutingMetrics {
    /// Fold one query's result into the aggregate.
    pub fn add(&mut self, result: &RoutingResult, gold: &QuerySchema) {
        self.db_r1 += db_recall_at_k(result, gold, 1);
        self.db_r5 += db_recall_at_k(result, gold, 5);
        self.table_r5 += table_recall_at_k(result, gold, 5);
        self.table_r15 += table_recall_at_k(result, gold, 15);
        self.map += average_precision(result, gold);
        self.queries += 1;
    }

    /// Merge partial aggregates (parallel evaluation).
    pub fn merge(&mut self, other: &RoutingMetrics) {
        self.db_r1 += other.db_r1;
        self.db_r5 += other.db_r5;
        self.table_r5 += other.table_r5;
        self.table_r15 += other.table_r15;
        self.map += other.map;
        self.queries += other.queries;
    }

    /// Normalize sums into means (percentages in [0, 100]).
    pub fn finalize(mut self) -> RoutingMetrics {
        let n = self.queries.max(1) as f64;
        self.db_r1 = self.db_r1 / n * 100.0;
        self.db_r5 = self.db_r5 / n * 100.0;
        self.table_r5 = self.table_r5 / n * 100.0;
        self.table_r15 = self.table_r15 / n * 100.0;
        self.map = self.map / n * 100.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RoutingResult {
        RoutingResult {
            tables: vec![
                ("world".into(), "country".into(), 3.0),
                ("car".into(), "countries".into(), 2.0),
                ("world".into(), "countrylanguage".into(), 1.0),
            ],
            databases: vec![("world".into(), 2.0), ("car".into(), 2.0)],
        }
    }

    fn gold() -> QuerySchema {
        QuerySchema::new("world", vec!["country".into(), "countrylanguage".into()])
    }

    #[test]
    fn db_recall() {
        assert_eq!(db_recall_at_k(&result(), &gold(), 1), 1.0);
        let miss = QuerySchema::new("library", vec!["book".into()]);
        assert_eq!(db_recall_at_k(&result(), &miss, 5), 0.0);
    }

    #[test]
    fn table_recall_partial() {
        assert_eq!(table_recall_at_k(&result(), &gold(), 1), 0.5);
        assert_eq!(table_recall_at_k(&result(), &gold(), 3), 1.0);
    }

    #[test]
    fn table_recall_requires_same_db() {
        // "countries" in db car must not count for gold db world
        let g = QuerySchema::new("world", vec!["countries".into()]);
        assert_eq!(table_recall_at_k(&result(), &g, 3), 0.0);
    }

    #[test]
    fn ap_rewards_early_hits() {
        // hits at ranks 1 and 3: AP = (1/1 + 2/3)/2
        let ap = average_precision(&result(), &gold());
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_finalize_percentages() {
        let mut m = RoutingMetrics::default();
        m.add(&result(), &gold());
        m.add(&result(), &QuerySchema::new("library", vec!["book".into()]));
        let f = m.finalize();
        assert_eq!(f.queries, 2);
        assert!((f.db_r1 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = RoutingMetrics::default();
        a.add(&result(), &gold());
        let mut b = RoutingMetrics::default();
        b.add(&result(), &gold());
        a.merge(&b);
        assert_eq!(a.queries, 2);
    }
}
