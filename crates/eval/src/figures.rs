//! Figure regeneration: Figure 7 (a/b) and Figure 10 series.

use dbcopilot_retrieval::SchemaRouter;
use dbcopilot_sqlengine::Collection;
use dbcopilot_synth::Instance;

use crate::metrics::{average_precision, table_recall_at_k};

/// Figure 7(a): table mAP bucketed by the number of tables in the gold
/// database. Returns `(db_size_bucket, mAP, count)` rows.
pub fn map_by_db_size(
    router: &(dyn SchemaRouter + Send + Sync),
    instances: &[Instance],
    collection: &Collection,
    top_tables: usize,
) -> Vec<(usize, f64, usize)> {
    let mut buckets: std::collections::BTreeMap<usize, (f64, usize)> =
        std::collections::BTreeMap::new();
    for inst in instances {
        let size =
            collection.database(&inst.schema.database).map(|db| db.tables.len()).unwrap_or(0);
        // bucket db sizes to even numbers like the paper's x-axis
        let bucket = size.div_ceil(2) * 2;
        let result = router.route(&inst.question, top_tables);
        let ap = average_precision(&result, &inst.schema);
        let e = buckets.entry(bucket).or_insert((0.0, 0));
        e.0 += ap;
        e.1 += 1;
    }
    buckets.into_iter().map(|(b, (sum, n))| (b, sum / n.max(1) as f64, n)).collect()
}

/// Figure 7(b): mean table recall at each `k`.
pub fn recall_curve(
    router: &(dyn SchemaRouter + Send + Sync),
    instances: &[Instance],
    ks: &[usize],
) -> Vec<(usize, f64)> {
    let max_k = ks.iter().copied().max().unwrap_or(50);
    let mut sums = vec![0.0f64; ks.len()];
    for inst in instances {
        let result = router.route(&inst.question, max_k);
        for (i, &k) in ks.iter().enumerate() {
            sums[i] += table_recall_at_k(&result, &inst.schema, k);
        }
    }
    let n = instances.len().max(1) as f64;
    ks.iter().zip(sums).map(|(&k, s)| (k, s / n)).collect()
}

/// Render an ASCII series plot: one line per `(x, y)` pair.
pub fn render_series(title: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut out = format!("== {title} ==\n");
    for (name, points) in series {
        out.push_str(&format!("{name:<14}"));
        for (x, y) in points {
            out.push_str(&format!(" ({x:.0},{y:.3})"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{build_method, prepare, CorpusKind, MethodKind};
    use crate::scale::Scale;

    #[test]
    fn recall_curve_monotone_nondecreasing() {
        let mut s = Scale::quick();
        s.spider = dbcopilot_synth::CorpusSizes { num_databases: 6, train_n: 120, test_n: 25 };
        s.synth_pairs = 150;
        let p = prepare(CorpusKind::Spider, &s);
        let (router, _) = build_method(MethodKind::Bm25, &p, &s);
        let curve = recall_curve(router.as_ref(), &p.corpus.test, &[1, 5, 10, 20]);
        for w in curve.windows(2) {
            assert!(w[1].1 + 1e-9 >= w[0].1, "recall@k must be non-decreasing: {curve:?}");
        }
    }

    #[test]
    fn map_by_db_size_buckets() {
        let mut s = Scale::quick();
        s.spider = dbcopilot_synth::CorpusSizes { num_databases: 6, train_n: 120, test_n: 25 };
        s.synth_pairs = 150;
        let p = prepare(CorpusKind::Spider, &s);
        let (router, _) = build_method(MethodKind::Bm25, &p, &s);
        let rows = map_by_db_size(router.as_ref(), &p.corpus.test, &p.corpus.collection, 100);
        assert!(!rows.is_empty());
        let total: usize = rows.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, p.corpus.test.len());
    }

    #[test]
    fn render_series_format() {
        let s = render_series("fig", &[("BM25".into(), vec![(1.0, 0.5)])]);
        assert!(s.contains("fig"));
        assert!(s.contains("BM25"));
    }
}
